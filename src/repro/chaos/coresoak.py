"""Core-fault soak: the {wire faults} x {core faults} x {engines} matrix.

Usage::

    PYTHONPATH=src python -m repro.chaos.coresoak --schedules 40
    PYTHONPATH=src python -m repro.chaos.coresoak --schedules 16 \
        --assert-replay --assert-takeover --assert-mutants-caught

Two kinds of lane, with *inverted* expectations:

* **Real-engine lanes** (:data:`CORE_PROFILES`) run the genuine
  optimistic engine under accelerator core faults (fail-stop / hang /
  bit-flip, alone and mixed with wire chaos) with the online pairing
  watchdog enabled. Every report must be ``ok``: the checkpoint/replay
  recoverer has to hide every injected fault. Any oracle divergence is
  a soak failure, attributable from the report alone (seed + round +
  block of first violation).
* **Mutant lanes** (:data:`MUTANT_PROFILES`) run each deliberately
  broken engine from :data:`repro.core.faults.MUTANT_ENGINES` on a
  clean wire with the watchdog enabled. Here a *clean* matrix is the
  failure: each mutant must be caught online (oracle divergence or an
  engine-internal crash) on at least one seed, proving the watchdog is
  not vacuous.

``--assert-replay`` / ``--assert-takeover`` additionally require the
real lanes to have *exercised* the recovery machinery (at least one
block replay and at least one host takeover across the matrix) — a
soak that never recovered anything proves nothing.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field, replace

from repro.chaos.harness import ChaosConfig, ChaosReport, run_chaos
from repro.chaos.soak import _interest, _record, iter_soak_jobs
from repro.core.faults import MUTANT_ENGINES
from repro.fleet import run_jobs
from repro.obs.registry import MetricsRegistry, MetricsSnapshot
from repro.obs.trace import ScopedTracer, SpanTracer
from repro.rdma.faultwire import FaultPlan
from repro.recovery.faults import CoreFaultPlan
from repro.recovery.quarantine import RecoveryPolicy

__all__ = ["CORE_PROFILES", "MUTANT_PROFILES", "CoreSoakResult", "core_soak", "main"]

#: Real-engine lanes: core faults (and, for ``storm``, wire faults too)
#: with the online watchdog at every round boundary.
CORE_PROFILES: dict[str, ChaosConfig] = {
    "failstop": ChaosConfig(
        core_plan=CoreFaultPlan(fail_stop_rate=0.08), watchdog=True
    ),
    "hang": ChaosConfig(core_plan=CoreFaultPlan(hang_rate=0.06), watchdog=True),
    "bitflip": ChaosConfig(
        core_plan=CoreFaultPlan(bit_flip_rate=0.08), watchdog=True
    ),
    # Full matrix cell: lossy wire *and* faulty cores at once.
    "storm": ChaosConfig(
        plan=FaultPlan(drop_rate=0.05, duplicate_rate=0.05, reorder_rate=0.08),
        core_plan=CoreFaultPlan.storm(),
        watchdog=True,
    ),
    # Aggressive fail-stop against a hair-trigger quarantine: blocks
    # escalate to host takeover, then — once quick repairs drain the
    # quarantine — re-offload back onto the accelerator.
    "takeover": ChaosConfig(
        core_plan=CoreFaultPlan(fail_stop_rate=0.35),
        recovery=RecoveryPolicy(quarantine_threshold=1, repair_epochs=3),
        cores=8,
        rounds=12,
        watchdog=True,
    ),
}

#: Conflict-heavy schedule shared by every mutant lane: few tags, few
#: senders, lots of wildcards — the contention the planted bugs corrupt.
_MUTANT_SCHEDULE = dict(
    rounds=8,
    max_posts_per_round=6,
    max_sends_per_round=6,
    tags=2,
    senders=2,
    wildcard_rate=0.4,
    watchdog=True,
)

#: Mutant lanes: one per planted engine bug, clean wire, watchdog on.
MUTANT_PROFILES: dict[str, ChaosConfig] = {
    f"mutant-{name}": ChaosConfig(engine=name, **_MUTANT_SCHEDULE)
    for name in sorted(MUTANT_ENGINES)
}


@dataclass(slots=True)
class CoreSoakResult:
    """Aggregate outcome of one core-fault soak matrix."""

    runs: int = 0
    failures: int = 0
    # Recovery machinery exercised across the real lanes.
    core_faults_injected: int = 0
    blocks_replayed: int = 0
    host_takeovers: int = 0
    reoffloads: int = 0
    #: mutant lane name -> seeds on which the bug was caught online.
    mutants_caught: dict[str, int] = field(default_factory=dict)

    @property
    def mutants_missed(self) -> list[str]:
        return sorted(n for n, caught in self.mutants_caught.items() if caught == 0)


def _describe(name: str, report: ChaosReport) -> str:
    return (
        f"{name} seed={report.seed}: sent={report.sent} "
        f"core_faults={report.core_fail_stops}fs/{report.core_hangs}h/"
        f"{report.core_bit_flips}bf replayed={report.blocks_replayed} "
        f"takeovers={report.host_takeovers} reoffloads={report.reoffloads} "
        f"checks={report.watchdog_checks}"
    )


def core_soak(
    schedules: int,
    seed_base: int = 1,
    *,
    jobs: int = 1,
    cache_dir: str | None = None,
    registry: MetricsRegistry | None = None,
    tracer: SpanTracer | None = None,
    verbose: bool = False,
    out=sys.stdout,
    err=sys.stderr,
) -> CoreSoakResult:
    """Run ``schedules`` seeds through every real and mutant lane.

    Real lanes fail on any non-``ok`` report; mutant lanes fail only in
    aggregate (a mutant no seed caught). Fleet ``jobs``/``cache_dir``
    fan the matrix out exactly as :func:`repro.chaos.soak.soak` does.
    """
    table = {**CORE_PROFILES, **MUTANT_PROFILES}
    names = list(table)
    seeds = range(seed_base, seed_base + schedules)
    result = CoreSoakResult(
        mutants_caught={name: 0 for name in MUTANT_PROFILES}
    )
    by_profile: dict[str, list[ChaosReport]] = {name: [] for name in CORE_PROFILES}
    fleet = run_jobs(
        iter_soak_jobs(names, seeds, profiles=table), jobs=jobs, cache_dir=cache_dir
    )
    for outcome in fleet.outcomes:
        name = outcome.spec.params["profile"]
        result.runs += 1
        if not outcome.ok:
            result.failures += 1
            print(
                f"FAIL {name} seed={outcome.spec.seed}: quarantined "
                f"({outcome.error})",
                file=err,
            )
            continue
        report: ChaosReport = outcome.result
        if registry is not None:
            _record(registry, name, report)
        if name in MUTANT_PROFILES:
            # Inverted expectation: a caught bug is the success signal.
            if report.detected_violation:
                result.mutants_caught[name] += 1
                if verbose:
                    where = (
                        report.engine_error
                        if report.engine_failed
                        else report.first_violation
                    )
                    print(
                        f"{name} seed={report.seed}: caught at "
                        f"round={report.first_violation_round} "
                        f"block={report.first_violation_block} ({where})",
                        file=out,
                    )
            continue
        by_profile[name].append(report)
        result.core_faults_injected += (
            report.core_fail_stops + report.core_hangs + report.core_bit_flips
        )
        result.blocks_replayed += report.blocks_replayed
        result.host_takeovers += report.host_takeovers
        result.reoffloads += report.reoffloads
        if verbose:
            print(_describe(name, report), file=out)
        if not report.ok:
            result.failures += 1
            print(f"FAIL {_describe(name, report)}", file=err)
            if report.transport_failed:
                print(f"  transport: {report.transport_error}", file=err)
            if report.engine_failed:
                print(f"  engine: {report.engine_error}", file=err)
            if report.first_violation:
                print(
                    f"  first violation (round={report.first_violation_round} "
                    f"block={report.first_violation_block}): "
                    f"{report.first_violation}",
                    file=err,
                )
            for line in report.mismatches[:5]:
                print(f"  mismatch: {line}", file=err)
            for line in report.missing[:5]:
                print(f"  missing: {line}", file=err)
    if tracer is not None and tracer.enabled:
        for name in CORE_PROFILES:
            best_seed: int | None = None
            best_interest = -1
            for report in by_profile[name]:
                interest = _interest(report)
                if not report.transport_failed and interest > best_interest:
                    best_seed, best_interest = report.seed, interest
            if best_seed is None:
                continue
            scoped = ScopedTracer(tracer, f"{name}/")
            run_chaos(replace(CORE_PROFILES[name], seed=best_seed), tracer=scoped)
            if verbose:
                print(f"{name}: traced seed {best_seed}", file=out)
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--schedules", type=int, default=40, help="seeds per lane (real and mutant)"
    )
    parser.add_argument("--seed-base", type=int, default=1, help="first seed")
    parser.add_argument("--verbose", action="store_true")
    parser.add_argument(
        "--jobs", type=int, default=1, help="fleet worker processes (1 = inline)"
    )
    parser.add_argument(
        "--cache-dir", default=None, help="content-addressed result cache"
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write a cumulative metrics snapshot (JSON) of every run",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a Perfetto-loadable trace of one representative seed "
        "per real-engine lane",
    )
    parser.add_argument(
        "--assert-replay",
        action="store_true",
        help="fail unless at least one block replay happened",
    )
    parser.add_argument(
        "--assert-takeover",
        action="store_true",
        help="fail unless at least one host takeover happened",
    )
    parser.add_argument(
        "--assert-mutants-caught",
        action="store_true",
        help="fail unless every mutant engine was caught on some seed",
    )
    args = parser.parse_args(argv)

    tracer = SpanTracer() if args.trace_out else None
    registry = MetricsRegistry() if args.metrics_out else None
    result = core_soak(
        args.schedules,
        args.seed_base,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        registry=registry,
        tracer=tracer,
        verbose=args.verbose,
    )
    if tracer is not None:
        tracer.write(args.trace_out)
        print(f"trace: {args.trace_out} ({len(tracer)} events)")
    if registry is not None:
        snapshot: MetricsSnapshot = registry.snapshot()
        with open(args.metrics_out, "w", encoding="utf-8") as fp:
            fp.write(snapshot.to_json())
        print(f"metrics: {args.metrics_out} ({len(snapshot.values)} series)")

    ok = result.failures == 0
    if args.assert_replay and result.blocks_replayed == 0:
        print("ASSERT FAILED: no block was ever replayed", file=sys.stderr)
        ok = False
    if args.assert_takeover and result.host_takeovers == 0:
        print("ASSERT FAILED: no host takeover ever happened", file=sys.stderr)
        ok = False
    if args.assert_mutants_caught and result.mutants_missed:
        print(
            f"ASSERT FAILED: mutants never caught: {result.mutants_missed}",
            file=sys.stderr,
        )
        ok = False
    caught = sum(1 for n in result.mutants_caught.values() if n)
    print(
        f"core soak: {result.runs} runs, {result.failures} failures | "
        f"faults={result.core_faults_injected} "
        f"replayed={result.blocks_replayed} takeovers={result.host_takeovers} "
        f"reoffloads={result.reoffloads} | "
        f"mutants caught {caught}/{len(result.mutants_caught)}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

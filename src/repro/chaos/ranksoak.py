"""Rank-fault soak: fail-stop kills, detection, and repair under load.

Every profile runs a collective workload end-to-end through
:func:`repro.resilience.cluster.run_resilient` — real fabric, real
matching per rank, a seeded :class:`repro.resilience.faults.
RankFaultPlan` killing whole ranks mid-run — across a batch of seeds
through :mod:`repro.fleet` (``rank_chaos`` jobs, so lanes fan out and
cache). Two kinds of lane with *inverted* expectations:

* **Real lanes** (:data:`RANK_PROFILES`): every report must be ``ok``
  (all rounds committed, pairings oracle-clean, conservation exact)
  and the heartbeat detector must never raise a false suspicion.
  Heartbeat lanes must detect every fired kill through the detector
  (zero backstop aborts); the ``silent`` lane (no heartbeats) must
  recover through the stall/transport backstop instead.
* **Mutant lanes** (:data:`MUTANT_PROFILES`): each planted driver bug
  from :data:`repro.resilience.cluster.MUTANTS` runs a kill schedule
  chosen to expose it. A mutant nobody catches is the soak failure —
  it would mean the detector / repair audits are vacuous.

Rendezvous-sized payloads (``size > DEFAULT_EAGER_THRESHOLD``) are the
interesting kill target: a dead rank can no longer serve RDMA reads,
so survivors hold receives that can never complete and the
``RankFailedError`` revocation path is exercised, not just timed out.

Usage::

    PYTHONPATH=src python -m repro.chaos.ranksoak [--schedules N]
    repro-chaos ranks [--schedules N]
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.resilience.cluster import ResilienceReport
from repro.resilience.faults import RankFaultPlan
from repro.resilience.heartbeat import HeartbeatConfig

__all__ = [
    "RANK_PROFILES",
    "MUTANT_PROFILES",
    "RankSoakResult",
    "iter_rank_jobs",
    "rank_soak",
    "main",
]

DEFAULT_RANKS = 8
DEFAULT_ROUNDS = 3
DEFAULT_SCHEDULES = 4

_HB = HeartbeatConfig()

#: Real lanes: profile -> job params template (the job seed replaces
#: ``plan.seed``). Kill horizons sit inside the first epoch of each
#: payload size so seeded kills reliably fire; ``size=2048`` lanes kill
#: under rendezvous traffic (dead responder -> failed receives).
RANK_PROFILES: dict[str, dict] = {
    "clean": {
        "plan": RankFaultPlan(),
        "heartbeat": _HB,
        "recovery": "shrink",
        "size": 512,
    },
    "kill-shrink": {
        "plan": RankFaultPlan(kills=1, horizon=300),
        "heartbeat": _HB,
        "recovery": "shrink",
        "size": 2048,
    },
    "kill-respawn": {
        "plan": RankFaultPlan(kills=1, horizon=300),
        "heartbeat": _HB,
        "recovery": "respawn",
        "size": 2048,
    },
    "silent": {
        "plan": RankFaultPlan(kills=1, horizon=120),
        "heartbeat": None,
        "recovery": "shrink",
        "size": 512,
    },
}

#: Mutant lanes: planted driver bugs and the kill schedule that exposes
#: them. ``stale-streams`` only bites when the kill lands *after* a
#: committed round (a respawn from the initial checkpoint has all-zero
#: stream counters anyway), hence the explicit tick between the size-512
#: round-2 and round-3 commits.
MUTANT_PROFILES: dict[str, dict] = {
    "mutant-deaf-detector": {
        "plan": RankFaultPlan(victims=(3,), kill_ticks=(50,)),
        "heartbeat": _HB,
        "recovery": "shrink",
        "size": 512,
        "mutant": "deaf-detector",
    },
    "mutant-no-abort": {
        "plan": RankFaultPlan(victims=(3,), kill_ticks=(50,)),
        "heartbeat": _HB,
        "recovery": "shrink",
        "size": 512,
        "mutant": "no-abort",
    },
    "mutant-stale-streams": {
        "plan": RankFaultPlan(victims=(3,), kill_ticks=(400,)),
        "heartbeat": _HB,
        "recovery": "respawn",
        "size": 512,
        "mutant": "stale-streams",
    },
}


@dataclass(slots=True)
class RankSoakResult:
    runs: int = 0
    failures: int = 0
    kills: int = 0
    detections: int = 0
    false_suspicions: int = 0
    shrinks: int = 0
    restarts: int = 0
    failed_recvs: int = 0
    backstop_aborts: int = 0
    failed: list[str] = field(default_factory=list)
    #: mutant lane name -> seeds on which the planted bug was caught.
    mutants_caught: dict[str, int] = field(default_factory=dict)

    @property
    def mutants_missed(self) -> list[str]:
        return sorted(n for n, caught in self.mutants_caught.items() if caught == 0)

    @property
    def ok(self) -> bool:
        return self.failures == 0 and not self.mutants_missed


def iter_rank_jobs(profiles: Mapping[str, dict], seeds, *, ranks: int, rounds: int):
    from repro.fleet import JobSpec

    for name, template in profiles.items():
        plan: RankFaultPlan = template["plan"]
        hb: HeartbeatConfig | None = template["heartbeat"]
        for seed in seeds:
            yield JobSpec(
                kind="rank_chaos",
                params={
                    "app": "halo",
                    "ranks": ranks,
                    "rounds": rounds,
                    "size": template["size"],
                    "topology": "torus",
                    "placement": "block",
                    "profile": name,
                    "recovery": template["recovery"],
                    "mutant": template.get("mutant", ""),
                    "plan": plan.to_params(),
                    "heartbeat": hb.to_params() if hb is not None else None,
                    "record": False,
                },
                seed=seed,
            )


def _mutant_caught(name: str, report: ResilienceReport) -> bool:
    """Did this run expose the planted bug?"""
    res = report.results
    if name == "mutant-stale-streams":
        # The respawned rank forgot its stream counters: message
        # identities regress and the pairing oracle diverges.
        return bool(res["violations"])
    # deaf-detector / no-abort: the heartbeat path never aborts, so a
    # fired kill is only ever survived through the backstop — a
    # heartbeat-enabled lane with backstop aborts is the tell.
    return bool(res["kills"]) and res["backstop_aborts"] > 0


def _check_real(name: str, report: ResilienceReport) -> str | None:
    """Return a failure description, or ``None`` if the lane holds."""
    res = report.results
    if not report.ok:
        return (
            f"{len(res['violations'])} violations, "
            f"{res['rounds_completed']}/{report.params['rounds']} rounds"
        )
    if res["false_suspicions"]:
        return f"{len(res['false_suspicions'])} false suspicions"
    if name == "clean":
        if res["kills"] or res["suspicion_aborts"] or res["backstop_aborts"]:
            return "aborts on a fault-free run"
        return None
    if not res["kills"]:
        return None  # seeded tick landed past the run: nothing to audit
    if report.params["heartbeat"] is not None:
        if res["failures_detected"] < len({k["rank"] for k in res["kills"]}):
            return "heartbeat missed a fired kill"
        if res["backstop_aborts"]:
            return f"{res['backstop_aborts']} backstop aborts despite heartbeats"
    elif not res["backstop_aborts"]:
        return "silent lane recovered without the backstop (impossible)"
    return None


def rank_soak(
    schedules: int = DEFAULT_SCHEDULES,
    seed_base: int = 1,
    *,
    ranks: int = DEFAULT_RANKS,
    rounds: int = DEFAULT_ROUNDS,
    mutants: bool = True,
    jobs: int = 1,
    cache_dir: str | None = None,
    verbose: bool = False,
    out=None,
    err=None,
) -> RankSoakResult:
    """Run ``schedules`` seeds through every real (and mutant) lane."""
    from repro.fleet import run_jobs

    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr

    table: dict[str, dict] = dict(RANK_PROFILES)
    if mutants:
        table.update(MUTANT_PROFILES)
    seeds = range(seed_base, seed_base + schedules)
    result = RankSoakResult(
        mutants_caught={name: 0 for name in (MUTANT_PROFILES if mutants else ())}
    )
    fleet = run_jobs(
        iter_rank_jobs(table, seeds, ranks=ranks, rounds=rounds),
        jobs=jobs,
        cache_dir=cache_dir,
    )
    for outcome in fleet.outcomes:
        name = outcome.spec.params["profile"]
        seed = outcome.spec.seed
        result.runs += 1
        if not outcome.ok:
            result.failures += 1
            result.failed.append(f"{name}/seed={seed}")
            print(f"FAIL {name} seed={seed}: quarantined ({outcome.error})", file=err)
            continue
        report: ResilienceReport = outcome.result
        res = report.results
        result.kills += len(res["kills"])
        result.detections += res["failures_detected"]
        result.false_suspicions += len(res["false_suspicions"])
        result.shrinks += res["shrinks"]
        result.restarts += res["restarts"]
        result.failed_recvs += res["failed_recvs"]
        result.backstop_aborts += res["backstop_aborts"]
        if verbose:
            print(
                f"{name:>22} seed={seed}: {len(res['kills'])} kills, "
                f"{res['failures_detected']} detected "
                f"(latency<={res['detection_latency_max']}), "
                f"{res['shrinks']} shrinks, {res['restarts']} restarts, "
                f"{res['failed_recvs']} failed recvs, "
                f"{len(res['violations'])} violations",
                file=out,
            )
        if name in MUTANT_PROFILES:
            if _mutant_caught(name, report):
                result.mutants_caught[name] += 1
            continue
        reason = _check_real(name, report)
        if reason is not None:
            result.failures += 1
            result.failed.append(f"{name}/seed={seed}")
            print(f"FAIL {name} seed={seed}: {reason}", file=err)
    caught = sum(1 for n in result.mutants_caught.values() if n)
    print(
        f"rank soak: {result.runs} runs, {result.kills} kills, "
        f"{result.detections} detected, {result.false_suspicions} false "
        f"suspicions, {result.shrinks} shrinks, {result.restarts} restarts, "
        f"{result.failures} failures, "
        f"mutants caught {caught}/{len(result.mutants_caught)}",
        file=out,
    )
    if result.mutants_missed:
        print(f"MUTANTS MISSED: {result.mutants_missed}", file=err)
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="rank fail-stop soak (kill / detect / repair lanes)"
    )
    parser.add_argument("--schedules", type=int, default=DEFAULT_SCHEDULES)
    parser.add_argument("--seed-base", type=int, default=1)
    parser.add_argument("--ranks", type=int, default=DEFAULT_RANKS)
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument(
        "--no-mutants", action="store_true", help="skip the planted-bug lanes"
    )
    parser.add_argument("--jobs", type=int, default=1, help="fleet worker count")
    parser.add_argument(
        "--cache-dir", default=None, help="content-addressed result cache"
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)
    result = rank_soak(
        args.schedules,
        args.seed_base,
        ranks=args.ranks,
        rounds=args.rounds,
        mutants=not args.no_mutants,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        verbose=args.verbose,
    )
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Cluster network-fault soak: flaps and partitions under real traffic.

Every profile runs the halo workload end-to-end over the fabric —
the full rdma stack per pair, seeded :class:`repro.net.faults.
LinkFaultPlan` faults underneath — across a batch of seeds through
:mod:`repro.fleet` (``cluster_chaos`` jobs, so schedules fan out and
cache). The acceptance bar is the reliability layer's contract: faults
may cost time (retransmits, go-back-N recovery), but **never
correctness** — every send delivered, zero C2 violations, on every
seed.

Profiles::

    clean      no faults (the control: zero retransmits expected)
    flaps      seeded links flap; drops recovered by retransmission
    partition  one victim host loses all links for a window

Usage::

    PYTHONPATH=src python -m repro.chaos.cluster [--schedules N]
    repro-chaos cluster [--schedules N]
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field

from repro.net.cluster import ClusterReport
from repro.net.faults import LinkFaultPlan

__all__ = ["CLUSTER_PROFILES", "ClusterSoakResult", "iter_soak_jobs", "soak", "main"]

DEFAULT_RANKS = 8
DEFAULT_ROUNDS = 3
DEFAULT_SCHEDULES = 4

#: profile -> fault plan template (the job seed replaces ``seed``).
#: Windows stay well inside ``CLUSTER_RELIABILITY``'s retry budget so
#: recovery is expected, not excused.
CLUSTER_PROFILES: dict[str, LinkFaultPlan] = {
    "clean": LinkFaultPlan(),
    "flaps": LinkFaultPlan(
        flap_links=2, flaps_per_link=2, flap_ticks=24, flap_horizon=256
    ),
    "partition": LinkFaultPlan(partition_at=48, partition_ticks=48),
}


@dataclass(slots=True)
class ClusterSoakResult:
    runs: int = 0
    failures: int = 0
    retransmits: int = 0
    drops: int = 0
    violations: int = 0
    failed: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.failures == 0


def iter_soak_jobs(profiles, seeds, *, ranks: int, rounds: int):
    from repro.fleet import JobSpec

    for name in profiles:
        plan = CLUSTER_PROFILES[name]
        for seed in seeds:
            yield JobSpec(
                kind="cluster_chaos",
                params={
                    "app": "halo",
                    "ranks": ranks,
                    "topology": "torus",
                    "placement": "block",
                    "rounds": rounds,
                    "profile": name,
                    "plan": plan.to_params(),
                },
                seed=seed,
            )


def soak(
    schedules: int = DEFAULT_SCHEDULES,
    seed_base: int = 1,
    *,
    ranks: int = DEFAULT_RANKS,
    rounds: int = DEFAULT_ROUNDS,
    jobs: int = 1,
    cache_dir: str | None = None,
    verbose: bool = False,
    out=None,
    err=None,
) -> ClusterSoakResult:
    """Run ``schedules`` seeds through every profile; fail on any
    undelivered message or ordering violation."""
    from repro.fleet import run_jobs

    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr

    names = list(CLUSTER_PROFILES)
    seeds = range(seed_base, seed_base + schedules)
    result = ClusterSoakResult()
    fleet = run_jobs(
        iter_soak_jobs(names, seeds, ranks=ranks, rounds=rounds),
        jobs=jobs,
        cache_dir=cache_dir,
    )
    for outcome in fleet.outcomes:
        name = outcome.spec.params["profile"]
        seed = outcome.spec.seed
        result.runs += 1
        if not outcome.ok:
            result.failures += 1
            result.failed.append(f"{name}/seed={seed}")
            print(
                f"FAIL {name} seed={seed}: quarantined ({outcome.error})", file=err
            )
            continue
        report: ClusterReport = outcome.result
        res = report.results
        result.retransmits += res["transport"]["retransmits"]
        result.drops += res["fabric"]["dropped"]
        result.violations += len(res["violations"])
        if verbose:
            print(
                f"{name:>10} seed={seed}: {res['sends']} sends, "
                f"{res['fabric']['dropped']} drops, "
                f"{res['transport']['retransmits']} retx, "
                f"{len(res['violations'])} violations",
                file=out,
            )
        if not report.ok:
            result.failures += 1
            result.failed.append(f"{name}/seed={seed}")
            print(
                f"FAIL {name} seed={seed}: {len(res['violations'])} violations, "
                f"{res['undelivered']} undelivered",
                file=err,
            )
        elif name == "clean" and res["transport"]["retransmits"]:
            result.failures += 1
            result.failed.append(f"{name}/seed={seed}")
            print(
                f"FAIL {name} seed={seed}: {res['transport']['retransmits']} "
                "retransmits on a fault-free fabric",
                file=err,
            )
    print(
        f"cluster soak: {result.runs} runs, {result.drops} drops, "
        f"{result.retransmits} retransmits, {result.violations} violations, "
        f"{result.failures} failures",
        file=out,
    )
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="cluster network-fault soak (flaps / partition profiles)"
    )
    parser.add_argument("--schedules", type=int, default=DEFAULT_SCHEDULES)
    parser.add_argument("--seed-base", type=int, default=1)
    parser.add_argument("--ranks", type=int, default=DEFAULT_RANKS)
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument("--jobs", type=int, default=1, help="fleet worker count")
    parser.add_argument(
        "--cache-dir", default=None, help="content-addressed result cache"
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)
    result = soak(
        args.schedules,
        args.seed_base,
        ranks=args.ranks,
        rounds=args.rounds,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        verbose=args.verbose,
    )
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""``repro-chaos``: one front door for the chaos suites.

Subcommands::

    repro-chaos soak     [...]   # wire-fault soak (repro.chaos.soak)
    repro-chaos cores    [...]   # core-fault matrix (repro.chaos.coresoak)
    repro-chaos overload [...]   # memory-budget soak (repro.chaos.overload)
    repro-chaos cluster  [...]   # cluster network-fault soak (repro.chaos.cluster)
    repro-chaos ranks    [...]   # rank fail-stop soak (repro.chaos.ranksoak)
    repro-chaos health   [...]   # health-alarm lanes (repro.chaos.health)

Each subcommand forwards its remaining arguments to the underlying
module's ``main``, so ``repro-chaos cores --schedules 16`` and
``python -m repro.chaos.coresoak --schedules 16`` are identical.
"""

from __future__ import annotations

import sys

__all__ = ["main"]

_USAGE = """\
usage: repro-chaos {soak,cores,overload,cluster,ranks,health} [options]

  soak      wire-fault soak over the standard profiles
  cores     core-fault matrix: {wire faults} x {core faults} x {engines}
  overload  memory-budget overload soak (pressure enforcement lanes)
  cluster   cluster network-fault soak (link flaps / host partition)
  ranks     rank fail-stop soak (kill / detect / repair lanes)
  health    health-alarm lanes (fault fires its alarm, clean twin silent)

Run `repro-chaos <subcommand> --help` for subcommand options.
"""


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    if command == "soak":
        from repro.chaos.soak import main as soak_main

        return soak_main(rest)
    if command == "cores":
        from repro.chaos.coresoak import main as cores_main

        return cores_main(rest)
    if command == "overload":
        from repro.chaos.overload import main as overload_main

        return overload_main(rest)
    if command == "cluster":
        from repro.chaos.cluster import main as cluster_main

        return cluster_main(rest)
    if command == "ranks":
        from repro.chaos.ranksoak import main as ranks_main

        return ranks_main(rest)
    if command == "health":
        from repro.chaos.health import main as health_main

        return health_main(rest)
    print(f"repro-chaos: unknown subcommand {command!r}", file=sys.stderr)
    print(_USAGE, end="", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())

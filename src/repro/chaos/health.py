"""Health-alarm chaos lanes: prove the rules engine's two-sided contract.

Each lane runs one fault scenario from the existing chaos/soak
matrices **under the timeline sampler + health monitor** and asserts
the detector contract from both sides, heartbeat-style:

* the **faulty** run must raise the lane's matching alarm (the fault
  signature from :data:`repro.obs.health.ALARM_TAXONOMY`) within one
  sampling interval of the fault's first observable effect;
* the **clean twin** — the same schedule shape with the fault *and*
  the exhaustion knobs neutralized (an undersized descriptor table
  spills without any wire fault, so a twin that only clears the fault
  plan would still alarm, legitimately) — must produce **zero**
  events while still exercising every watched series.

Lanes::

    spill      receive-exhaustion spill storm   -> spill-storm
    overload   tight DPA budget, bursty senders -> overload / pressure-onset
    link-flap  fabric link flaps (repro.net)    -> link-flap
    rank-kill  rank fail-stop (repro.resilience)-> rank-down

Usage::

    PYTHONPATH=src python -m repro.chaos.health [--lane NAME] [--seed N]
    repro-chaos health [--lane NAME] [--seed N]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from repro.chaos.harness import ChaosConfig, run_chaos
from repro.chaos.soak import PROFILES
from repro.net.cluster import ClusterSim, cluster_workload
from repro.net.faults import LinkFaultPlan
from repro.obs.health import HealthMonitor, HealthReport, default_rules
from repro.obs.timeline import Timeline, TimelineSampler
from repro.rdma.faultwire import FaultPlan
from repro.resilience.cluster import ResilientClusterSim
from repro.resilience.faults import RankFaultPlan
from repro.resilience.heartbeat import HeartbeatConfig

__all__ = ["LANES", "LaneResult", "run_lane", "main"]


@dataclasses.dataclass
class LaneResult:
    """One lane's two-sided verdict."""

    lane: str
    expected_alarm: str
    #: Faulty run: did the matching alarm fire, and when?
    fired: bool
    first_tick: float | None
    faulty: HealthReport
    #: Clean twin: the zero-false-alarm side.
    clean: HealthReport
    timeline: Timeline | None = None

    @property
    def ok(self) -> bool:
        return self.fired and self.clean.healthy

    def to_dict(self) -> dict:
        return {
            "lane": self.lane,
            "expected_alarm": self.expected_alarm,
            "fired": self.fired,
            "first_tick": self.first_tick,
            "ok": self.ok,
            "faulty": self.faulty.to_dict(),
            "clean": self.clean.to_dict(),
        }

    def describe(self) -> str:
        verdict = "ok" if self.ok else "FAIL"
        fired = (
            f"alarm {self.expected_alarm!r} at tick {self.first_tick:g}"
            if self.fired
            else f"alarm {self.expected_alarm!r} DID NOT FIRE"
        )
        twin = (
            "clean twin quiet"
            if self.clean.healthy
            else f"clean twin raised {sorted(self.clean.alarms())} (FALSE ALARM)"
        )
        return f"{self.lane:<10} {verdict:<5} {fired}; {twin}"


def _monitored() -> tuple[TimelineSampler, HealthMonitor]:
    sampler = TimelineSampler(interval=0.0)
    monitor = HealthMonitor(default_rules()).attach(sampler)
    return sampler, monitor


def _chaos_lane(config: ChaosConfig, clean: ChaosConfig, seed: int) -> tuple:
    results = []
    for variant in (
        dataclasses.replace(config, seed=seed),
        dataclasses.replace(clean, seed=seed),
    ):
        sampler, monitor = _monitored()
        run_chaos(variant, sampler=sampler)
        results.append((sampler, monitor))
    return results


def _lane_spill(seed: int) -> LaneResult:
    # The soak's spill profile tightened into a storm (a 4-entry
    # descriptor table under a 12-post/12-send schedule spills on
    # every seed, not just the lucky ones). Twin restores the table
    # and clears the wire plan — same schedule shape, zero spills,
    # zero retransmits.
    config = dataclasses.replace(
        PROFILES["spill"],
        max_receives=4,
        block_threads=2,
        max_posts_per_round=12,
        max_sends_per_round=12,
    )
    clean = dataclasses.replace(
        config,
        plan=FaultPlan(),
        fallback=False,
        max_receives=256,
        block_threads=8,
    )
    (fs, fm), (cs, cm) = _chaos_lane(config, clean, seed)
    return _verdict("spill", "spill-storm", fs, fm, cs, cm)


def _lane_overload(seed: int) -> LaneResult:
    # The soak's overload profile: §III-E budget of 20 kB against a
    # bursty unexpected-heavy schedule — admission control evicts
    # cold UMQ entries on every seed (the budget's first line of
    # defense, so eviction is the lane's signature). Twin keeps the
    # pressure meter (so every pressure.* series still exists) but
    # lifts the budget to unlimited and restores the bounce pool.
    config = PROFILES["overload"]
    clean = dataclasses.replace(config, budget_bytes=-1, bounce_buffers=64)
    (fs, fm), (cs, cm) = _chaos_lane(config, clean, seed)
    return _verdict("overload", "budget-evictions", fs, fm, cs, cm)


def _lane_link_flap(seed: int) -> LaneResult:
    # The cluster soak's flap plan over the halo workload; the twin is
    # the identical workload on a fault-free fabric (congestion and
    # retransmission allowed — neither is a watched fault signature).
    plan = LinkFaultPlan(
        flap_links=4, flaps_per_link=3, flap_ticks=32, flap_horizon=192, seed=seed
    )
    results = []
    for variant_plan in (plan, None):
        trace = cluster_workload("halo", 8, rounds=3, size=512)
        sim = ClusterSim(
            trace, topology="torus", placement="block", plan=variant_plan,
            record=False,
        )
        sampler, monitor = _monitored()
        sim.attach_sampler(sampler)
        sim.run()
        sampler.sample(sim._sample_tick())
        results.append((sampler, monitor))
    (fs, fm), (cs, cm) = results
    return _verdict("link-flap", "link-flap", fs, fm, cs, cm)


def _lane_rank_kill(seed: int) -> LaneResult:
    # One fail-stop kill under heartbeats (the ranksoak kill-shrink
    # profile); the twin runs the same workload with a clean plan.
    results = []
    for plan in (RankFaultPlan(kills=1, horizon=300, seed=seed), RankFaultPlan()):
        sim = ResilientClusterSim(
            "halo",
            8,
            rounds=3,
            size=2048,
            plan=plan,
            heartbeat=HeartbeatConfig(),
            recovery="shrink",
            record=False,
        )
        sampler, monitor = _monitored()
        sim.attach_sampler(sampler)
        sim.run()
        results.append((sampler, monitor))
    (fs, fm), (cs, cm) = results
    return _verdict("rank-kill", "rank-down", fs, fm, cs, cm)


def _verdict(
    lane: str,
    alarm: str,
    fs: TimelineSampler,
    fm: HealthMonitor,
    cs: TimelineSampler,
    cm: HealthMonitor,
) -> LaneResult:
    faulty = fm.report(ticks=fs.timeline.ticks)
    clean = cm.report(ticks=cs.timeline.ticks)
    matching = [e for e in faulty.events if e.alarm == alarm]
    return LaneResult(
        lane=lane,
        expected_alarm=alarm,
        fired=bool(matching),
        first_tick=matching[0].tick if matching else None,
        faulty=faulty,
        clean=clean,
        timeline=fs.timeline,
    )


LANES = {
    "spill": _lane_spill,
    "overload": _lane_overload,
    "link-flap": _lane_link_flap,
    "rank-kill": _lane_rank_kill,
}


def run_lane(name: str, seed: int = 1) -> LaneResult:
    """Run one named lane (faulty + clean twin)."""
    try:
        lane = LANES[name]
    except KeyError:
        raise KeyError(f"unknown health lane {name!r}; known: {sorted(LANES)}")
    return lane(seed)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-chaos health",
        description=(
            "Run the health-alarm chaos lanes: each fault scenario must "
            "raise its matching alarm, each clean twin must stay silent. "
            "Exit codes: 0 all lanes hold, 1 a lane failed, 2 usage."
        ),
    )
    parser.add_argument(
        "--lane",
        action="append",
        choices=sorted(LANES),
        help="run only this lane (repeatable; default: all)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--json-out", metavar="PATH", help="write lane verdicts as JSON"
    )
    parser.add_argument(
        "--timeline-out",
        metavar="PATH",
        help="write the last faulty lane's sampled timeline as JSON",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 0 if exc.code == 0 else 2

    names = args.lane or sorted(LANES)
    results = [run_lane(name, args.seed) for name in names]
    for result in results:
        print(result.describe())
    failures = [r for r in results if not r.ok]
    print(
        f"health lanes: {len(results) - len(failures)}/{len(results)} ok "
        f"(seed {args.seed})"
    )
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fp:
            json.dump([r.to_dict() for r in results], fp, indent=2)
            fp.write("\n")
    if args.timeline_out and results:
        last = results[-1].timeline
        if last is not None:
            with open(args.timeline_out, "w", encoding="utf-8") as fp:
                fp.write(last.to_json())
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Overload soak: seeded schedules against an enforced memory budget.

Usage::

    PYTHONPATH=src python -m repro.chaos.overload --schedules 50
    PYTHONPATH=src python -m repro.chaos.overload --schedules 50 \
        --assert-demotion --assert-eviction --assert-takeover --assert-recall

Every lane runs the full receive pipeline with ``pressure=True`` — the
:class:`repro.pressure.controller.PressuredPipeline` charging posted
descriptors, unexpected headers, and bounce buffers against a
:class:`repro.pressure.budget.PressureBudget` — and the online pairing
watchdog enabled. Three budget shapes:

* **paper** — the §III-E model (128 bins + 8K receives ≈ 520 KiB)
  under a heavy offered load: enforcement is armed but the budget is
  generous, so the lane proves the books are kept without perturbing
  matching.
* **evict** — a tight explicit budget over an undersized bounce pool:
  unexpected messages must be evicted to host (and recalled on
  demand) for the run to complete.
* **takeover** — a budget small enough that eviction alone cannot
  create headroom: the pipeline escalates to full host takeover, then
  re-offloads once the working set drains below the low watermark.

Two invariants are *always* enforced, no flag needed:

* zero ``budget_overruns`` across the whole matrix — enforcement must
  never let a charge exceed the budget, no matter the schedule;
* every report must be ``ok`` — degradation ladders (defer, demote,
  evict, take over) may slow a run down but must never change which
  receive a message pairs with (oracle + exactly-once checks).

The ``--assert-*`` gates additionally require the matrix to have
*exercised* each rung of the ladder — a soak where no eviction or
takeover ever fired proves nothing about those paths.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, replace

from repro.chaos.harness import ChaosConfig, ChaosReport, run_chaos
from repro.chaos.soak import _interest, _record, iter_soak_jobs
from repro.fleet import run_jobs
from repro.obs.registry import MetricsRegistry, MetricsSnapshot
from repro.obs.trace import ScopedTracer, SpanTracer

__all__ = ["OVERLOAD_PROFILES", "OverloadSoakResult", "overload_soak", "main"]

#: Bursty many-sender schedule shared by the tight-budget lanes: few
#: posts, floods of sends, an undersized bounce pool — the unexpected
#: queue and its bounce staging dominate the ledger.
_TIGHT_SCHEDULE = dict(
    senders=4,
    rounds=16,
    max_posts_per_round=2,
    max_sends_per_round=12,
    bounce_buffers=8,
    watchdog=True,
    pressure=True,
)

#: name -> config template. Budgets shrink down the table: ``paper``
#: never needs the ladder, ``evict`` needs eviction/recall, and
#: ``takeover`` needs the full host-takeover escalation.
OVERLOAD_PROFILES: dict[str, ChaosConfig] = {
    "paper": ChaosConfig(
        pressure=True,
        budget_bytes=0,  # §III-E model
        senders=4,
        rounds=20,
        max_posts_per_round=2,
        max_sends_per_round=24,
        bounce_buffers=128,
        max_receives=8192,
        watchdog=True,
    ),
    "evict": ChaosConfig(budget_bytes=20000, **_TIGHT_SCHEDULE),
    "takeover": ChaosConfig(budget_bytes=12000, **_TIGHT_SCHEDULE),
}


@dataclass(slots=True)
class OverloadSoakResult:
    """Aggregate outcome of one overload soak matrix."""

    runs: int = 0
    failures: int = 0
    #: Hard invariant: must stay zero across every run.
    budget_overruns: int = 0
    # Degradation-ladder rungs exercised across the matrix.
    demotions: int = 0
    evictions: int = 0
    recalls: int = 0
    posts_deferred: int = 0
    credit_holds: int = 0
    takeovers: int = 0
    reoffloads: int = 0
    pressure_entries: int = 0
    #: Highest charged-bytes high-water mark seen in any single run.
    peak_charged_bytes: int = 0


def _describe(name: str, report: ChaosReport) -> str:
    return (
        f"{name} seed={report.seed}: sent={report.sent} "
        f"peak={report.peak_charged_bytes}/{report.budget_bytes}B "
        f"deferred={report.posts_deferred} demoted={report.demotions} "
        f"evicted={report.evictions} recalled={report.recalls} "
        f"takeovers={report.pressure_takeovers} "
        f"reoffloads={report.pressure_reoffloads}"
    )


def overload_soak(
    schedules: int,
    seed_base: int = 1,
    *,
    jobs: int = 1,
    cache_dir: str | None = None,
    registry: MetricsRegistry | None = None,
    tracer: SpanTracer | None = None,
    verbose: bool = False,
    out=sys.stdout,
    err=sys.stderr,
) -> OverloadSoakResult:
    """Run ``schedules`` seeds through every overload lane.

    Any non-``ok`` report or any budget overrun is a failure. Fleet
    ``jobs``/``cache_dir`` fan the matrix out exactly as
    :func:`repro.chaos.soak.soak` does.
    """
    names = list(OVERLOAD_PROFILES)
    seeds = range(seed_base, seed_base + schedules)
    result = OverloadSoakResult()
    by_profile: dict[str, list[ChaosReport]] = {name: [] for name in names}
    fleet = run_jobs(
        iter_soak_jobs(names, seeds, profiles=OVERLOAD_PROFILES),
        jobs=jobs,
        cache_dir=cache_dir,
    )
    for outcome in fleet.outcomes:
        name = outcome.spec.params["profile"]
        result.runs += 1
        if not outcome.ok:
            result.failures += 1
            print(
                f"FAIL {name} seed={outcome.spec.seed}: quarantined "
                f"({outcome.error})",
                file=err,
            )
            continue
        report: ChaosReport = outcome.result
        by_profile[name].append(report)
        if registry is not None:
            _record(registry, name, report)
        result.budget_overruns += report.budget_overruns
        result.demotions += report.demotions
        result.evictions += report.evictions
        result.recalls += report.recalls
        result.posts_deferred += report.posts_deferred
        result.credit_holds += report.credit_holds
        result.takeovers += report.pressure_takeovers
        result.reoffloads += report.pressure_reoffloads
        result.pressure_entries += report.pressure_entries
        result.peak_charged_bytes = max(
            result.peak_charged_bytes, report.peak_charged_bytes
        )
        if verbose:
            print(_describe(name, report), file=out)
        if report.budget_overruns:
            result.failures += 1
            print(
                f"FAIL {name} seed={report.seed}: {report.budget_overruns} "
                f"budget overruns (enforcement let a charge exceed "
                f"{report.budget_bytes} B)",
                file=err,
            )
            continue
        if not report.ok:
            result.failures += 1
            print(f"FAIL {_describe(name, report)}", file=err)
            if report.transport_failed:
                print(f"  transport: {report.transport_error}", file=err)
            if report.engine_failed:
                print(f"  engine: {report.engine_error}", file=err)
            if report.first_violation:
                print(
                    f"  first violation (round={report.first_violation_round} "
                    f"block={report.first_violation_block}): "
                    f"{report.first_violation}",
                    file=err,
                )
            for line in report.mismatches[:5]:
                print(f"  mismatch: {line}", file=err)
            for line in report.missing[:5]:
                print(f"  missing: {line}", file=err)
    if tracer is not None and tracer.enabled:
        for name in names:
            best_seed: int | None = None
            best_interest = -1
            for report in by_profile[name]:
                interest = _interest(report)
                if not report.transport_failed and interest > best_interest:
                    best_seed, best_interest = report.seed, interest
            if best_seed is None:
                continue
            scoped = ScopedTracer(tracer, f"{name}/")
            run_chaos(replace(OVERLOAD_PROFILES[name], seed=best_seed), tracer=scoped)
            if verbose:
                print(f"{name}: traced seed {best_seed}", file=out)
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--schedules", type=int, default=50, help="seeds per budget lane"
    )
    parser.add_argument("--seed-base", type=int, default=1, help="first seed")
    parser.add_argument("--verbose", action="store_true")
    parser.add_argument(
        "--jobs", type=int, default=1, help="fleet worker processes (1 = inline)"
    )
    parser.add_argument(
        "--cache-dir", default=None, help="content-addressed result cache"
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write a cumulative metrics snapshot (JSON) of every run",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a Perfetto-loadable trace of one representative seed "
        "per lane",
    )
    parser.add_argument(
        "--assert-demotion",
        action="store_true",
        help="fail unless at least one eager send demoted to rendezvous",
    )
    parser.add_argument(
        "--assert-eviction",
        action="store_true",
        help="fail unless at least one unexpected message was evicted to host",
    )
    parser.add_argument(
        "--assert-recall",
        action="store_true",
        help="fail unless at least one evicted message was recalled on match",
    )
    parser.add_argument(
        "--assert-takeover",
        action="store_true",
        help="fail unless pressure escalated to host takeover at least once",
    )
    args = parser.parse_args(argv)

    tracer = SpanTracer() if args.trace_out else None
    registry = MetricsRegistry() if args.metrics_out else None
    result = overload_soak(
        args.schedules,
        args.seed_base,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        registry=registry,
        tracer=tracer,
        verbose=args.verbose,
    )
    if tracer is not None:
        tracer.write(args.trace_out)
        print(f"trace: {args.trace_out} ({len(tracer)} events)")
    if registry is not None:
        snapshot: MetricsSnapshot = registry.snapshot()
        with open(args.metrics_out, "w", encoding="utf-8") as fp:
            fp.write(snapshot.to_json())
        print(f"metrics: {args.metrics_out} ({len(snapshot.values)} series)")

    ok = result.failures == 0
    if result.budget_overruns:
        print(
            f"ASSERT FAILED: {result.budget_overruns} budget overruns "
            f"(must always be zero)",
            file=sys.stderr,
        )
        ok = False
    if args.assert_demotion and result.demotions == 0:
        print("ASSERT FAILED: no eager send was ever demoted", file=sys.stderr)
        ok = False
    if args.assert_eviction and result.evictions == 0:
        print("ASSERT FAILED: nothing was ever evicted to host", file=sys.stderr)
        ok = False
    if args.assert_recall and result.recalls == 0:
        print("ASSERT FAILED: no evicted message was ever recalled", file=sys.stderr)
        ok = False
    if args.assert_takeover and result.takeovers == 0:
        print("ASSERT FAILED: pressure never escalated to takeover", file=sys.stderr)
        ok = False
    print(
        f"overload soak: {result.runs} runs, {result.failures} failures | "
        f"overruns={result.budget_overruns} peak={result.peak_charged_bytes}B | "
        f"deferred={result.posts_deferred} demoted={result.demotions} "
        f"evicted={result.evictions} recalled={result.recalls} "
        f"holds={result.credit_holds} | takeovers={result.takeovers} "
        f"reoffloads={result.reoffloads} episodes={result.pressure_entries}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Chaos soak loop: many seeded schedules, several fault profiles.

Usage::

    PYTHONPATH=src python -m repro.chaos.soak --seeds 50

Runs each seed through every profile and exits nonzero on the first
correctness violation (lost/duplicated message or oracle divergence).
Transport failures only count as violations under profiles that are
expected to survive; the ``hostile`` profile is allowed to fail, but
must fail *deterministically*.
"""

from __future__ import annotations

import argparse
import sys

from repro.chaos.harness import ChaosConfig, ChaosReport, run_chaos
from repro.rdma.faultwire import FaultPlan

__all__ = ["PROFILES", "main"]

#: name -> (fault plan template, undersized resources?)
PROFILES: dict[str, ChaosConfig] = {
    "clean": ChaosConfig(),
    "drops": ChaosConfig(plan=FaultPlan(drop_rate=0.08)),
    "chaos": ChaosConfig(
        plan=FaultPlan(
            drop_rate=0.05, duplicate_rate=0.08, reorder_rate=0.12, corrupt_rate=0.05
        )
    ),
    "degraded": ChaosConfig(
        plan=FaultPlan(drop_rate=0.05),
        bounce_buffers=2,
        host_spill=True,
    ),
}


def _describe(name: str, report: ChaosReport) -> str:
    return (
        f"{name} seed={report.seed}: sent={report.sent} delivered={report.delivered} "
        f"faults={report.faults_injected} retransmits={report.retransmits} "
        f"rnr={report.rnr_naks} spills={report.host_spills}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=50, help="seeds per profile")
    parser.add_argument("--seed-base", type=int, default=1, help="first seed")
    parser.add_argument("--profile", choices=sorted(PROFILES), default=None)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    names = [args.profile] if args.profile else sorted(PROFILES)
    failures = 0
    runs = 0
    for name in names:
        template = PROFILES[name]
        for seed in range(args.seed_base, args.seed_base + args.seeds):
            config = ChaosConfig(
                seed=seed,
                plan=template.plan,
                bounce_buffers=template.bounce_buffers,
                host_spill=template.host_spill,
            )
            report = run_chaos(config)
            runs += 1
            if args.verbose:
                print(_describe(name, report))
            if not report.ok:
                failures += 1
                print(f"FAIL {_describe(name, report)}", file=sys.stderr)
                if report.transport_failed:
                    print(f"  transport: {report.transport_error}", file=sys.stderr)
                for line in report.duplicates[:5]:
                    print(f"  duplicate: {line}", file=sys.stderr)
                for line in report.missing[:5]:
                    print(f"  missing: {line}", file=sys.stderr)
                for line in report.mismatches[:5]:
                    print(f"  mismatch: {line}", file=sys.stderr)
    print(f"chaos soak: {runs} runs, {failures} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Chaos soak loop: many seeded schedules, several fault profiles.

Usage::

    PYTHONPATH=src python -m repro.chaos.soak --seeds 50
    PYTHONPATH=src python -m repro.chaos.soak --seeds 20 \
        --trace-out soak.trace.json --metrics-out soak.metrics.json

Runs each seed through every profile and exits nonzero on the first
correctness violation (lost/duplicated message or oracle divergence).
Transport failures only count as violations under profiles that are
expected to survive; the ``hostile`` profile is allowed to fail, but
must fail *deterministically*.

Observability: ``--metrics-out`` writes a :mod:`repro.obs.registry`
snapshot (counters labeled by profile, cumulative across every run —
render with ``python -m repro.obs.report``). ``--trace-out`` writes a
Chrome ``trace_event`` JSON for Perfetto: for each profile, the most
*eventful* seed (weighted toward spill/recovery windows, then
retransmits and RNR stalls) is deterministically re-run under a scoped
tracer, so one file holds a representative simulated-time timeline per
profile without tracing every run.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Iterable, Iterator

from repro.chaos.harness import (
    ChaosConfig,
    ChaosReport,
    config_to_params,
    run_chaos,
)
from repro.fleet import JobSpec, run_jobs
from repro.obs.ledger import NULL_RECORDER, FlightRecorder, LedgerDump
from repro.obs.registry import MetricsRegistry, MetricsSnapshot
from repro.obs.trace import NULL_TRACER, ScopedTracer, SpanTracer
from repro.rdma.faultwire import FaultPlan

__all__ = ["PROFILES", "iter_soak_jobs", "main", "soak"]

#: name -> config template (fault plan, resources, matcher shape).
PROFILES: dict[str, ChaosConfig] = {
    "clean": ChaosConfig(),
    "drops": ChaosConfig(plan=FaultPlan(drop_rate=0.08)),
    "chaos": ChaosConfig(
        plan=FaultPlan(
            drop_rate=0.05, duplicate_rate=0.08, reorder_rate=0.12, corrupt_rate=0.05
        )
    ),
    "degraded": ChaosConfig(
        plan=FaultPlan(drop_rate=0.05),
        bounce_buffers=2,
        host_spill=True,
    ),
    # Undersized descriptor table + recoverable fallback: runs spill to
    # software and migrate back, spanning several engine generations.
    "spill": ChaosConfig(
        plan=FaultPlan(drop_rate=0.05),
        fallback=True,
        max_receives=8,
        block_threads=4,
        rounds=16,
        max_posts_per_round=8,
        max_sends_per_round=8,
        wildcard_rate=0.5,
    ),
    # Tight §III-E budget under a bursty unexpected-heavy schedule: the
    # pressure pipeline has to evict, demote, and defer to stay inside
    # the ledger (the dedicated overload matrix lives in
    # :mod:`repro.chaos.overload`; this lane keeps the default soak
    # honest about the pressure path).
    "overload": ChaosConfig(
        pressure=True,
        budget_bytes=20000,
        senders=4,
        rounds=16,
        max_posts_per_round=2,
        max_sends_per_round=12,
        bounce_buffers=8,
        watchdog=True,
    ),
}

#: ChaosReport counters folded into the soak metrics registry.
_REPORT_COUNTERS = (
    "sent",
    "delivered",
    "retransmits",
    "rnr_naks",
    "faults_injected",
    "dropped",
    "duplicated",
    "reordered",
    "corrupted",
    "host_spills",
    "degraded_stagings",
    "fallback_spills",
    "fallback_recoveries",
    "engine_retransmits",
    "engine_rnr_naks",
    "core_fail_stops",
    "core_hangs",
    "core_bit_flips",
    "block_rollbacks",
    "blocks_replayed",
    "cores_quarantined",
    "core_repairs",
    "host_takeovers",
    "reoffloads",
    "watchdog_checks",
    "budget_overruns",
    "demotions",
    "evictions",
    "recalls",
    "posts_deferred",
    "credit_holds",
    "pressure_entries",
    "pressure_exits",
    "pressure_takeovers",
    "pressure_reoffloads",
)


def _describe(name: str, report: ChaosReport) -> str:
    return (
        f"{name} seed={report.seed}: sent={report.sent} delivered={report.delivered} "
        f"faults={report.faults_injected} retransmits={report.retransmits} "
        f"rnr={report.rnr_naks} spills={report.host_spills} "
        f"generations={1 + report.fallback_recoveries}"
    )


def _interest(report: ChaosReport) -> int:
    """How much a run would show in a trace (for picking what to trace)."""
    return (
        1000 * (report.fallback_spills + report.fallback_recoveries)
        + 1000 * (report.host_takeovers + report.reoffloads)
        + 1000 * (report.pressure_takeovers + report.pressure_reoffloads)
        + 100 * report.blocks_replayed
        + 100 * (report.evictions + report.recalls)
        + 10 * report.block_rollbacks
        + 10 * report.demotions
        + report.retransmits
        + report.rnr_naks
        + report.posts_deferred
    )


def _record(registry: MetricsRegistry, name: str, report: ChaosReport) -> None:
    """Fold one run's report into the cumulative soak metrics."""
    labels = {"profile": name}
    registry.counter("chaos.runs", "chaos runs executed").labels(**labels).inc()
    if not report.ok:
        registry.counter("chaos.failures", "runs violating exactly-once/oracle").labels(
            **labels
        ).inc()
    if report.transport_failed:
        registry.counter(
            "chaos.transport_failures", "runs ending in TransportError"
        ).labels(**labels).inc()
    for field_name in _REPORT_COUNTERS:
        registry.counter(
            f"chaos.{field_name}", f"cumulative ChaosReport.{field_name}"
        ).labels(**labels).inc(getattr(report, field_name))
    registry.histogram(
        "chaos.retransmits_per_run",
        "retransmissions needed by one run",
        buckets=(0, 1, 2, 5, 10, 20, 50, 100),
    ).labels(**labels).observe(report.retransmits)
    registry.histogram(
        "chaos.generations_per_run",
        "engine generations one run spanned",
        buckets=(1, 2, 3, 5, 8),
    ).labels(**labels).observe(1 + report.fallback_recoveries)


def iter_soak_jobs(
    names: Iterable[str],
    seeds: range,
    *,
    profiles: dict[str, ChaosConfig] | None = None,
) -> Iterator[JobSpec]:
    """Lazily enumerate the soak matrix as fleet jobs.

    A generator on purpose: a 220-schedule soak never materializes its
    grid — the scheduler pulls jobs as worker slots free up.
    Profile-major, seed-minor order fixes job indices (and therefore
    the merge order of parallel runs). ``profiles`` substitutes a
    different name -> config table (the core-fault soak reuses this
    machinery with its own matrix).
    """
    table = PROFILES if profiles is None else profiles
    for name in names:
        params = {"profile": name, "config": config_to_params(table[name])}
        for seed in seeds:
            yield JobSpec(kind="chaos_run", params=params, seed=seed)


def soak(
    names: list[str],
    seeds: range,
    *,
    tracer: SpanTracer | None = None,
    registry: MetricsRegistry | None = None,
    verbose: bool = False,
    out=sys.stdout,
    err=sys.stderr,
    jobs: int = 1,
    cache_dir: str | None = None,
    profiles: dict[str, ChaosConfig] | None = None,
    ledger_sink: list[LedgerDump] | None = None,
) -> tuple[int, int]:
    """Run the soak matrix; returns ``(runs, failures)``.

    ``jobs``/``cache_dir`` route the matrix through the
    :mod:`repro.fleet` scheduler: the (profile, seed) grid fans out
    over a worker pool and/or memoizes per-cell reports. Outcomes are
    merged in enumeration order, so failure output, metrics recording,
    and trace-seed selection are identical to a serial run.

    With a ``tracer``, each profile's most eventful seed is re-run
    (deterministically — same seed, same report) under a scoped view
    so the trace holds one timeline per profile.

    With a ``ledger_sink`` (a list to append :class:`LedgerDump` parts
    to), the same representative re-run also carries a
    :class:`repro.obs.ledger.FlightRecorder`, giving one per-message
    lifecycle ledger per profile — and every *failing* seed is re-run
    with a recorder so its first-violation passport (the exact phase
    history of the message that broke) lands on ``err`` and in the dump.
    """
    table = PROFILES if profiles is None else profiles
    failures = 0
    runs = 0
    fleet = run_jobs(
        iter_soak_jobs(names, seeds, profiles=table), jobs=jobs, cache_dir=cache_dir
    )
    by_profile: dict[str, list[ChaosReport]] = {name: [] for name in names}
    for outcome in fleet.outcomes:
        name = outcome.spec.params["profile"]
        if not outcome.ok:
            failures += 1
            runs += 1
            print(
                f"FAIL {name} seed={outcome.spec.seed}: quarantined "
                f"({outcome.error})",
                file=err,
            )
            continue
        report: ChaosReport = outcome.result
        runs += 1
        by_profile[name].append(report)
        if registry is not None:
            _record(registry, name, report)
        if verbose:
            print(_describe(name, report), file=out)
        if not report.ok:
            failures += 1
            print(f"FAIL {_describe(name, report)}", file=err)
            if report.transport_failed:
                print(f"  transport: {report.transport_error}", file=err)
            if report.engine_failed:
                print(f"  engine: {report.engine_error}", file=err)
            if report.first_violation:
                print(
                    f"  first violation (round={report.first_violation_round} "
                    f"block={report.first_violation_block}): "
                    f"{report.first_violation}",
                    file=err,
                )
            for line in report.duplicates[:5]:
                print(f"  duplicate: {line}", file=err)
            for line in report.missing[:5]:
                print(f"  missing: {line}", file=err)
            for line in report.mismatches[:5]:
                print(f"  mismatch: {line}", file=err)
            if ledger_sink is not None:
                # Deterministic re-run of the failing seed with the
                # flight recorder: the report ships the violating
                # message's passport, the sink gets the full ledger.
                lrec = FlightRecorder()
                rerun = run_chaos(
                    replace(table[name], seed=report.seed), recorder=lrec
                )
                ledger_sink.append(
                    lrec.export(scenario=f"{name}/seed{report.seed}")
                )
                if rerun.passport:
                    phases = "->".join(
                        str(t[1]) for t in rerun.passport.get("transitions", ())
                    )
                    print(
                        f"  passport {rerun.passport.get('label', '')}: {phases}",
                        file=err,
                    )
    trace_on = tracer is not None and tracer.enabled
    if trace_on or ledger_sink is not None:
        for name in names:
            best_seed: int | None = None
            best_interest = -1
            for report in by_profile[name]:
                interest = _interest(report)
                if not report.transport_failed and interest > best_interest:
                    best_seed, best_interest = report.seed, interest
            if best_seed is None:
                continue
            scoped = ScopedTracer(tracer, f"{name}/") if trace_on else NULL_TRACER
            recorder = (
                FlightRecorder() if ledger_sink is not None else NULL_RECORDER
            )
            run_chaos(
                replace(table[name], seed=best_seed),
                tracer=scoped,
                recorder=recorder,
            )
            if ledger_sink is not None:
                ledger_sink.append(recorder.export(scenario=name))
            if verbose:
                print(f"{name}: traced seed {best_seed}", file=out)
    return runs, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=50, help="seeds per profile")
    parser.add_argument("--seed-base", type=int, default=1, help="first seed")
    parser.add_argument("--profile", choices=sorted(PROFILES), default=None)
    parser.add_argument("--verbose", action="store_true")
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a Perfetto-loadable Chrome trace of one representative "
        "seed per profile",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write a cumulative metrics snapshot (JSON) of every run",
    )
    parser.add_argument(
        "--ledger-out",
        metavar="PATH",
        default=None,
        help="write a per-message flight-recorder ledger "
        "(repro.obs.ledger JSON) of one representative seed per "
        "profile; failing seeds are re-run under the recorder and "
        "their first-violation passport is printed "
        "(analyze with repro-obs attribution / critical-path / flows)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="fleet worker processes for the soak matrix (1 = inline)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed result cache for soak runs",
    )
    args = parser.parse_args(argv)

    names = [args.profile] if args.profile else sorted(PROFILES)
    tracer = SpanTracer() if args.trace_out else None
    registry = MetricsRegistry() if args.metrics_out else None
    ledger_sink: list[LedgerDump] | None = [] if args.ledger_out else None
    runs, failures = soak(
        names,
        range(args.seed_base, args.seed_base + args.seeds),
        tracer=tracer,
        registry=registry,
        verbose=args.verbose,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        ledger_sink=ledger_sink,
    )
    if tracer is not None:
        tracer.write(args.trace_out)
        print(f"trace: {args.trace_out} ({len(tracer)} events)")
    if ledger_sink is not None:
        dump = LedgerDump()
        for part in ledger_sink:
            dump = dump.merge(part)
        with open(args.ledger_out, "w", encoding="utf-8") as fp:
            fp.write(dump.to_json())
        records = sum(
            len(payload.get("records", ())) for payload in dump.scenarios.values()
        )
        print(
            f"ledger: {args.ledger_out} "
            f"({len(dump.scenarios)} scenarios, {records} records)"
        )
    if registry is not None:
        snapshot: MetricsSnapshot = registry.snapshot()
        with open(args.metrics_out, "w", encoding="utf-8") as fp:
            fp.write(snapshot.to_json())
        print(f"metrics: {args.metrics_out} ({len(snapshot.values)} series)")
    print(f"chaos soak: {runs} runs, {failures} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""End-to-end chaos schedules over the lossy transport.

One chaos run builds the complete receive pipeline on a faulty wire
and drives it with a seeded schedule of rounds; each round posts a few
receives (a mix of exact and wildcard envelopes), sends a few messages
from multiple sender ranks (eager and rendezvous sizes), then pumps
the link to quiescence. A final cleanup phase posts fully-wildcard
receives for whatever is still parked unexpected, so every sent
message must surface as exactly one :class:`repro.rdma.protocol.Delivery`.

Correctness is judged two ways:

* **Exactly-once** — the multiset of delivered payload identities
  equals the multiset sent: nothing lost to a drop, nothing delivered
  twice from a duplicate or retransmission.
* **Oracle pairing** — the same post/send schedule is replayed through
  the serial :class:`repro.matching.list_matcher.ListMatcher`; each
  message must land in the same receive ``handle`` on both sides.
  The phase structure (pump to quiescence between rounds) makes the
  oracle's op interleaving well-defined even though the transport
  reorders frames internally.

Everything is derived from ``ChaosConfig.seed`` via
:func:`repro.util.rng.make_rng`: the schedule, the payload sizes, and
the wire's fault pattern. Same seed, same report — including runs that
end in :class:`repro.rdma.reliability.TransportError`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping

from repro.core.config import EngineConfig
from repro.core.envelope import ANY_SOURCE, ANY_TAG, MessageEnvelope, ReceiveRequest
from repro.core.faults import engine_by_name
from repro.core.threadsim import DeadlockError
from repro.matching.fallback import FallbackMatcher
from repro.obs.hooks import (
    DegradedWindowWatcher,
    EngineTraceObserver,
    PressureWindowWatcher,
)
from repro.obs.ledger import NULL_RECORDER, FlightRecorder
from repro.obs.timeline import NULL_SAMPLER, TimelineSampler, install_stack_probes
from repro.obs.trace import NULL_TRACER, SpanTracer
from repro.pressure.budget import PressureBudget, PressureMeter
from repro.pressure.controller import PressuredPipeline
from repro.rdma.bounce import BounceBufferPool
from repro.rdma.cq import CompletionQueue
from repro.rdma.faultwire import FaultPlan, FaultyWire
from repro.rdma.protocol import RdmaReceiver, RdmaSender, pump
from repro.rdma.qp import QueuePair
from repro.rdma.reliability import (
    ReliabilityConfig,
    ReliableWire,
    TransportError,
)
from repro.recovery.faults import CoreFaultPlan
from repro.recovery.quarantine import RecoveryPolicy
from repro.recovery.recoverer import RecoveringMatcher
from repro.recovery.watchdog import PairingOracle
from repro.util.rng import derive_seed, make_rng

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "config_from_params",
    "config_to_params",
    "run_chaos",
]


@dataclass(frozen=True, slots=True)
class ChaosConfig:
    """One seeded chaos schedule (schedule + faults + resources)."""

    seed: int = 0
    #: Sender ranks sharing the tx endpoint.
    senders: int = 3
    rounds: int = 6
    #: Inclusive bounds on posts/sends per round.
    max_posts_per_round: int = 4
    max_sends_per_round: int = 4
    tags: int = 5
    #: Probability a posted receive wildcards its source / its tag.
    wildcard_rate: float = 0.25
    #: Probability a payload exceeds the eager threshold (rendezvous).
    rndv_rate: float = 0.2
    eager_threshold: int = 64
    #: Fault schedule for the wire (seeded from ``seed`` when the
    #: plan's own seed is left at 0).
    plan: FaultPlan = field(default_factory=FaultPlan)
    reliability: ReliabilityConfig = field(default_factory=ReliabilityConfig)
    #: Receiver NIC resources; undersize them to exercise degradation.
    bounce_buffers: int = 64
    cq_depth: int = 256
    host_spill: bool = False
    max_receives: int = 256
    block_threads: int = 8
    pump_rounds: int = 4096
    #: Match through a *recoverable* :class:`FallbackMatcher` instead
    #: of a bare engine: descriptor-table overflow spills to software
    #: and drains back, exercising multiple engine generations.
    fallback: bool = False
    #: Accelerator core faults (fail-stop / hang / bit-flip), seeded
    #: from ``seed`` when the plan's own seed is left at 0. A non-clean
    #: plan routes matching through a
    #: :class:`repro.recovery.recoverer.RecoveringMatcher`.
    core_plan: CoreFaultPlan = field(default_factory=CoreFaultPlan)
    recovery: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    #: Simulated DPA cores available to the recovering matcher.
    cores: int = 16
    #: Engine implementation: ``"optimistic"`` or a mutant name from
    #: :data:`repro.core.faults.MUTANT_ENGINES` (soak lanes proving the
    #: watchdog catches planted bugs run the mutants here).
    engine: str = "optimistic"
    #: Run the online pairing watchdog at every round boundary instead
    #: of only the post-hoc oracle replay.
    watchdog: bool = False
    #: Enforce the §III-E DPA memory budget at runtime: matching runs
    #: through a :class:`repro.pressure.controller.PressuredPipeline`
    #: (admission control, eviction, host takeover), eager sends demote
    #: to rendezvous under pressure, and bounce allocation charges the
    #: meter.
    pressure: bool = False
    #: Budget for pressure mode: 0 selects the paper's §III-E model
    #: (128 bins + 8K receives ≈ 520 KiB), -1 is unlimited (books kept,
    #: enforcement never triggers), any positive value is explicit bytes.
    budget_bytes: int = 0

    def __post_init__(self) -> None:
        engine_by_name(self.engine)  # raises KeyError on unknown names
        if self.fallback and not self.core_plan.is_clean:
            raise ValueError(
                "fallback mode and core faults are mutually exclusive: the "
                "FallbackMatcher pipeline has no core-recovery loop "
                "(core faults route through RecoveringMatcher instead)"
            )
        if self.fallback and self.engine != "optimistic":
            raise ValueError("fallback mode only supports the optimistic engine")
        if self.pressure and self.fallback:
            raise ValueError(
                "pressure mode and fallback mode are mutually exclusive: the "
                "pressure pipeline has its own takeover/re-offload ladder"
            )
        if self.pressure and not self.core_plan.is_clean:
            raise ValueError(
                "pressure mode and core faults are mutually exclusive: the "
                "pressure pipeline has no core-recovery loop"
            )
        if self.budget_bytes < -1:
            raise ValueError(
                f"budget_bytes must be -1 (unlimited), 0 (paper §III-E) or "
                f"positive, got {self.budget_bytes}"
            )


def config_to_params(config: ChaosConfig) -> dict:
    """Flatten a :class:`ChaosConfig` into pure JSON literals.

    The inverse of :func:`config_from_params`; used to ship chaos runs
    across the :mod:`repro.fleet` worker boundary and to key the
    content-addressed result cache.
    """
    return asdict(config)


def config_from_params(params: Mapping[str, Any]) -> ChaosConfig:
    """Rebuild a :class:`ChaosConfig` from :func:`config_to_params` output."""
    payload = dict(params)
    plan = FaultPlan(**payload.pop("plan", {}))
    reliability = ReliabilityConfig(**payload.pop("reliability", {}))
    core_plan = CoreFaultPlan(**payload.pop("core_plan", {}))
    recovery = RecoveryPolicy(**payload.pop("recovery", {}))
    return ChaosConfig(
        plan=plan,
        reliability=reliability,
        core_plan=core_plan,
        recovery=recovery,
        **payload,
    )


@dataclass(slots=True)
class ChaosReport:
    """Observable outcome of one chaos run."""

    SCHEMA = "repro.chaos.report/v5"

    seed: int
    sent: int = 0
    delivered: int = 0
    #: Payload identities delivered more than once (must stay empty).
    duplicates: list[str] = field(default_factory=list)
    #: Payload identities never delivered (must stay empty).
    missing: list[str] = field(default_factory=list)
    #: ``payload id: got handle X, oracle says Y`` divergences.
    mismatches: list[str] = field(default_factory=list)
    #: The run ended in TransportError (retry budget exhausted).
    transport_failed: bool = False
    transport_error: str = ""
    # -- transport / degradation accounting --------------------------
    retransmits: int = 0
    rnr_naks: int = 0
    faults_injected: int = 0
    dropped: int = 0
    duplicated: int = 0
    reordered: int = 0
    corrupted: int = 0
    host_spills: int = 0
    degraded_stagings: int = 0
    #: Engine-generation boundaries (fallback mode): descriptor-table
    #: spills to software and migrations back onto a fresh engine.
    fallback_spills: int = 0
    fallback_recoveries: int = 0
    #: Reliability counters as *mirrored onto the carried engine
    #: stats* — must equal the wire's own cumulative counts even when
    #: the run spans several engine generations.
    engine_retransmits: int = 0
    engine_rnr_naks: int = 0
    # -- core-fault recovery accounting (schema v2) -------------------
    core_fail_stops: int = 0
    core_hangs: int = 0
    core_bit_flips: int = 0
    block_rollbacks: int = 0
    blocks_replayed: int = 0
    cores_quarantined: int = 0
    core_repairs: int = 0
    host_takeovers: int = 0
    reoffloads: int = 0
    #: Online watchdog comparisons performed (round boundaries).
    watchdog_checks: int = 0
    # -- memory-pressure accounting (schema v3) -----------------------
    #: Effective budget in bytes (-1 = unlimited; 0 = pressure off).
    budget_bytes: int = 0
    #: High-water mark of total charged bytes across all accounts.
    peak_charged_bytes: int = 0
    #: Times charge() would have exceeded the budget (must stay 0: the
    #: admission/eviction/RNR machinery keeps enforcement bloodless).
    budget_overruns: int = 0
    #: Eager sends demoted to rendezvous by the pressure probe.
    demotions: int = 0
    #: Unexpected entries evicted to the host parked store / recalled.
    evictions: int = 0
    recalls: int = 0
    #: Posts deferred by admission control.
    posts_deferred: int = 0
    #: Credit grants withheld while pressured (flow-control shrink).
    credit_holds: int = 0
    #: Hysteresis transitions into / out of the pressured band.
    pressure_entries: int = 0
    pressure_exits: int = 0
    #: Sustained-pressure host takeovers and re-offloads.
    pressure_takeovers: int = 0
    pressure_reoffloads: int = 0
    #: First matching-invariant violation (oracle divergence), with
    #: where it was caught: the round (-1 = post-hoc only) and the
    #: engine block counter at detection. Satellite (a): a nonzero
    #: lane failure is attributable from the report alone — rerun the
    #: seed, look at this block.
    first_violation: str = ""
    first_violation_round: int = -1
    first_violation_block: int = -1
    #: The engine itself crashed (internal assertion / deadlock) — the
    #: expected detection mode for some mutants.
    engine_failed: bool = False
    engine_error: str = ""
    # -- flight-recorder passport (schema v4) -------------------------
    #: Full lifecycle record of the first violating message (empty when
    #: no recorder was attached or the run was clean): the message's
    #: :meth:`repro.obs.ledger.MessageRecord.to_dict` dump, so a soak
    #: failure ships the exact phase history of the message that broke.
    passport: dict = field(default_factory=dict)
    # -- rank fault-tolerance accounting (schema v5) -------------------
    #: Whole-rank fail-stop kills injected by the RankFaultPlan.
    rank_kills: int = 0
    #: Distinct killed ranks the heartbeat detector flagged.
    rank_failures_detected: int = 0
    #: Suspicions of ranks that were alive (must stay 0: the detector's
    #: no-false-positive contract on a fault-free / congested fabric).
    rank_false_suspicions: int = 0
    #: Failed ranks revived from their coordinated checkpoint.
    rank_restarts: int = 0
    #: Communicator shrinks agreed by the survivors.
    comm_shrinks: int = 0
    #: Outstanding receives failed with RankFailedError on detection.
    rank_failed_recvs: int = 0
    #: Worst kill -> suspicion gap observed, in fabric ticks (bounded
    #: by ``timeout + max_route_rtt``).
    rank_detection_latency_max: int = 0
    #: Ticks spent in aborted epochs + agreement rounds (repair cost).
    rank_recovery_ticks: int = 0
    #: Aborts triggered by the stall / transport backstops instead of
    #: heartbeat suspicion (the mutant lanes' detection signal).
    rank_backstop_aborts: int = 0

    @property
    def ok(self) -> bool:
        """Exactly-once delivery with oracle-identical pairing."""
        return (
            not self.transport_failed
            and not self.engine_failed
            and not self.duplicates
            and not self.missing
            and not self.mismatches
            and not self.first_violation
            and self.delivered == self.sent
        )

    @property
    def detected_violation(self) -> bool:
        """Whether validation caught a matching bug (mutant lanes
        assert this is True; real-engine lanes assert it is False)."""
        return bool(self.first_violation or self.engine_failed or self.mismatches)

    # -- JSON round-trip (fleet cache / parallel workers) ---------------

    def to_dict(self) -> dict:
        payload = {name: getattr(self, name) for name in self.__dataclass_fields__}
        for name in ("duplicates", "missing", "mismatches"):
            payload[name] = list(payload[name])
        payload["passport"] = dict(payload["passport"])
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ChaosReport":
        return cls(**{k: payload[k] for k in cls.__dataclass_fields__ if k in payload})

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(
            {"schema": self.SCHEMA, **self.to_dict()}, indent=indent, sort_keys=True
        ) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ChaosReport":
        payload = json.loads(text)
        schema = payload.get("schema", cls.SCHEMA)
        if schema != cls.SCHEMA:
            raise ValueError(f"unsupported schema {schema!r}, expected {cls.SCHEMA!r}")
        return cls.from_dict(payload)


def _identity(payload: bytes) -> str:
    """Recover the ``src:seq`` identity from a (padded) payload."""
    return payload.rstrip(b".").decode()


class _FallbackPipeline:
    """Duck-type a :class:`FallbackMatcher` into the pipeline matcher
    interface (``post_receive`` / ``submit_message`` / ``process_all``)
    that :class:`RdmaReceiver` drives.

    The software side of the fallback resolves messages immediately
    (serial semantics); those events are buffered here and surfaced on
    the next ``process_all`` so the receiver sees one event stream
    regardless of which generation's engine did the matching.
    """

    def __init__(self, fallback: FallbackMatcher) -> None:
        self.fallback = fallback
        self._events: list = []

    @property
    def stats(self):
        return self.fallback.stats

    def post_receive(self, request: ReceiveRequest):
        return self.fallback.post_receive(request)

    def submit_message(self, msg: MessageEnvelope) -> None:
        event = self.fallback.incoming_message(msg)
        if event is not None:
            self._events.append(event)

    def process_all(self) -> list:
        events, self._events = self._events, []
        events.extend(self.fallback.flush())
        return events


def run_chaos(
    config: ChaosConfig,
    *,
    tracer: SpanTracer = NULL_TRACER,
    recorder: FlightRecorder = NULL_RECORDER,
    sampler: TimelineSampler = NULL_SAMPLER,
) -> ChaosReport:
    """Execute one seeded schedule; never raises on transport failure
    (the report carries it) so soak loops survive hostile fault plans.

    ``tracer`` (optional) receives the run's simulated-time spans — RC
    retransmit/RNR windows on the wire-tick clock, engine block spans,
    and spill->recovery windows — all stamped with the reliability
    layer's tick clock so one Perfetto timeline covers the stack.

    ``recorder`` (optional) attaches a :class:`repro.obs.ledger.FlightRecorder`
    to every layer: each sent message gets a lifecycle record stamped
    on the wire-tick clock (send -> wire -> staged -> cq -> engine ->
    matched -> complete, plus umq/parked detours and retransmit /
    rollback annotations), keyed back to the schedule by its
    ``rank:seq`` identity. When a run detects a violation, the first
    violating message's full record ships in ``report.passport``.

    ``sampler`` (optional) turns the run into a continuous-telemetry
    source: the standard stack probes (queue depths, conflict
    fraction, spill state, pressure gauges, retransmit counters) are
    installed and polled on the wire-tick clock at every round
    boundary — the input the :mod:`repro.obs.health` rules watch.
    """
    rng = make_rng(config.seed)
    plan = config.plan
    if plan.seed == 0 and config.seed != 0:
        plan = plan.with_options(seed=config.seed)
    core_plan = config.core_plan
    if core_plan.seed == 0 and config.seed != 0:
        # A distinct stream from the wire plan's, so wire and core
        # fault schedules stay independent under one run seed.
        core_plan = core_plan.with_options(seed=derive_seed(config.seed, "cores"))

    meter: PressureMeter | None = None
    if config.pressure:
        if config.budget_bytes == -1:
            budget = PressureBudget.unlimited()
        elif config.budget_bytes == 0:
            budget = PressureBudget.paper_iii_e()
        else:
            budget = PressureBudget(budget_bytes=config.budget_bytes)
        meter = PressureMeter(budget)

    raw = FaultyWire("tx", "rx", plan=plan)
    wire = ReliableWire(
        raw, config=config.reliability, tracer=tracer, recorder=recorder
    )
    rx_qp = QueuePair(
        wire,
        "rx",
        cq=CompletionQueue(config.cq_depth),
        bounce_pool=BounceBufferPool(config.bounce_buffers, pressure=meter),
        host_spill=config.host_spill,
        recorder=recorder,
    )
    tx_qp = QueuePair(wire, "tx")
    engine_config = EngineConfig(
        max_receives=config.max_receives, block_threads=config.block_threads
    )
    clock = lambda: float(wire.now)  # noqa: E731 - one shared sim clock
    if recorder.enabled:
        recorder.set_clock(clock)
    observer = (
        EngineTraceObserver(tracer, clock, process="engine")
        if tracer.enabled
        else None
    )
    engine_cls = engine_by_name(config.engine)
    if config.pressure:
        assert meter is not None
        matcher = PressuredPipeline(
            engine_config,
            meter,
            observer=observer,
            engine_cls=engine_cls,
            recorder=recorder,
        )
    elif config.fallback:
        matcher = _FallbackPipeline(
            FallbackMatcher(engine_config, recoverable=True, observer=observer)
        )
    elif not core_plan.is_clean:
        matcher = RecoveringMatcher(
            engine_config,
            cores=config.cores,
            core_plan=core_plan,
            recovery=config.recovery,
            engine_cls=engine_cls,
            observer=observer,
            tracer=tracer,
            clock=clock,
            recorder=recorder,
        )
    else:
        matcher = engine_cls(engine_config, observer=observer)
        if recorder.enabled and hasattr(matcher, "set_recorder"):
            matcher.set_recorder(recorder)
    watcher = (
        DegradedWindowWatcher(tracer, matcher.stats, clock)
        if tracer.enabled
        else None
    )
    pwatcher = (
        PressureWindowWatcher(tracer, meter.stats, clock)
        if tracer.enabled and meter is not None
        else None
    )
    receiver = RdmaReceiver(rx_qp, matcher, recorder=recorder)
    if sampler.enabled:
        install_stack_probes(
            sampler,
            matcher=matcher,
            engine_stats=matcher.stats,
            wire=wire,
            raw_wire=raw,
            meter=meter,
            receiver=receiver,
        )
        sampler.poll(clock())
    demote_probe = None
    if config.pressure:
        matcher.bind_transport(receiver)
        demote_probe = matcher.should_demote
    senders = [
        RdmaSender(
            tx_qp,
            rank,
            eager_threshold=config.eager_threshold,
            demote_probe=demote_probe,
            recorder=recorder,
        )
        for rank in range(config.senders)
    ]

    report = ChaosReport(seed=config.seed)
    # Live shadow oracle, fed in pipeline-observation order — the same
    # serial order the old post-hoc replay used, but incrementally, so
    # the online watchdog can diff deliveries at every round boundary.
    oracle = PairingOracle()
    sent_idents: list[str] = []
    #: Deliveries already cross-checked online / idents already flagged
    #: (so the post-hoc sweep does not double-report them).
    checked = 0
    flagged: set[str] = set()
    #: Identity of the first-violation message (passport lookup key).
    violation_ident: list[str] = []
    handle = 0
    seq = 0

    def post_one(source: int, tag: int) -> None:
        nonlocal handle
        request = ReceiveRequest(source=source, tag=tag, handle=handle)
        handle += 1
        receiver.post_receive(request)
        oracle.post(request)

    def send_one(rank: int, tag: int, size: int) -> None:
        nonlocal seq
        ident = f"{rank}:{seq}"
        seq += 1
        payload = ident.encode().ljust(size, b".")
        header = senders[rank].send(tag, payload)
        if recorder.enabled and header.mid >= 0:
            recorder.label(header.mid, ident)
        sent_idents.append(ident)
        oracle.message(ident, rank, tag)

    def watchdog_check(round_index: int) -> None:
        """Cross-check every not-yet-checked delivery against the
        oracle. Runs at transport quiescence, where a divergence is
        genuine and stable (the reliable wire delivers in send order,
        so pipeline and oracle have observed identical op prefixes)."""
        nonlocal checked
        report.watchdog_checks += 1
        while checked < len(receiver.completed):
            delivery = receiver.completed[checked]
            checked += 1
            ident = _identity(delivery.payload)
            diff = oracle.divergence(ident, delivery.handle)
            if diff is None:
                continue
            flagged.add(ident)
            report.mismatches.append(diff)
            if not report.first_violation:
                report.first_violation = diff
                report.first_violation_round = round_index
                report.first_violation_block = matcher.stats.blocks
                violation_ident.append(ident)

    try:
        for round_index in range(config.rounds):
            for _ in range(int(rng.integers(0, config.max_posts_per_round + 1))):
                source = (
                    ANY_SOURCE
                    if rng.random() < config.wildcard_rate
                    else int(rng.integers(0, config.senders))
                )
                tag = (
                    ANY_TAG
                    if rng.random() < config.wildcard_rate
                    else int(rng.integers(0, config.tags))
                )
                post_one(source, tag)
            for _ in range(int(rng.integers(1, config.max_sends_per_round + 1))):
                rank = int(rng.integers(0, config.senders))
                tag = int(rng.integers(0, config.tags))
                if rng.random() < config.rndv_rate:
                    size = config.eager_threshold + int(rng.integers(1, 64))
                else:
                    size = int(rng.integers(8, config.eager_threshold))
                send_one(rank, tag, size)
            pump(receiver, tx_qp, max_rounds=config.pump_rounds)
            if watcher is not None:
                watcher.poll()
            if pwatcher is not None:
                pwatcher.poll()
            if sampler.enabled:
                sampler.poll(clock())
            if config.watchdog:
                watchdog_check(round_index)
        # Cleanup: drain whatever is still parked unexpected so every
        # sent message must surface as exactly one delivery.
        outstanding = len(sent_idents) - len(receiver.completed)
        for _ in range(outstanding):
            post_one(ANY_SOURCE, ANY_TAG)
        if config.pressure:
            # End-of-run fence: force any admission-deferred posts in,
            # escalating to host matching if eviction cannot make room,
            # so the exactly-once audit below never blames backpressure.
            matcher.drain_deferred()
        pump(receiver, tx_qp, max_rounds=config.pump_rounds)
        if sampler.enabled:
            sampler.sample(clock())  # final sample regardless of interval
        if config.watchdog:
            watchdog_check(config.rounds)
    except TransportError as exc:
        report.transport_failed = True
        report.transport_error = str(exc)
    except (AssertionError, DeadlockError) as exc:
        # The engine itself tripped — an internal invariant assertion
        # (double consume) or an unattributed stall. For mutant lanes
        # this *is* the detection; for the real engine it fails the run.
        report.engine_failed = True
        report.engine_error = f"{type(exc).__name__}: {exc}"
    if watcher is not None:
        watcher.poll()
        watcher.close()
    if pwatcher is not None:
        pwatcher.poll()
        pwatcher.close()

    stats = matcher.stats
    report.sent = len(sent_idents)
    report.delivered = len(receiver.completed)
    report.retransmits = wire.stats.retransmits
    report.rnr_naks = wire.stats.rnr_naks
    report.faults_injected = raw.stats.total_injected()
    report.dropped = raw.stats.dropped
    report.duplicated = raw.stats.duplicated
    report.reordered = raw.stats.reordered
    report.corrupted = raw.stats.corrupted
    report.host_spills = rx_qp.host_spills
    report.degraded_stagings = stats.degraded_stagings
    report.fallback_spills = stats.fallback_spills
    report.fallback_recoveries = stats.fallback_recoveries
    report.engine_retransmits = stats.retransmits
    report.engine_rnr_naks = stats.rnr_naks
    if meter is not None:
        ps = meter.stats
        report.budget_bytes = (
            -1 if meter.budget.budget_bytes is None else meter.budget.budget_bytes
        )
        report.peak_charged_bytes = ps.peak_charged_bytes
        report.budget_overruns = ps.budget_overruns
        report.demotions = ps.demotions
        report.evictions = ps.evictions
        report.recalls = ps.recalls
        report.posts_deferred = ps.posts_deferred
        report.credit_holds = ps.credit_holds
        report.pressure_entries = ps.pressure_entries
        report.pressure_exits = ps.pressure_exits
        report.pressure_takeovers = ps.takeovers
        report.pressure_reoffloads = ps.reoffloads
    if isinstance(matcher, RecoveringMatcher):
        rs = matcher.recovery_stats
        report.core_fail_stops = rs.core_fail_stops
        report.core_hangs = rs.core_hangs
        report.core_bit_flips = rs.core_bit_flips
        report.block_rollbacks = rs.block_rollbacks
        report.blocks_replayed = rs.blocks_replayed
        report.cores_quarantined = rs.cores_quarantined
        report.core_repairs = rs.core_repairs
        report.host_takeovers = rs.host_takeovers
        report.reoffloads = rs.reoffloads
    if report.transport_failed or report.engine_failed:
        if recorder.enabled and violation_ident:
            report.passport = recorder.passport(violation_ident[0]) or {}
        return report

    # Exactly-once: delivered identity multiset == sent identity set.
    seen: dict[str, int] = {}
    got_handle: dict[str, int] = {}
    for delivery in receiver.completed:
        ident = _identity(delivery.payload)
        seen[ident] = seen.get(ident, 0) + 1
        got_handle[ident] = delivery.handle
    report.duplicates = sorted(i for i, n in seen.items() if n > 1)
    report.missing = sorted(i for i in sent_idents if i not in seen)

    # Post-hoc oracle pairing: the live shadow has already processed
    # the full schedule, so this is just the final sweep — it covers
    # whatever the online watchdog didn't run over (watchdog off, or
    # deliveries after the last check).
    for ident, got in sorted(got_handle.items()):
        if ident in flagged:
            continue  # already reported online
        diff = oracle.divergence(ident, got)
        if diff is not None:
            report.mismatches.append(diff)
            if not report.first_violation:
                report.first_violation = diff
                report.first_violation_block = matcher.stats.blocks
                violation_ident.append(ident)
    if recorder.enabled and violation_ident:
        report.passport = recorder.passport(violation_ident[0]) or {}
    return report

"""Cycle-cost model for the DPA and the host CPU.

Figure 8 is a message-*rate* benchmark; in this reproduction rates are
derived from a calibrated cycle model rather than wall-clock, so the
numbers are deterministic and the relative shape (who wins, by what
factor) is a pure function of the algorithmic work each configuration
performs.

Calibration rationale (all values are per-operation cycle budgets on
the respective device, chosen to reproduce the qualitative Figure 8
ordering reported by the paper, not measured on hardware):

* The BF3 DPA is a lightweight in-order multicore clocked well below a
  Xeon; per-step work is cheap but the clock is slower and handler
  activation / completion polling add fixed overheads.
* Host matching pays per-element queue-walk costs plus the MPI
  library's per-message software overhead.
* The raw-RDMA baseline pays neither — only wire/protocol costs — and
  therefore bounds the achievable message rate from above.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stats import BlockStats

__all__ = ["DpaCostModel", "HostCostModel", "WireModel"]


@dataclass(frozen=True, slots=True)
class DpaCostModel:
    """Per-operation cycle costs on the Data Path Accelerator."""

    clock_ghz: float = 1.8
    #: Handler activation on completion-queue entry (run-to-completion
    #: dispatch), per message.
    handler_activation: int = 120
    #: Serial component of completion dispatch: the NIC event scheduler
    #: hands completions to threads one at a time, so this term does
    #: not parallelize and bounds the DPA's message rate.
    dispatch_serial: int = 250
    #: Processing one receive-post QP command on the DPA.
    post_command: int = 80
    #: Polling one completion-queue entry.
    cq_poll: int = 30
    #: One hash computation (elided when inline hashes arrive).
    hash_compute: int = 25
    #: One bucket lookup (index read, pointer chase).
    bucket_probe: int = 18
    #: One chain element visited during search.
    chain_walk: int = 12
    #: One booking-bitmap write (atomic fetch-or).
    booking_write: int = 40
    #: One wait poll while blocked at a barrier or on a lower thread.
    wait_poll: int = 8
    #: Conflict-detection bitmap read + flag publication.
    conflict_check: int = 30
    #: One node hop along a compatible-receive run (fast path).
    fast_shift: int = 14
    #: Fixed overhead of entering the slow path (resynchronization).
    slow_entry: int = 150
    #: Per-element physical unlink during a sweep.
    sweep_per_node: int = 20
    #: Indexing a message into the unexpected store (all 4 structures).
    unexpected_insert: int = 90
    #: Copying one eager payload bounce buffer -> user buffer, per 64 B.
    eager_copy_per_64b: int = 10
    #: Evicting one cold unexpected entry to host memory under budget
    #: pressure (§III-E enforcement): unlink from the four structures
    #: plus the host-bound DMA descriptor write.
    eviction_cycles: int = 160
    #: Recalling one host-parked entry on a matching post: host read
    #: plus completion synthesis.
    recall_cycles: int = 140

    @classmethod
    def bluefield3(cls) -> "DpaCostModel":
        """The default profile: BF3 DPA (16 cores, ~1.8 GHz)."""
        return cls()

    @classmethod
    def spin(cls) -> "DpaCostModel":
        """An sPIN-style profile (§IV: "this approach can be also
        mapped onto other programmable on-NIC accelerators, like
        sPIN"): handler cores tightly coupled to the packet pipeline —
        cheaper handler activation and dispatch, slightly lower clock.
        """
        return cls(
            clock_ghz=1.0,
            handler_activation=40,
            dispatch_serial=80,
            cq_poll=10,
        )

    def block_cycles(self, block: BlockStats, cores: int) -> float:
        """Elapsed DPA cycles for one optimistic block.

        Uses the work/span law: N block threads on ``cores`` execution
        units finish no earlier than the critical path (the slowest
        thread) and no earlier than total work divided by the core
        count. Per-thread step counts from the stepped executor give
        the span; the aggregate counters give the work.
        """
        if block.messages == 0:
            return 0.0
        per_step = self.chain_walk  # executor steps are probe-grained
        span_steps = max(block.thread_steps) if block.thread_steps else 0
        work_steps = sum(block.thread_steps) if block.thread_steps else 0
        span = span_steps * per_step
        work = work_steps * per_step
        parallel = max(span, work / max(cores, 1))
        fixed = block.messages * (self.handler_activation + self.cq_poll)
        extras = (
            block.hashes_computed * self.hash_compute
            + block.buckets_probed * self.bucket_probe
            + block.bookings * self.booking_write
            + block.messages * self.conflict_check
            + block.wait_polls * self.wait_poll
            + block.slow_path * self.slow_entry
            + block.unexpected * self.unexpected_insert
            + block.swept * self.sweep_per_node
        )
        # Fixed per-message costs parallelize across cores too.
        return parallel + (fixed + extras) / max(cores, 1)

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.clock_ghz * 1e9)


@dataclass(frozen=True, slots=True)
class HostCostModel:
    """Per-operation cycle costs of host-CPU software matching."""

    clock_ghz: float = 3.0
    #: MPI library per-message software overhead (request management,
    #: protocol selection, completion) — paid with or without matching.
    per_message_overhead: int = 350
    #: Queue-walk cost per element (pointer chase, envelope compare).
    chain_walk: int = 10
    #: Posting bookkeeping per receive.
    per_post_overhead: int = 120
    #: Unexpected-queue insertion.
    unexpected_insert: int = 60
    #: Per-message host cost when no matching is done at all (raw RDMA
    #: completion handling) — the RDMA-CPU baseline's only host work.
    rdma_per_message: int = 110

    def matching_cycles(self, messages: int, walked: int, unexpected: int = 0) -> float:
        """Cycles the host spends matching ``messages`` with a total
        queue walk of ``walked`` elements."""
        return (
            messages * self.per_message_overhead
            + walked * self.chain_walk
            + unexpected * self.unexpected_insert
        )

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.clock_ghz * 1e9)


@dataclass(frozen=True, slots=True)
class WireModel:
    """Link/protocol timing shared by every configuration.

    The paper's ping-pong exchanges k small messages then one ack;
    the wire bounds the rate identically for all matchers, so only
    per-message wire occupancy and one-way latency matter.
    """

    #: One-way latency, seconds (typical HDR/NDR RDMA small-message).
    latency_s: float = 1.0e-6
    #: Per-message wire/DMA occupancy at the receiver NIC, seconds.
    per_message_s: float = 55.0e-9

    def sequence_seconds(self, k: int) -> float:
        """Wire time for one k-message sequence plus the ack."""
        return 2 * self.latency_s + k * self.per_message_s

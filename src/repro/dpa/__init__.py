"""Simulated Data Path Accelerator substrate.

* :class:`DpaMachine` — the optimistic matcher coupled to a cycle
  model with BlueField-3 geometry (16 cores / 256 threads)
* :class:`DpaCostModel` / :class:`HostCostModel` / :class:`WireModel`
  — the calibrated per-operation budgets behind every reported rate
* :class:`MemoryModel` — the §III-E footprint arithmetic
* :class:`StridedPoller` — the §IV-A completion-queue discipline
"""

from repro.dpa.completion import StridedPoller
from repro.dpa.costs import DpaCostModel, HostCostModel, WireModel
from repro.dpa.machine import BF3_CORES, BF3_THREADS, DpaMachine, DpaRunReport
from repro.dpa.memory import BYTES_PER_BIN, INDEX_TABLES, MemoryModel
from repro.dpa.pipeline import OffloadedEndpoint

__all__ = [
    "BF3_CORES",
    "BF3_THREADS",
    "BYTES_PER_BIN",
    "DpaCostModel",
    "DpaMachine",
    "DpaRunReport",
    "HostCostModel",
    "INDEX_TABLES",
    "MemoryModel",
    "OffloadedEndpoint",
    "StridedPoller",
    "WireModel",
]

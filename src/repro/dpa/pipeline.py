"""The assembled offloaded endpoint: one object, the whole §IV stack.

:class:`OffloadedEndpoint` wires together a queue pair, the
eager/rendezvous protocol receiver, the optimistic matching engine,
and the DPA cycle accounting. It is what a deployment would hand an
MPI library: post receives, call :meth:`progress`, read completed
deliveries — with per-message accelerator-cycle costs and a live
memory-footprint check on the side.
"""

from __future__ import annotations

from repro.core.config import EngineConfig
from repro.core.engine import OptimisticMatcher
from repro.core.envelope import ReceiveRequest
from repro.dpa.costs import DpaCostModel
from repro.dpa.machine import BF3_CORES
from repro.dpa.memory import MemoryModel
from repro.rdma.protocol import Delivery, RdmaReceiver
from repro.rdma.qp import QueuePair
from repro.recovery.faults import CoreFaultPlan
from repro.recovery.quarantine import RecoveryPolicy
from repro.recovery.recoverer import RecoveringMatcher

__all__ = ["OffloadedEndpoint"]


class OffloadedEndpoint:
    """Receiver-side offload pipeline with cycle accounting."""

    def __init__(
        self,
        qp: QueuePair,
        config: EngineConfig | None = None,
        *,
        cores: int = BF3_CORES,
        cost_model: DpaCostModel | None = None,
        keep_history: bool = False,
        history_limit: int | None = None,
        core_faults: CoreFaultPlan | None = None,
        recovery: RecoveryPolicy | None = None,
    ) -> None:
        """``keep_history`` retains per-block stats on the engine
        (bounded by ``history_limit`` when given); off by default so a
        long-lived endpoint cannot grow memory with traffic. Cycle
        accounting is exact either way — blocks are costed before any
        truncation.

        ``core_faults`` swaps the bare engine for a
        :class:`repro.recovery.recoverer.RecoveringMatcher` under a
        seeded core-fault schedule: blocks replay after rollback on
        surviving cores and matching escalates to host takeover past
        ``recovery.quarantine_threshold``. The carried stats object
        records only *successful* blocks, so cycle accounting stays
        exact across rollbacks and engine generations."""
        self.config = config if config is not None else EngineConfig()
        self.memory = MemoryModel(self.config.bins, self.config.max_receives)
        if self.memory.requires_fallback():
            raise ValueError(
                f"configuration needs {self.memory.total_bytes() / 1024:.0f} KiB, "
                f"beyond DPA L3 ({self.memory.l3_bytes / 1024:.0f} KiB); "
                "create the communicator in software instead (§III-E)"
            )
        # History retention is managed here, after costing, so the
        # engine itself stays unbounded (a limit applied inside absorb
        # could trim blocks before they were costed).
        if core_faults is not None:
            self.matcher: RecoveringMatcher | OptimisticMatcher = RecoveringMatcher(
                self.config,
                cores=cores,
                core_plan=core_faults,
                recovery=recovery,
                keep_history=True,
            )
        else:
            self.matcher = OptimisticMatcher(self.config, keep_history=True)
        self.receiver = RdmaReceiver(qp, self.matcher)
        self.costs = cost_model if cost_model is not None else DpaCostModel()
        self.cores = cores
        self.dpa_cycles = 0.0
        self._blocks_costed = 0
        self._keep_history = keep_history
        self._history_limit = history_limit

    @property
    def engine(self) -> OptimisticMatcher:
        """The current engine generation (changes across rollbacks)."""
        return getattr(self.matcher, "engine", self.matcher)

    @property
    def recovery_stats(self):
        """Recovery accounting, or None without ``core_faults``."""
        return getattr(self.matcher, "recovery_stats", None)

    # -- MPI-facing surface --------------------------------------------

    def post_receive(self, request: ReceiveRequest) -> None:
        self.receiver.post_receive(request)
        self._account_new_blocks()

    def progress(self) -> int:
        moved = self.receiver.progress()
        self._account_new_blocks()
        return moved

    @property
    def completed(self) -> list[Delivery]:
        return self.receiver.completed

    @property
    def unexpected_count(self) -> int:
        return self.matcher.unexpected_count

    # -- accounting ------------------------------------------------------

    def _account_new_blocks(self) -> None:
        # The stats object is carried across engine generations, so
        # this history is cumulative even under rollback/recovery.
        history = self.matcher.stats.block_history
        alive = self.cores
        quarantine = getattr(self.matcher, "quarantine", None)
        if quarantine is not None:
            alive = max(1, self.cores - quarantine.count)
        while self._blocks_costed < len(history):
            block = history[self._blocks_costed]
            self.dpa_cycles += self.costs.block_cycles(block, alive)
            self._blocks_costed += 1
        if not self._keep_history:
            history.clear()
            self._blocks_costed = 0
        elif self._history_limit is not None and len(history) > self._history_limit:
            drop = len(history) - self._history_limit
            del history[:drop]
            self._blocks_costed -= drop

    @property
    def dpa_seconds(self) -> float:
        return self.costs.cycles_to_seconds(self.dpa_cycles)

    def cycles_per_message(self) -> float:
        messages = self.matcher.stats.messages
        return self.dpa_cycles / messages if messages else 0.0

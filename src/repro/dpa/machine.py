"""The Data Path Accelerator machine model (§II-C, §IV).

The BF3 DPA is "equipped with 16 cores supporting 256 threads, with
tasks executed in a run-to-completion fashion". The machine model
couples an :class:`repro.core.engine.OptimisticMatcher` with the cycle
model: every processed block is charged elapsed DPA time under the
work/span law for the configured core count, and a running clock
accumulates across blocks.

The model also accounts *host* cycles separately — the headline claim
of the paper is that offloading frees the host CPU entirely, so the
host column for the DPA configuration is just the per-message protocol
overhead, never matching work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import EngineConfig
from repro.core.engine import OptimisticMatcher
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.events import MatchEvent
from repro.core.threadsim import SchedulePolicy
from repro.dpa.costs import DpaCostModel
from repro.dpa.memory import MemoryModel

__all__ = ["DpaMachine", "DpaRunReport"]

#: BlueField-3 DPA geometry (§II-C).
BF3_CORES = 16
BF3_THREADS = 256


@dataclass(slots=True)
class DpaRunReport:
    """Accumulated accounting of a DPA machine run."""

    blocks: int = 0
    messages: int = 0
    dpa_cycles: float = 0.0
    dpa_seconds: float = 0.0
    #: Host cycles spent on matching: always 0 for the offloaded
    #: engine — this field exists so reports align with CPU baselines.
    host_matching_cycles: float = 0.0
    per_block_cycles: list[float] = field(default_factory=list)

    def mean_cycles_per_message(self) -> float:
        return self.dpa_cycles / self.messages if self.messages else 0.0


class DpaMachine:
    """A simulated on-NIC accelerator running the optimistic matcher."""

    def __init__(
        self,
        config: EngineConfig | None = None,
        *,
        cores: int = BF3_CORES,
        cost_model: DpaCostModel | None = None,
        policy: SchedulePolicy | None = None,
        keep_block_history: bool = False,
    ) -> None:
        self.config = config if config is not None else EngineConfig()
        if self.config.block_threads > BF3_THREADS:
            raise ValueError(
                f"block width {self.config.block_threads} exceeds the DPA's "
                f"{BF3_THREADS} hardware threads"
            )
        self.cores = cores
        self.costs = cost_model if cost_model is not None else DpaCostModel()
        self.engine = OptimisticMatcher(self.config, policy=policy, keep_history=True)
        self.report = DpaRunReport()
        self._keep_block_history = keep_block_history
        self.memory = MemoryModel(self.config.bins, self.config.max_receives)

    def post_receive(self, request: ReceiveRequest) -> MatchEvent | None:
        """Host -> DPA receive-post command (QP write, §III-E)."""
        return self.engine.post_receive(request)

    def deliver(self, msg: MessageEnvelope) -> None:
        """A message lands in a bounce buffer; its completion entry
        will trigger a DPA thread."""
        self.engine.submit_message(msg)

    def run(self) -> list[MatchEvent]:
        """Process all pending messages, charging DPA time per block."""
        events: list[MatchEvent] = []
        while self.engine.pending_messages:
            start = len(self.engine.stats.block_history)
            events.extend(self.engine.process_block())
            for block in self.engine.stats.block_history[start:]:
                cycles = self.costs.block_cycles(block, self.cores)
                self.report.blocks += 1
                self.report.messages += block.messages
                self.report.dpa_cycles += cycles
                if self._keep_block_history:
                    self.report.per_block_cycles.append(cycles)
            if not self._keep_block_history:
                # History was only needed to cost the new blocks.
                del self.engine.stats.block_history[start:]
        self.report.dpa_seconds = self.costs.cycles_to_seconds(self.report.dpa_cycles)
        return events

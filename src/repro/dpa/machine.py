"""The Data Path Accelerator machine model (§II-C, §IV).

The BF3 DPA is "equipped with 16 cores supporting 256 threads, with
tasks executed in a run-to-completion fashion". The machine model
couples an :class:`repro.core.engine.OptimisticMatcher` with the cycle
model: every processed block is charged elapsed DPA time under the
work/span law for the configured core count, and a running clock
accumulates across blocks.

The model also accounts *host* cycles separately — the headline claim
of the paper is that offloading frees the host CPU entirely, so the
host column for the DPA configuration is just the per-message protocol
overhead, never matching work — *unless* the machine degrades.

Degraded mode (``degrade_to_host``, on by default): when the posted
working set outgrows the descriptor table (§III-B's capacity limit),
the machine no longer raises. The live state spills to a host
:class:`repro.matching.list_matcher.ListMatcher`, further traffic is
matched on the host (charged at :class:`repro.dpa.costs.HostCostModel`
rates into ``report.host_matching_cycles``), and once the host PRQ
drains below half the table capacity the state migrates back onto a
fresh engine and offloaded matching resumes. Spills, recoveries, and
host-matched messages are counted on the engine's
:class:`repro.core.stats.EngineStats`, which is carried across engine
generations so counters stay cumulative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import EngineConfig
from repro.core.descriptor import DescriptorTableFull
from repro.core.engine import OptimisticMatcher
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.events import MatchEvent, MatchKind
from repro.core.threadsim import SchedulePolicy
from repro.dpa.costs import DpaCostModel, HostCostModel
from repro.dpa.memory import MemoryModel
from repro.matching.list_matcher import ListMatcher
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER, SpanTracer
from repro.util.counters import MonotonicCounter

__all__ = ["DpaMachine", "DpaRunReport"]

#: BlueField-3 DPA geometry (§II-C).
BF3_CORES = 16
BF3_THREADS = 256


@dataclass(slots=True)
class DpaRunReport:
    """Accumulated accounting of a DPA machine run."""

    blocks: int = 0
    messages: int = 0
    dpa_cycles: float = 0.0
    dpa_seconds: float = 0.0
    #: Host cycles spent on matching: 0 while fully offloaded; nonzero
    #: only for operations handled in degraded (spilled-to-host) mode.
    host_matching_cycles: float = 0.0
    #: Messages matched on the host during degraded episodes.
    host_messages: int = 0
    per_block_cycles: list[float] = field(default_factory=list)

    def mean_cycles_per_message(self) -> float:
        return self.dpa_cycles / self.messages if self.messages else 0.0


class DpaMachine:
    """A simulated on-NIC accelerator running the optimistic matcher."""

    def __init__(
        self,
        config: EngineConfig | None = None,
        *,
        cores: int = BF3_CORES,
        cost_model: DpaCostModel | None = None,
        policy: SchedulePolicy | None = None,
        keep_block_history: bool = False,
        keep_history: bool | None = None,
        history_limit: int | None = None,
        degrade_to_host: bool = True,
        host_costs: HostCostModel | None = None,
        tracer: SpanTracer = NULL_TRACER,
    ) -> None:
        """``keep_history`` (alias of the older ``keep_block_history``)
        retains per-block history and cycle breakdowns; off by default
        so long runs stay memory-bounded. ``history_limit`` caps the
        retained history when it is on. ``tracer`` receives block and
        spill->recovery spans stamped on the DPA cycle clock."""
        self.config = config if config is not None else EngineConfig()
        if self.config.block_threads > BF3_THREADS:
            raise ValueError(
                f"block width {self.config.block_threads} exceeds the DPA's "
                f"{BF3_THREADS} hardware threads"
            )
        self.cores = cores
        self.costs = cost_model if cost_model is not None else DpaCostModel()
        self.host_costs = host_costs if host_costs is not None else HostCostModel()
        self._policy = policy
        self._keep_block_history = (
            keep_block_history if keep_history is None else keep_history
        )
        self._history_limit = history_limit
        # The engine always records block stats (the cycle model needs
        # each block's thread steps to cost it); when history retention
        # is off, _drain_engine truncates right after costing, so the
        # history never outlives one drain.
        self.engine = OptimisticMatcher(
            self.config, policy=policy, keep_history=True, history_limit=history_limit
        )
        self.report = DpaRunReport()
        self.memory = MemoryModel(self.config.bins, self.config.max_receives)
        self._tracer = tracer
        self._blocks_track = tracer.track("dpa", "blocks") if tracer.enabled else None
        self._degraded_track = (
            tracer.track("dpa", "degraded") if tracer.enabled else None
        )
        self._degrade_to_host = degrade_to_host
        #: Non-None while spilled: the host-side matcher owning the
        #: live working set.
        self._host: ListMatcher | None = None
        self._host_events: list[MatchEvent] = []
        #: Migrate back once the host PRQ fits this many receives.
        self._recover_threshold = self.config.max_receives // 2

    @property
    def degraded(self) -> bool:
        """Whether matching is currently spilled to the host."""
        return self._host is not None

    def now_us(self) -> float:
        """The machine's simulated clock: elapsed DPA microseconds."""
        return self.costs.cycles_to_seconds(self.report.dpa_cycles) * 1e6

    def register_metrics(self, registry: MetricsRegistry, *, prefix: str = "dpa") -> None:
        """Expose this machine's accounting in a metrics registry.

        Both the run report and the engine stats are *pulled* at
        snapshot time; the stats object is carried across spill and
        recovery, so counters stay cumulative over engine generations.
        """
        registry.register_stats(f"{prefix}.report", self.report)
        registry.register_stats(f"{prefix}.engine", self.engine.stats)
        registry.gauge(
            f"{prefix}.degraded", "1 while matching is spilled to the host"
        ).set_function(lambda: 1.0 if self.degraded else 0.0)

    def post_receive(self, request: ReceiveRequest) -> MatchEvent | None:
        """Host -> DPA receive-post command (QP write, §III-E).

        With ``degrade_to_host`` (the default), descriptor-table
        exhaustion spills the working set to a host list matcher
        instead of raising; the post is then handled there.
        """
        self._maybe_recover()
        if self._host is None:
            try:
                return self.engine.post_receive(request)
            except DescriptorTableFull:
                if not self._degrade_to_host:
                    raise
                self._spill()
        return self._host_post(request)

    def deliver(self, msg: MessageEnvelope) -> None:
        """A message lands in a bounce buffer; its completion entry
        will trigger a DPA thread (or, while degraded, a host match)."""
        self._maybe_recover()
        if self._host is None:
            self.engine.submit_message(msg)
            return
        self._host_deliver(msg)

    def run(self) -> list[MatchEvent]:
        """Process all pending messages, charging DPA time per block.

        Events produced on the host during degraded episodes are
        returned here too, interleaved before the current backlog, so
        callers see one stream regardless of where matching ran.
        """
        events, self._host_events = self._host_events, []
        events.extend(self._drain_engine())
        self.report.dpa_seconds = self.costs.cycles_to_seconds(self.report.dpa_cycles)
        return events

    # -- degraded mode ------------------------------------------------

    def _drain_engine(self) -> list[MatchEvent]:
        """Run the engine until idle, charging DPA time per block."""
        events: list[MatchEvent] = []
        while self.engine.pending_messages:
            start = len(self.engine.stats.block_history)
            events.extend(self.engine.process_block())
            for block in self.engine.stats.block_history[start:]:
                cycles = self.costs.block_cycles(block, self.cores)
                started_us = self.now_us()
                self.report.blocks += 1
                self.report.messages += block.messages
                self.report.dpa_cycles += cycles
                if self._keep_block_history:
                    self.report.per_block_cycles.append(cycles)
                    if (
                        self._history_limit is not None
                        and len(self.report.per_block_cycles) > self._history_limit
                    ):
                        del self.report.per_block_cycles[
                            : len(self.report.per_block_cycles) - self._history_limit
                        ]
                if self._blocks_track is not None:
                    self._tracer.complete(
                        self._blocks_track,
                        "block",
                        started_us,
                        self.now_us() - started_us,
                        args={
                            "messages": block.messages,
                            "conflicts": block.conflicts,
                            "fast": block.fast_path,
                            "slow": block.slow_path,
                            "cycles": cycles,
                        },
                    )
                    if block.slow_path:
                        self._tracer.instant(
                            self._blocks_track,
                            "slow_path",
                            self.now_us(),
                            args={"count": block.slow_path},
                        )
            if not self._keep_block_history:
                # History was only needed to cost the new blocks.
                del self.engine.stats.block_history[start:]
        return events

    def _spill(self) -> None:
        """Descriptor table full: migrate the working set to the host."""
        # Settle buffered messages first so the exported state is the
        # engine's final word; their events still surface via run().
        self._host_events.extend(self._drain_engine())
        receives, unexpected = self.engine.export_state()
        host = ListMatcher()
        host.seed_state(receives, unexpected)
        # Keep decision stamps monotone across the migration boundary.
        host.decisions = MonotonicCounter(self.engine.decisions.peek())
        self._host = host
        self.engine.stats.fallback_spills += 1
        if self._degraded_track is not None:
            self._tracer.begin(
                self._degraded_track,
                "degraded",
                self.now_us(),
                args={"spill": self.engine.stats.fallback_spills},
            )
            self._tracer.instant(self._degraded_track, "spill", self.now_us())

    def _maybe_recover(self) -> None:
        """Migrate back to the accelerator once the host set drained."""
        if self._host is None or self._host.posted_count > self._recover_threshold:
            return
        receives, unexpected = self._host.export_state()
        fresh = OptimisticMatcher(
            self.config,
            policy=self._policy,
            keep_history=True,
            history_limit=self._history_limit,
        )
        # Carry the cumulative stats object across engine generations.
        fresh.stats = self.engine.stats
        fresh.decisions = MonotonicCounter(self._host.decisions.peek())
        fresh.import_state(receives, unexpected)
        self.engine = fresh
        self._host = None
        self.engine.stats.fallback_recoveries += 1
        if self._degraded_track is not None:
            self._tracer.instant(self._degraded_track, "recovery", self.now_us())
            self._tracer.end(self._degraded_track, self.now_us())

    def _host_post(self, request: ReceiveRequest) -> MatchEvent | None:
        assert self._host is not None
        before = self._host.costs.walked
        event = self._host.post_receive(request)
        walked = self._host.costs.walked - before
        self.report.host_matching_cycles += (
            self.host_costs.per_post_overhead + walked * self.host_costs.chain_walk
        )
        return event

    def _host_deliver(self, msg: MessageEnvelope) -> None:
        assert self._host is not None
        before = self._host.costs.walked
        event = self._host.incoming_message(msg)
        walked = self._host.costs.walked - before
        stored = 1 if event.kind is MatchKind.STORED_UNEXPECTED else 0
        self.report.host_matching_cycles += self.host_costs.matching_cycles(
            1, walked, unexpected=stored
        )
        self.report.host_messages += 1
        self.engine.stats.degraded_matches += 1
        self._host_events.append(event)

"""The Data Path Accelerator machine model (§II-C, §IV).

The BF3 DPA is "equipped with 16 cores supporting 256 threads, with
tasks executed in a run-to-completion fashion". The machine model
couples an :class:`repro.core.engine.OptimisticMatcher` with the cycle
model: every processed block is charged elapsed DPA time under the
work/span law for the configured core count, and a running clock
accumulates across blocks.

The model also accounts *host* cycles separately — the headline claim
of the paper is that offloading frees the host CPU entirely, so the
host column for the DPA configuration is just the per-message protocol
overhead, never matching work — *unless* the machine degrades.

Degraded mode (``degrade_to_host``, on by default): when the posted
working set outgrows the descriptor table (§III-B's capacity limit),
the machine no longer raises. The live state spills to a host
:class:`repro.matching.list_matcher.ListMatcher`, further traffic is
matched on the host (charged at :class:`repro.dpa.costs.HostCostModel`
rates into ``report.host_matching_cycles``), and once the host PRQ
drains below half the table capacity the state migrates back onto a
fresh engine and offloaded matching resumes. Spills, recoveries, and
host-matched messages are counted on the engine's
:class:`repro.core.stats.EngineStats`, which is carried across engine
generations so counters stay cumulative.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace

from repro.core.config import EngineConfig
from repro.core.descriptor import DescriptorTableFull
from repro.core.engine import OptimisticMatcher
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.events import MatchEvent, MatchKind
from repro.core.threadsim import DeadlockError, SchedulePolicy
from repro.dpa.costs import DpaCostModel, HostCostModel
from repro.dpa.memory import MemoryModel
from repro.matching.list_matcher import ListMatcher
from repro.obs.ledger import NULL_RECORDER, FlightRecorder
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER, SpanTracer
from repro.recovery.faults import CoreFault, CoreFaultInjector, CoreFaultKind, CoreFaultPlan
from repro.recovery.journal import checkpoint_engine, host_takeover, restore_engine
from repro.recovery.quarantine import CoreQuarantine, RecoveryPolicy
from repro.recovery.recoverer import RecoveryStats
from repro.util.counters import MonotonicCounter

__all__ = ["DpaMachine", "DpaRunReport"]

#: BlueField-3 DPA geometry (§II-C).
BF3_CORES = 16
BF3_THREADS = 256


@dataclass(slots=True)
class DpaRunReport:
    """Accumulated accounting of a DPA machine run."""

    blocks: int = 0
    messages: int = 0
    dpa_cycles: float = 0.0
    dpa_seconds: float = 0.0
    #: Host cycles spent on matching: 0 while fully offloaded; nonzero
    #: only for operations handled in degraded (spilled-to-host) mode.
    host_matching_cycles: float = 0.0
    #: Messages matched on the host during degraded episodes.
    host_messages: int = 0
    #: Blocks that needed at least one replay after a core fault, and
    #: the DPA cycles those wasted attempts (plus hang-watchdog
    #: timeouts) burned — charged into ``dpa_cycles`` too.
    replayed_blocks: int = 0
    replay_cycles: float = 0.0
    per_block_cycles: list[float] = field(default_factory=list)

    def mean_cycles_per_message(self) -> float:
        return self.dpa_cycles / self.messages if self.messages else 0.0


class DpaMachine:
    """A simulated on-NIC accelerator running the optimistic matcher."""

    def __init__(
        self,
        config: EngineConfig | None = None,
        *,
        cores: int = BF3_CORES,
        cost_model: DpaCostModel | None = None,
        policy: SchedulePolicy | None = None,
        keep_block_history: bool = False,
        keep_history: bool | None = None,
        history_limit: int | None = None,
        degrade_to_host: bool = True,
        host_costs: HostCostModel | None = None,
        tracer: SpanTracer = NULL_TRACER,
        core_faults: CoreFaultPlan | None = None,
        recovery: RecoveryPolicy | None = None,
        enforce_budget: bool = False,
        budget: "PressureBudget | None" = None,
        recorder: FlightRecorder = NULL_RECORDER,
    ) -> None:
        """``keep_history`` (alias of the older ``keep_block_history``)
        retains per-block history and cycle breakdowns; off by default
        so long runs stay memory-bounded. ``history_limit`` caps the
        retained history when it is on. ``tracer`` receives block and
        spill->recovery spans stamped on the DPA cycle clock.

        ``core_faults`` (optional) arms a seeded
        :class:`repro.recovery.faults.CoreFaultInjector` inside the
        engine: deliveries then stage at the machine and every block
        runs guarded — checkpointed at its boundary, quarantining the
        faulted core and replaying on survivors when a fault strikes,
        escalating to the host spill path past
        ``recovery.quarantine_threshold`` dead cores. The cycle model
        charges each aborted attempt (and the hang-watchdog timeout
        per hang) as wasted DPA cycles, and blocks are costed over the
        *surviving* core count.

        ``enforce_budget`` arms §III-E enforcement: a
        :class:`repro.pressure.budget.PressureMeter` sized from this
        machine's :class:`MemoryModel` (or the explicit ``budget``)
        charges the bin tables statically and every live descriptor /
        unexpected entry dynamically. Under pressure, posting evicts
        the coldest unexpected entries to a host parked store (charged
        ``eviction_cycles`` apiece) and recalls them on a matching
        post (``recall_cycles``); spill/recovery migrations release
        and re-charge the accounts wholesale, and recovery is gated on
        the budget fitting the returning working set."""
        self.config = config if config is not None else EngineConfig()
        if self.config.block_threads > BF3_THREADS:
            raise ValueError(
                f"block width {self.config.block_threads} exceeds the DPA's "
                f"{BF3_THREADS} hardware threads"
            )
        self.cores = cores
        self.costs = cost_model if cost_model is not None else DpaCostModel()
        self.host_costs = host_costs if host_costs is not None else HostCostModel()
        self._policy = policy
        self._keep_block_history = (
            keep_block_history if keep_history is None else keep_history
        )
        self._history_limit = history_limit
        # The engine always records block stats (the cycle model needs
        # each block's thread steps to cost it); when history retention
        # is off, _drain_engine truncates right after costing, so the
        # history never outlives one drain.
        self.engine = OptimisticMatcher(
            self.config, policy=policy, keep_history=True, history_limit=history_limit
        )
        self.report = DpaRunReport()
        self.memory = MemoryModel(self.config.bins, self.config.max_receives)
        # -- flight recorder (repro.obs.ledger) -------------------------
        self.recorder = recorder
        if recorder.enabled:
            recorder.set_clock(self.now_us)
            self.engine.set_recorder(recorder)
        self._tracer = tracer
        self._blocks_track = tracer.track("dpa", "blocks") if tracer.enabled else None
        self._degraded_track = (
            tracer.track("dpa", "degraded") if tracer.enabled else None
        )
        self._degrade_to_host = degrade_to_host
        #: Non-None while spilled: the host-side matcher owning the
        #: live working set.
        self._host: ListMatcher | None = None
        self._host_events: list[MatchEvent] = []
        #: Migrate back once the host PRQ fits this many receives.
        self._recover_threshold = self.config.max_receives // 2
        # -- core-fault mode (repro.recovery) --------------------------
        self.recovery_policy = recovery if recovery is not None else RecoveryPolicy()
        self.recovery_stats = RecoveryStats()
        self.quarantine: CoreQuarantine | None = None
        self._injector: CoreFaultInjector | None = None
        self._staged: deque[MessageEnvelope] = deque()
        self._epoch = 0
        self._host_msgs = 0
        self._replay_hist = None
        self._recovery_track = None
        if core_faults is not None:
            self.quarantine = CoreQuarantine(
                cores, repair_epochs=self.recovery_policy.repair_epochs
            )
            self._injector = CoreFaultInjector(
                core_faults, active_cores=self.quarantine.active_cores
            )
            self.engine.fault_injector = self._injector
            if tracer.enabled:
                self._recovery_track = tracer.track("dpa", "recovery")
        # -- §III-E budget enforcement (repro.pressure) -----------------
        self.pressure: "PressureMeter | None" = None
        #: Host-parked evictees (budget enforcement), arrival order.
        self._parked: deque[MessageEnvelope] = deque()
        if enforce_budget or budget is not None:
            if core_faults is not None:
                raise ValueError(
                    "enforce_budget and core_faults are mutually exclusive: "
                    "guarded-block checkpoint/replay does not carry the "
                    "pressure ledger across rollbacks"
                )
            from repro.pressure.budget import PressureBudget, PressureMeter

            if budget is None:
                budget = PressureBudget.from_memory_model(self.memory)
            self.pressure = PressureMeter(budget)
            self.pressure.charge_bins(self.config.bins)
            self.engine.set_pressure(self.pressure)

    @property
    def degraded(self) -> bool:
        """Whether matching is currently spilled to the host."""
        return self._host is not None

    def now_us(self) -> float:
        """The machine's simulated clock: elapsed DPA microseconds."""
        return self.costs.cycles_to_seconds(self.report.dpa_cycles) * 1e6

    def register_metrics(self, registry: MetricsRegistry, *, prefix: str = "dpa") -> None:
        """Expose this machine's accounting in a metrics registry.

        Both the run report and the engine stats are *pulled* at
        snapshot time; the stats object is carried across spill and
        recovery, so counters stay cumulative over engine generations.
        """
        registry.register_stats(f"{prefix}.report", self.report)
        registry.register_stats(f"{prefix}.engine", self.engine.stats)
        registry.gauge(
            f"{prefix}.degraded", "1 while matching is spilled to the host"
        ).set_function(lambda: 1.0 if self.degraded else 0.0)
        if self.pressure is not None:
            from repro.obs.hooks import register_pressure_metrics

            register_pressure_metrics(
                registry, self.pressure, prefix=f"{prefix}.pressure"
            )
            registry.gauge(
                f"{prefix}.parked", "unexpected entries evicted to host"
            ).set_function(lambda: float(len(self._parked)))
        if self._injector is not None:
            registry.register_stats(f"{prefix}.recovery", self.recovery_stats)
            registry.gauge(
                f"{prefix}.quarantined", "cores currently quarantined"
            ).set_function(lambda: float(self.quarantine.count))
            self._replay_hist = registry.histogram(
                f"{prefix}.replay_cycles",
                "wasted DPA cycles per replayed-block episode",
                buckets=(256.0, 1024.0, 4096.0, 16384.0, 65536.0),
            )

    def post_receive(self, request: ReceiveRequest) -> MatchEvent | None:
        """Host -> DPA receive-post command (QP write, §III-E).

        With ``degrade_to_host`` (the default), descriptor-table
        exhaustion spills the working set to a host list matcher
        instead of raising; the post is then handled there. With
        ``enforce_budget``, budget pressure first evicts cold
        unexpected entries to the host parked store; a post matching a
        parked entry recalls it (both charged DPA cycles).
        """
        self._maybe_recover()
        if self.recorder.enabled:
            self.recorder.open_receive(
                request.handle, source=request.source, tag=request.tag
            )
        if self.pressure is not None:
            if self._host is None and self.pressure.under_pressure:
                # Evict *before* searching: a just-parked entry is
                # still found below (parked precedes resident).
                self._relieve_budget()
            parked = self._search_parked(request)
            if parked is not None:
                return self._record_match(self._recall(request, parked))
        if self._host is None:
            try:
                return self._record_match(self.engine.post_receive(request))
            except DescriptorTableFull:
                if not self._degrade_to_host:
                    raise
                self._spill()
        return self._record_match(self._host_post(request))

    def deliver(self, msg: MessageEnvelope) -> None:
        """A message lands in a bounce buffer; its completion entry
        will trigger a DPA thread (or, while degraded, a host match)."""
        self._maybe_recover()
        if self.recorder.enabled:
            if msg.mid < 0:
                # The machine is the earliest layer that sees this
                # message: it opens the record itself (bench/direct
                # drivers); protocol-driven flows arrive with a mid.
                msg = replace(
                    msg,
                    mid=self.recorder.open(
                        source=msg.source, tag=msg.tag, size=msg.size
                    ),
                )
            self.recorder.stamp(msg.mid, "cq")
        if self._host is None:
            if self._injector is not None:
                # Guarded mode: batches form at the machine so a
                # faulted block's messages are known for replay.
                self._staged.append(msg)
            else:
                self.engine.submit_message(msg)
            return
        self._host_deliver(msg)

    def run(self) -> list[MatchEvent]:
        """Process all pending messages, charging DPA time per block.

        Events produced on the host during degraded episodes are
        returned here too, interleaved before the current backlog, so
        callers see one stream regardless of where matching ran.
        """
        events, self._host_events = self._host_events, []
        events.extend(self._drain_engine())
        if self._host_events:
            # A mid-drain takeover routed the remaining backlog to the
            # host; surface those events in this run, not the next.
            events.extend(self._host_events)
            self._host_events = []
        self.report.dpa_seconds = self.costs.cycles_to_seconds(self.report.dpa_cycles)
        return events

    def _record_match(self, event: MatchEvent | None) -> MatchEvent | None:
        """Stamp resolution + completion for a resolved match. The
        machine is the last layer in direct-drive runs (bench, fleet);
        the engine's own ``matched`` stamp dedupes against this one."""
        if event is None or not self.recorder.enabled:
            return event
        if event.kind is not MatchKind.STORED_UNEXPECTED and event.receive is not None:
            mid = event.message.mid
            self.recorder.stamp(mid, "matched")
            self.recorder.complete(mid)
            self.recorder.close_receive(event.receive.handle, mid)
        return event

    # -- degraded mode ------------------------------------------------

    def _drain_engine(self) -> list[MatchEvent]:
        """Run the engine until idle, charging DPA time per block."""
        events: list[MatchEvent] = []
        if self._injector is not None:
            while self._staged:
                if self._host is not None:
                    while self._staged:
                        self._host_deliver(self._staged.popleft())
                    break
                width = self.config.block_threads
                batch = [
                    self._staged.popleft()
                    for _ in range(min(width, len(self._staged)))
                ]
                events.extend(self._guarded_block(batch))
            return events
        while self.engine.pending_messages:
            if self.pressure is not None and not self._reserve_block_room():
                # Even a fully-evicted unexpected store leaves no room
                # for the next block's stores: the budget cannot hold
                # this working set. The host adopts it (§III-E).
                self._budget_takeover()
                break
            start = len(self.engine.stats.block_history)
            block_events = self.engine.process_block()
            self._cost_new_blocks(start)
            if self.recorder.enabled:
                # Completion is stamped *after* costing so the ledger
                # sees the block's end-of-span clock.
                for event in block_events:
                    self._record_match(event)
            events.extend(block_events)
        return events

    def _cost_new_blocks(self, start: int) -> float:
        """Charge DPA time for ``block_history[start:]``; returns the
        cycles charged. Blocks run on the cores currently alive — a
        thinned quarantine set stretches each block's span."""
        charged = 0.0
        alive = self.cores if self.quarantine is None else max(
            1, self.cores - self.quarantine.count
        )
        for block in self.engine.stats.block_history[start:]:
            cycles = self.costs.block_cycles(block, alive)
            charged += cycles
            started_us = self.now_us()
            self.report.blocks += 1
            self.report.messages += block.messages
            self.report.dpa_cycles += cycles
            if self._keep_block_history:
                self.report.per_block_cycles.append(cycles)
                if (
                    self._history_limit is not None
                    and len(self.report.per_block_cycles) > self._history_limit
                ):
                    del self.report.per_block_cycles[
                        : len(self.report.per_block_cycles) - self._history_limit
                    ]
            if self._blocks_track is not None:
                self._tracer.complete(
                    self._blocks_track,
                    "block",
                    started_us,
                    self.now_us() - started_us,
                    args={
                        "messages": block.messages,
                        "conflicts": block.conflicts,
                        "fast": block.fast_path,
                        "slow": block.slow_path,
                        "cycles": cycles,
                        "cores": alive,
                    },
                )
                if block.slow_path:
                    self._tracer.instant(
                        self._blocks_track,
                        "slow_path",
                        self.now_us(),
                        args={"count": block.slow_path},
                    )
        if not self._keep_block_history:
            # History was only needed to cost the new blocks.
            del self.engine.stats.block_history[start:]
        return charged

    # -- §III-E budget enforcement (repro.pressure) ---------------------

    def _reserve_block_room(self) -> bool:
        """Make headroom for the next block's worst case (every message
        stores unexpected), evicting cold entries as needed. Returns
        whether the block can run within budget."""
        assert self.pressure is not None
        from repro.pressure.budget import UNEXPECTED_HEADER_BYTES

        width = min(self.engine.pending_messages, self.config.block_threads)
        need = UNEXPECTED_HEADER_BYTES * width
        while self.pressure.headroom() < need and self.engine.unexpected_count:
            envelope = self.engine.evict_oldest_unexpected()
            if envelope is None:  # pragma: no cover - count guards
                break
            self._parked.append(envelope)
            self.pressure.stats.evictions += 1
            self.report.dpa_cycles += self.costs.eviction_cycles
            if self.recorder.enabled:
                self.recorder.stamp(envelope.mid, "parked", cause="block-room")
        return self.pressure.headroom() >= need

    def _budget_takeover(self) -> None:
        """The budget cannot hold the next block: the host adopts the
        working set *and* the remaining message backlog."""
        assert self.pressure is not None and self._host is None
        pending = list(self.engine._pending)
        self.engine._pending.clear()
        self._host = host_takeover(self.engine)
        self.engine.stats.fallback_spills += 1
        self.pressure.stats.takeovers += 1
        self.pressure.release_all("descriptors")
        self.pressure.release_all("unexpected")
        if self.recorder.enabled:
            self.recorder.event("takeover", reason="budget")
        if self._degraded_track is not None:
            self._tracer.begin(
                self._degraded_track,
                "degraded",
                self.now_us(),
                args={"budget": True},
            )
            self._tracer.instant(self._degraded_track, "takeover", self.now_us())
        for msg in pending:
            self._host_deliver(msg)

    def _relieve_budget(self) -> None:
        """Evict cold unexpected entries until out of the pressured
        band (or the store empties), charging DPA cycles per evictee."""
        assert self.pressure is not None
        while self.pressure.under_pressure and self.engine.unexpected_count:
            envelope = self.engine.evict_oldest_unexpected()
            if envelope is None:  # pragma: no cover - count guards
                break
            self._parked.append(envelope)
            self.pressure.stats.evictions += 1
            self.report.dpa_cycles += self.costs.eviction_cycles
            if self.recorder.enabled:
                self.recorder.stamp(envelope.mid, "parked", cause="pressure")

    def _search_parked(self, request: ReceiveRequest) -> MessageEnvelope | None:
        for envelope in self._parked:
            if request.matches(envelope):
                return envelope
        return None

    def _recall(self, request: ReceiveRequest, envelope: MessageEnvelope) -> MatchEvent:
        """Drain a host-parked evictee into a matching post. Parked
        entries are strictly older than anything resident (eviction
        always takes the oldest), so recalling before the engine's own
        search preserves C2 across the eviction boundary."""
        self._parked.remove(envelope)
        self.pressure.stats.recalls += 1
        self.report.dpa_cycles += self.costs.recall_cycles
        if self.recorder.enabled:
            self.recorder.note(envelope.mid, "recall")
        self.engine.stats.receives_posted += 1
        self.engine.stats.receives_matched_from_unexpected += 1
        decisions = self.engine.decisions if self._host is None else self._host.decisions
        return MatchEvent(
            kind=MatchKind.UNEXPECTED_DRAIN,
            message=envelope,
            receive=request,
            receive_post_label=None,
            decision_order=decisions.next(),
        )

    # -- core-fault recovery (repro.recovery) --------------------------

    def _guarded_block(self, batch: list[MessageEnvelope]) -> list[MatchEvent]:
        """One staged batch to completion under the fault injector:
        checkpoint -> attempt -> (quarantine + rollback + replay, or
        takeover past the threshold) -> cost the surviving attempt."""
        rs = self.recovery_stats
        policy = self.recovery_policy
        attempts = 0
        hang_cycles = 0.0
        marks: list[tuple[int, int]] = []
        while True:
            self._advance_epoch()
            checkpoint = checkpoint_engine(self.engine)
            if self.recorder.enabled:
                # Speculation fence: stamps from an aborted attempt are
                # rewound so only the surviving attempt's remain.
                marks = [(msg.mid, self.recorder.mark(msg.mid)) for msg in batch]
            for msg in batch:
                self.engine.submit_message(msg)
            attempts += 1
            start = len(self.engine.stats.block_history)
            try:
                events = self.engine.process_block()
            except (CoreFault, DeadlockError):
                fault = self._injector.take_armed()
                if fault is None:
                    raise  # genuine engine bug — never mask it
                self._note_core_fault(fault)
                if fault.kind is CoreFaultKind.HANG:
                    hang_cycles += policy.hang_timeout_cycles
                self.engine = restore_engine(
                    checkpoint,
                    self.config,
                    policy=self._policy,
                    stats=self.engine.stats,
                    fault_injector=self._injector,
                    history_limit=self._history_limit,
                )
                if self.recorder.enabled:
                    self.engine.set_recorder(self.recorder)
                    for mid, mark in marks:
                        self.recorder.rewind(mid, mark)
                        self.recorder.note(
                            mid,
                            "rollback",
                            epoch=self._epoch,
                            attempt=attempts,
                            fault=fault.kind.value,
                        )
                rs.block_rollbacks += 1
                if (
                    self.quarantine.count > policy.quarantine_threshold
                    or attempts >= policy.max_replays_per_block
                ):
                    self._core_takeover(batch)
                    return []
                rs.blocks_replayed += 1
                rs.replay_messages += len(batch)
                continue
            block_cycles = self._cost_new_blocks(start)
            if attempts > 1 or hang_cycles:
                # Each aborted attempt burned about one block's work on
                # the then-alive cores; hangs additionally sat out the
                # stall watchdog's timeout before detection.
                wasted = (attempts - 1) * block_cycles + hang_cycles
                self.report.dpa_cycles += wasted
                self.report.replay_cycles += wasted
                self.report.replayed_blocks += 1
                rs.blocks_recovered += 1
                if self._replay_hist is not None:
                    self._replay_hist.observe(wasted)
                if self._recovery_track is not None:
                    self._tracer.instant(
                        self._recovery_track,
                        "replayed",
                        self.now_us(),
                        args={"attempts": attempts, "wasted_cycles": wasted},
                    )
            if self.recorder.enabled:
                for event in events:
                    self._record_match(event)
            return events

    def _note_core_fault(self, fault) -> None:
        rs = self.recovery_stats
        if fault.kind is CoreFaultKind.FAIL_STOP:
            rs.core_fail_stops += 1
        elif fault.kind is CoreFaultKind.HANG:
            rs.core_hangs += 1
        else:
            rs.core_bit_flips += 1
        if self._recovery_track is not None:
            self._tracer.instant(
                self._recovery_track,
                f"fault:{fault.kind.value}",
                self.now_us(),
                args={"core": fault.core, "thread": fault.thread},
            )
        if fault.kind is not CoreFaultKind.BIT_FLIP:
            self.quarantine.quarantine(fault.core, self._epoch)
            rs.cores_quarantined += 1
            if self._recovery_track is not None:
                self._tracer.instant(
                    self._recovery_track,
                    "quarantine",
                    self.now_us(),
                    args={"core": fault.core, "dead": self.quarantine.count},
                )

    def _advance_epoch(self) -> None:
        self._epoch += 1
        repaired = self.quarantine.repair_due(self._epoch)
        if repaired:
            self.recovery_stats.core_repairs += len(repaired)
            if self._recovery_track is not None:
                self._tracer.instant(
                    self._recovery_track,
                    "repair",
                    self.now_us(),
                    args={"cores": repaired, "dead": self.quarantine.count},
                )

    def _core_takeover(self, batch: list[MessageEnvelope]) -> None:
        """Too many dead cores (or an unkillable batch): the host list
        matcher adopts the (post-rollback, settled) working set via the
        same migration the descriptor spill path uses."""
        self._host = host_takeover(self.engine)
        self.engine.stats.fallback_spills += 1
        self.recovery_stats.host_takeovers += 1
        if self.recorder.enabled:
            self.recorder.event(
                "takeover", reason="core-faults", dead=self.quarantine.count
            )
        if self._degraded_track is not None:
            self._tracer.begin(
                self._degraded_track,
                "degraded",
                self.now_us(),
                args={"takeover": True, "dead": self.quarantine.count},
            )
            self._tracer.instant(self._degraded_track, "takeover", self.now_us())
        for msg in batch:
            self._host_deliver(msg)

    def _spill(self) -> None:
        """Descriptor table full: migrate the working set to the host."""
        # Settle buffered messages first so the exported state is the
        # engine's final word; their events still surface via run().
        self._host_events.extend(self._drain_engine())
        if self._host is not None:
            # A core takeover during the drain already migrated.
            return
        self._host = host_takeover(self.engine)
        self.engine.stats.fallback_spills += 1
        if self.recorder.enabled:
            self.recorder.event("takeover", reason="descriptor-spill")
        if self.pressure is not None:
            # The working set now lives in host memory: its charges
            # leave the accelerator wholesale.
            self.pressure.stats.takeovers += 1
            self.pressure.release_all("descriptors")
            self.pressure.release_all("unexpected")
        if self._degraded_track is not None:
            self._tracer.begin(
                self._degraded_track,
                "degraded",
                self.now_us(),
                args={"spill": self.engine.stats.fallback_spills},
            )
            self._tracer.instant(self._degraded_track, "spill", self.now_us())

    def _maybe_recover(self) -> None:
        """Migrate back to the accelerator once the host set drained
        (and, in core-fault mode, once enough cores repaired)."""
        if self._host is None or self._host.posted_count > self._recover_threshold:
            return
        if (
            self.quarantine is not None
            and self.quarantine.count > self.recovery_policy.quarantine_threshold
        ):
            return  # the accelerator is still not trustworthy
        if self.pressure is not None and not self._budget_fits_recovery():
            return  # the budget cannot absorb the returning set yet
        receives, unexpected = self._host.export_state()
        fresh = OptimisticMatcher(
            self.config,
            policy=self._policy,
            keep_history=True,
            history_limit=self._history_limit,
        )
        # Carry the cumulative stats object across engine generations.
        fresh.stats = self.engine.stats
        fresh.decisions = MonotonicCounter(self._host.decisions.peek())
        fresh.fault_injector = self._injector
        if self.pressure is not None:
            # Install the meter *before* import so the migrated state
            # is re-charged by the import hooks.
            fresh.set_pressure(self.pressure)
        if self.recorder.enabled:
            fresh.set_recorder(self.recorder)
            self.recorder.event("reoffload")
        fresh.import_state(receives, unexpected)
        self.engine = fresh
        self._host = None
        self.engine.stats.fallback_recoveries += 1
        if self.pressure is not None:
            self.pressure.stats.reoffloads += 1
        if self._injector is not None:
            self.recovery_stats.reoffloads += 1
        if self._degraded_track is not None:
            self._tracer.instant(self._degraded_track, "recovery", self.now_us())
            self._tracer.end(self._degraded_track, self.now_us())

    def _budget_fits_recovery(self) -> bool:
        assert self._host is not None and self.pressure is not None
        if self.pressure.under_pressure:  # pragma: no cover - spilled set
            return False
        from repro.core.descriptor import DESCRIPTOR_BYTES
        from repro.pressure.budget import UNEXPECTED_HEADER_BYTES

        need = (
            self._host.posted_count * DESCRIPTOR_BYTES
            + self._host.unexpected_count * UNEXPECTED_HEADER_BYTES
        )
        return self.pressure.would_fit(need)

    def _host_post(self, request: ReceiveRequest) -> MatchEvent | None:
        assert self._host is not None
        before = self._host.costs.walked
        event = self._host.post_receive(request)
        walked = self._host.costs.walked - before
        self.report.host_matching_cycles += (
            self.host_costs.per_post_overhead + walked * self.host_costs.chain_walk
        )
        return event

    def _host_deliver(self, msg: MessageEnvelope) -> None:
        assert self._host is not None
        before = self._host.costs.walked
        event = self._host.incoming_message(msg)
        walked = self._host.costs.walked - before
        stored = 1 if event.kind is MatchKind.STORED_UNEXPECTED else 0
        self.report.host_matching_cycles += self.host_costs.matching_cycles(
            1, walked, unexpected=stored
        )
        self.report.host_messages += 1
        self.engine.stats.degraded_matches += 1
        if self.recorder.enabled:
            if event.kind is MatchKind.STORED_UNEXPECTED:
                self.recorder.stamp(msg.mid, "umq", host=True)
            else:
                self._record_match(event)
        self._host_events.append(event)
        if self._injector is not None:
            # Host traffic still advances repair time, one epoch per
            # block-equivalent of messages.
            self._host_msgs += 1
            if self._host_msgs % self.config.block_threads == 0:
                self._advance_epoch()

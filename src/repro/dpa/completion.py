"""Completion-queue sharing discipline for DPA threads (§IV-A).

"In order to have multiple threads working on the same completion
queue, we let each thread poll on the next expected completion queue
entry for that thread: e.g., thread *i* will first wait for the
completion notification *i* to be generated. Then, once message *i* is
processed, it will wait on the completion notification *i + N* for the
next message (the completion queue needs to have a depth greater or
equal to N)."

This module models that strided polling: it turns a completion stream
into per-thread work assignments and checks the queue-depth
constraint. The block engine consumes the resulting batches.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import TypeVar

T = TypeVar("T")

__all__ = ["StridedPoller"]


class StridedPoller:
    """Assigns completion entries to N threads in stride-N order."""

    def __init__(self, threads: int, queue_depth: int) -> None:
        if threads <= 0:
            raise ValueError(f"thread count must be positive, got {threads}")
        if queue_depth < threads:
            raise ValueError(
                f"completion queue depth {queue_depth} must be >= thread "
                f"count {threads} (§IV-A)"
            )
        self.threads = threads
        self.queue_depth = queue_depth
        self._consumed = 0

    def thread_for_entry(self, entry_index: int) -> int:
        """Which thread polls (and processes) completion ``entry_index``."""
        return entry_index % self.threads

    def entries_for_thread(self, thread_id: int, total: int) -> list[int]:
        """All entry indexes thread ``thread_id`` handles in a stream
        of ``total`` completions: i, i+N, i+2N, ..."""
        if not 0 <= thread_id < self.threads:
            raise IndexError(f"thread {thread_id} out of range [0, {self.threads})")
        return list(range(thread_id, total, self.threads))

    def batches(self, entries: Sequence[T]) -> Iterator[list[T]]:
        """Group a completion stream into full-width processing blocks.

        Each batch holds up to N consecutive completions — entry ``k``
        of a batch is handled by thread ``k`` — preserving arrival
        order inside and across batches.
        """
        for start in range(0, len(entries), self.threads):
            batch = list(entries[start : start + self.threads])
            self._consumed += len(batch)
            yield batch

    @property
    def consumed(self) -> int:
        return self._consumed

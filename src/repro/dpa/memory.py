"""DPA memory-footprint model (§III-E).

"Each entry consists of a remove lock (4 bytes) and two pointers
(8 bytes each) to the head and tail of the chained queue within the
bin, totaling 20 bytes per bin. With the three index tables of our
approach, this results in a total cost of 7.5 KiB for 128 bins.
Additionally, each receive descriptor consumes 64 bytes. For example,
to support 8 K receives (posted at the same time), we need to allocate
about 520 KiB of DPA memory. For reference, DPA L2 and L3 caches in
BlueField-3 are 1.5 MiB and 3 MiB, respectively."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.descriptor import DESCRIPTOR_BYTES

__all__ = ["MemoryModel", "BYTES_PER_BIN", "INDEX_TABLES"]

#: Remove lock (4 B) + head pointer (8 B) + tail pointer (8 B).
BYTES_PER_BIN = 20
#: The three binned hash tables of §III-B (the double-wildcard list
#: needs one fixed header, negligible next to the tables).
INDEX_TABLES = 3

KIB = 1024
MIB = 1024 * 1024


@dataclass(frozen=True, slots=True)
class MemoryModel:
    """Footprint calculator for a given engine configuration."""

    bins: int
    max_receives: int
    #: BlueField-3 DPA cache sizes (§III-E).
    l2_bytes: int = int(1.5 * MIB)
    l3_bytes: int = 3 * MIB

    def bin_table_bytes(self) -> int:
        """All three index tables' bin headers."""
        return INDEX_TABLES * self.bins * BYTES_PER_BIN

    def descriptor_bytes(self) -> int:
        return self.max_receives * DESCRIPTOR_BYTES

    def total_bytes(self) -> int:
        return self.bin_table_bytes() + self.descriptor_bytes()

    def fits_l2(self) -> bool:
        return self.total_bytes() <= self.l2_bytes

    def fits_l3(self) -> bool:
        return self.total_bytes() <= self.l3_bytes

    def requires_fallback(self) -> bool:
        """Exceeding L3 means the working set cannot stay on the DPA;
        the implementation is expected to fall back to software tag
        matching (§III-E)."""
        return not self.fits_l3()

    def summary(self) -> dict[str, float]:
        return {
            "bins": self.bins,
            "max_receives": self.max_receives,
            "bin_tables_kib": self.bin_table_bytes() / KIB,
            "descriptors_kib": self.descriptor_bytes() / KIB,
            "total_kib": self.total_bytes() / KIB,
            "fits_l2": self.fits_l2(),
            "fits_l3": self.fits_l3(),
        }

"""The pressure controller: policy over the meter's books.

:class:`PressuredPipeline` duck-types the matcher interface that
:class:`repro.rdma.protocol.RdmaReceiver` drives (``post_receive`` /
``submit_message`` / ``process_all``) around a bare
:class:`repro.core.engine.OptimisticMatcher`, and layers the four
graceful-degradation responses of §III-E enforcement on top:

* **Admission control** — a post that must *allocate* a descriptor is
  deferred to a FIFO queue while the meter is pressured (or the
  descriptor would not fit); posts that *drain* an unexpected message
  are always admitted, because draining only releases memory. The
  queue is strictly FIFO — once anything is deferred, every later post
  queues behind it — which is what makes deferral pairing-invariant:
  posts keep their relative order, messages keep arrival order, and a
  deferred post drains exactly the (oldest compatible) message it
  would have been matched with live.
* **Eviction / recall** — under pressure, the globally oldest
  unexpected entries migrate to a host-side parked store (their staged
  bounce payloads spill to host memory through the PR-1
  ``host_data`` path), and are recalled on demand when a compatible
  receive arrives. Because eviction always takes the oldest resident
  entry, everything parked is strictly older than everything still on
  the accelerator — so the post path searches the parked store
  *first* and C2 (oldest-match) holds across evictions.
* **Escalation / re-offload** — sustained pressure (or an allocating
  post that cannot fit even after eviction) forces a full software
  takeover via the same :func:`repro.recovery.journal.host_takeover`
  migration the capacity-overflow fallback uses; once the software
  working set drains below half the descriptor table *and* occupancy
  is out of the pressured band, the state migrates back onto a fresh
  engine.

With an unlimited budget every gate is a constant-time no-op on the
exact pre-existing call sequence: same engine calls, same blocks, same
cycle costs, same pairings (asserted byte-for-byte in
``tests/pressure``).
"""

from __future__ import annotations

from collections import deque

from repro.core.config import EngineConfig
from repro.core.descriptor import DESCRIPTOR_BYTES
from repro.core.engine import OptimisticMatcher
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.events import MatchEvent, MatchKind, ResolutionPath
from repro.core.indexes import SearchProbeCount
from repro.matching.list_matcher import ListMatcher
from repro.obs.ledger import NULL_RECORDER, FlightRecorder
from repro.pressure.budget import PressureMeter, UNEXPECTED_HEADER_BYTES
from repro.util.counters import MonotonicCounter

__all__ = ["PressuredPipeline"]


class PressuredPipeline:
    """Budget-enforcing matcher pipeline for the receive stack."""

    def __init__(
        self,
        config: EngineConfig,
        meter: PressureMeter,
        *,
        comm: int = 0,
        observer=None,
        engine_cls: type[OptimisticMatcher] = OptimisticMatcher,
        recorder: FlightRecorder = NULL_RECORDER,
    ) -> None:
        self._config = config
        self._comm = comm
        self._observer = observer
        self._engine_cls = engine_cls
        self.recorder = recorder
        self.meter = meter
        self.engine = engine_cls(config, comm=comm, observer=observer)
        self.engine.set_pressure(meter)
        if recorder.enabled:
            self.engine.set_recorder(recorder)
        meter.charge_bins(config.bins)
        #: One stats object carried across every engine generation.
        self.stats = self.engine.stats
        #: Non-None while escalated: the host matcher owning the set.
        self._software: ListMatcher | None = None
        #: Host-parked evictees, strictly ascending arrival order.
        self._parked: deque[MessageEnvelope] = deque()
        #: Admission-deferred posts, strict FIFO.
        self._deferred: deque[ReceiveRequest] = deque()
        self._events: list[MatchEvent] = []
        self._receiver = None
        self._strikes = 0
        self._recover_threshold = config.max_receives // 2

    # -- wiring --------------------------------------------------------

    def bind_transport(self, receiver) -> None:
        """Attach the :class:`RdmaReceiver` whose staged payloads the
        eviction path spills to host memory (and whose CQ backlog the
        admission gate reserves headroom for)."""
        self._receiver = receiver

    def should_demote(self, size: int) -> bool:
        """The sender-side demotion probe: rendezvous while pressured."""
        if self.meter.under_pressure:
            self.meter.stats.demotions += 1
            return True
        return False

    # -- introspection -------------------------------------------------

    @property
    def offloaded(self) -> bool:
        return self._software is None

    @property
    def parked_count(self) -> int:
        return len(self._parked)

    @property
    def deferred_count(self) -> int:
        return len(self._deferred)

    @property
    def unexpected_count(self) -> int:
        resident = (
            self.engine.unexpected_count
            if self._software is None
            else self._software.unexpected_count
        )
        return resident + len(self._parked)

    # -- the matcher interface the RdmaReceiver drives -----------------

    def post_receive(self, request: ReceiveRequest) -> MatchEvent | None:
        # Settle buffered messages first (a post is a host->DPA QP
        # command; the DPA drains the completion queue before handling
        # it) so every drain check below sees current state.
        self._events.extend(self._flush_inner())
        parked = self._search_parked(request)
        if parked is not None:
            return self._recall(request, parked)
        if self._software is not None:
            event = self._software.post_receive(request)
            self._maybe_reoffload()
            return event
        if self._deferred:
            # Strict FIFO: nothing may overtake a deferred post, or a
            # later compatible post could steal its message.
            self._deferred.append(request)
            self.meter.stats.posts_deferred += 1
            return None
        if self.engine.unexpected.search(request, SearchProbeCount()) is not None:
            # Draining only releases memory: always admitted.
            return self.engine.post_receive(request)
        if self.meter.under_pressure:
            self._relieve()
        if not self.meter.under_pressure and self._fits_post():
            return self.engine.post_receive(request)
        self._deferred.append(request)
        self.meter.stats.posts_deferred += 1
        return None

    def submit_message(self, msg: MessageEnvelope) -> None:
        if self._software is not None:
            self.stats.degraded_matches += 1
            event = self._software.incoming_message(msg)
            if event is not None:
                self._events.append(event)
            return
        self.engine.submit_message(msg)

    def process_all(self) -> list[MatchEvent]:
        events, self._events = self._events, []
        events.extend(self._flush_inner())
        if self._software is None:
            # Proactive relief: shed cold unexpected state on every
            # progress round, not just when a post is waiting —
            # otherwise a pressured receiver with nothing to admit
            # would RNR-refuse the wire forever.
            self._relieve()
            if (
                self.meter.headroom() < self._wire_reserve()
                and self.engine.unexpected_count == 0
            ):
                # Even an empty unexpected store cannot make room for
                # one message: live descriptors own the budget. Only a
                # full host takeover (which moves the working set — and
                # message staging — into host memory) restores flow.
                self._escalate()
        events.extend(self._pump_admission())
        self._maybe_reoffload()
        return events

    def drain_deferred(self) -> None:
        """End-of-run fence: force the deferred queue empty, escalating
        to the host if eviction alone cannot make room. Resulting drain
        events surface from the next ``process_all``."""
        self._events.extend(self._flush_inner())
        while self._deferred:
            self._events.extend(self._pump_admission())
            if self._deferred and self._software is None:
                self._escalate()

    # -- admission -----------------------------------------------------

    def _fits_post(self) -> bool:
        """Would one more descriptor fit, leaving enough headroom for
        the unexpected-store headers of messages already staged in the
        completion queue (admitted by the RNR probe on the strength of
        headroom that existed before this post)?"""
        reserve = 0
        if self._receiver is not None:
            reserve = UNEXPECTED_HEADER_BYTES * len(self._receiver.qp.cq)
        return self.meter.would_fit(DESCRIPTOR_BYTES + reserve)

    def _pump_admission(self) -> list[MatchEvent]:
        events: list[MatchEvent] = []
        while True:
            progressed = self._admit_ready(events)
            if not self._deferred:
                self._strikes = 0
                return events
            if progressed:
                self._strikes = 0
            if self._software is None:
                if not self._fits_post() and self.engine.unexpected_count == 0:
                    # Nothing left to evict and the descriptor still
                    # cannot fit: the budget simply cannot hold this
                    # working set. Escalate now.
                    self._escalate()
                    continue
                self._strikes += 1
                if self._strikes >= self.meter.budget.sustained_threshold:
                    self._escalate()
                    continue
            return events

    def _admit_ready(self, events: list[MatchEvent]) -> bool:
        """Admit deferred posts head-first while the head is admissible.
        Returns whether any post was admitted."""
        progressed = False
        while self._deferred:
            request = self._deferred[0]
            parked = self._search_parked(request)
            if parked is not None:
                self._deferred.popleft()
                events.append(self._recall(request, parked))
                progressed = True
                continue
            if self._software is not None:
                self._deferred.popleft()
                event = self._software.post_receive(request)
                if event is not None:
                    events.append(event)
                progressed = True
                continue
            if self.engine.unexpected.search(request, SearchProbeCount()) is not None:
                self._deferred.popleft()
                event = self.engine.post_receive(request)
                if event is not None:
                    events.append(event)
                progressed = True
                continue
            if self.meter.under_pressure:
                self._relieve()
            if not self.meter.under_pressure and self._fits_post():
                self._deferred.popleft()
                event = self.engine.post_receive(request)
                if event is not None:  # pragma: no cover - allocating post
                    events.append(event)
                progressed = True
                continue
            break
        return progressed

    # -- eviction / recall ---------------------------------------------

    def _wire_reserve(self) -> int:
        """Bytes the RNR probe needs free to admit one payload-bearing
        message (header + bounce buffer). Zero with no transport bound."""
        if self._receiver is None:
            return 0
        return UNEXPECTED_HEADER_BYTES + self._receiver.qp.bounce_pool.buffer_bytes

    def _relieve(self) -> None:
        """Evict cold (oldest) unexpected entries until occupancy falls
        out of the pressured band — and, with a transport bound, until
        the wire can admit at least one more payload-bearing message
        (charged can sit just *below* the high watermark while the RNR
        probe refuses everything; that stuck band must drain too)."""
        reserve = self._wire_reserve()
        while self.engine.unexpected_count and (
            self.meter.under_pressure or self.meter.headroom() < reserve
        ):
            if not self._evict_one():  # pragma: no cover - count guards
                break

    def _evict_one(self) -> bool:
        envelope = self.engine.evict_oldest_unexpected()
        if envelope is None:
            return False
        self._parked.append(envelope)
        self._spill_staged_payload(envelope.send_seq)
        self.meter.stats.evictions += 1
        if self.recorder.enabled:
            self.recorder.stamp(envelope.mid, "parked")
        return True

    def _spill_staged_payload(self, token: int) -> None:
        """Move an evictee's staged eager payload out of NIC bounce
        memory into host memory (the PR-1 degraded staging path), so
        eviction frees the payload bytes too, not just the header."""
        if self._receiver is None:
            return
        staged = self._receiver._staged.get(token)
        if staged is None or staged.bounce is None:
            return  # rendezvous (header-only) or already host-staged
        payload = staged.bounce.read()
        self._receiver.qp.bounce_pool.release(staged.bounce)
        staged.bounce = None
        staged.host_data = payload

    def _search_parked(self, request: ReceiveRequest) -> MessageEnvelope | None:
        """Oldest parked envelope matching ``request``. Parked entries
        are strictly older than anything resident, so this search runs
        *before* the engine's — C2 across the eviction boundary."""
        for envelope in self._parked:
            if request.matches(envelope):
                return envelope
        return None

    def _recall(self, request: ReceiveRequest, envelope: MessageEnvelope) -> MatchEvent:
        self._parked.remove(envelope)
        self.meter.stats.recalls += 1
        if self.recorder.enabled:
            self.recorder.note(envelope.mid, "recall")
        self.stats.receives_posted += 1
        self.stats.receives_matched_from_unexpected += 1
        decisions = (
            self.engine.decisions if self._software is None else self._software.decisions
        )
        return MatchEvent(
            kind=MatchKind.UNEXPECTED_DRAIN,
            message=envelope,
            receive=request,
            receive_post_label=None,
            path=ResolutionPath.SERIAL,
            decision_order=decisions.next(),
        )

    # -- escalation / re-offload ---------------------------------------

    def _flush_inner(self) -> list[MatchEvent]:
        if self._software is not None:
            return self._software.flush()
        return self.engine.process_all()

    def _escalate(self) -> None:
        """Sustained pressure: the host adopts the whole working set
        (same migration primitive as the capacity-overflow fallback)."""
        assert self._software is None
        # Imported lazily; repro.recovery drives matchers, so a
        # top-level import would cycle.
        from repro.recovery.journal import host_takeover

        self._software = host_takeover(self.engine)
        self.stats.fallback_spills += 1
        self.meter.stats.takeovers += 1
        if self.recorder.enabled:
            self.recorder.event("takeover", reason="pressure")
        self.meter.release_all("descriptors")
        self.meter.release_all("unexpected")
        if self._receiver is not None:
            # The host owns matching now, so inbound staging is host
            # memory, not DPA memory: detach the meter from the bounce
            # pool (re-attached, and re-charged, on re-offload).
            self._receiver.qp.bounce_pool.pressure = None
            self.meter.release_all("bounce")
        self._strikes = 0

    def _maybe_reoffload(self) -> None:
        if self._software is None:
            return
        if self._software.posted_count > self._recover_threshold:
            return
        if self.meter.under_pressure:
            return
        pool = self._receiver.qp.bounce_pool if self._receiver is not None else None
        staging = pool.in_use * pool.buffer_bytes if pool is not None else 0
        need = (
            self._software.posted_count * DESCRIPTOR_BYTES
            + self._software.unexpected_count * UNEXPECTED_HEADER_BYTES
            + staging
            + self._wire_reserve()
        )
        if not self.meter.would_fit(need):
            return
        if pool is not None:
            # Staging moves back onto the accelerator: re-attach the
            # meter and re-charge buffers still held.
            pool.pressure = self.meter
            if staging:
                self.meter.charge("bounce", staging)
        self._events.extend(self._software.flush())
        receives, unexpected = self._software.export_state()
        fresh = self._engine_cls(self._config, comm=self._comm, observer=self._observer)
        fresh.stats = self.stats
        fresh.decisions = MonotonicCounter(self._software.decisions.peek())
        fresh.set_pressure(self.meter)
        if self.recorder.enabled:
            fresh.set_recorder(self.recorder)
        fresh.import_state(receives, unexpected)
        self.engine = fresh
        self._software = None
        self.stats.fallback_recoveries += 1
        self.meter.stats.reoffloads += 1
        if self.recorder.enabled:
            self.recorder.event("reoffload", reason="pressure")

"""Runtime enforcement of the DPA memory budget (§III-E).

:mod:`repro.dpa.memory` computes what a configuration *would* cost;
this package makes the cost binding at runtime. A
:class:`~repro.pressure.budget.PressureMeter` charges every posted
receive descriptor, bin-table slot, and staged bounce payload against
a configurable byte budget, and the layers above degrade gracefully
instead of overflowing: admission control defers posts, eager sends
demote to rendezvous, cold unexpected entries evict to the host, and
sustained pressure escalates to a full software takeover.
"""

from repro.pressure.budget import (
    BudgetOverrun,
    PressureBudget,
    PressureMeter,
    PressureState,
    PressureStats,
    UNEXPECTED_HEADER_BYTES,
)
from repro.pressure.controller import PressuredPipeline

__all__ = [
    "BudgetOverrun",
    "PressureBudget",
    "PressureMeter",
    "PressureState",
    "PressureStats",
    "PressuredPipeline",
    "UNEXPECTED_HEADER_BYTES",
]

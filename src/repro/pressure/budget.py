"""The memory budget and the charge meter that enforces it.

§III-E sizes the matcher's working set against the BlueField-3 DPA
caches: three 20 B/bin index tables plus 64 B per receive descriptor —
about 520 KiB for 8 K posted receives against 1.5 MiB of L2. The
:class:`repro.dpa.memory.MemoryModel` computes that footprint; the
:class:`PressureMeter` here makes it *binding*: every byte of live
accelerator state is charged to a named account, a charge that would
exceed the budget raises :class:`BudgetOverrun`, and a hysteresis
state machine (high/low watermarks) tells the layers above when to
start and stop degrading.

Accounts
--------

``bins``
    The static bin-table headers (charged once at wiring time).
``descriptors``
    64 B per live posted-receive descriptor.
``unexpected``
    One UMQ header per unexpected message resident on the accelerator.
``bounce``
    NIC bounce-buffer bytes holding staged eager payloads.

The meter never *acts* — admission control, demotion, eviction, and
takeover live in the layers that own the resources. The meter only
keeps the books, asserts the budget on every charge, and exposes the
watermark state the policies key off.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.descriptor import DESCRIPTOR_BYTES
from repro.dpa.memory import BYTES_PER_BIN, INDEX_TABLES, MemoryModel

__all__ = [
    "BudgetOverrun",
    "PressureBudget",
    "PressureMeter",
    "PressureState",
    "PressureStats",
    "UNEXPECTED_HEADER_BYTES",
]

#: One unexpected-message header resident in the UMQ: the envelope plus
#: the four index-structure links (§IV-C) — descriptor-sized.
UNEXPECTED_HEADER_BYTES = 64

#: The meter's charge accounts, in reporting order.
ACCOUNTS = ("bins", "descriptors", "unexpected", "bounce")


class BudgetOverrun(RuntimeError):
    """A charge would push occupancy past the memory budget.

    Admission control, the RNR probe, and the eviction policy exist to
    make this unreachable; raising (rather than silently exceeding)
    turns any gap in those gates into a loud failure.
    """


class PressureState(enum.Enum):
    """Watermark hysteresis state."""

    NORMAL = "normal"
    PRESSURE = "pressure"


@dataclass(frozen=True, slots=True)
class PressureBudget:
    """Configuration of one memory budget.

    ``budget_bytes=None`` is the unlimited (∞) budget: the meter still
    keeps the books but never exerts pressure, which is how the
    byte-identical-to-pre-PR guarantee is stated and tested.
    """

    budget_bytes: int | None = None
    #: Enter PRESSURE at ``high_watermark * budget`` charged bytes...
    high_watermark: float = 0.85
    #: ...and leave it only once occupancy falls to this fraction.
    low_watermark: float = 0.60
    #: Consecutive pressured admission rounds before escalating to a
    #: full software takeover.
    sustained_threshold: int = 3

    def __post_init__(self) -> None:
        if self.budget_bytes is not None and self.budget_bytes <= 0:
            raise ValueError(f"budget must be positive, got {self.budget_bytes}")
        if not 0.0 < self.low_watermark < self.high_watermark <= 1.0:
            raise ValueError(
                f"watermarks must satisfy 0 < low < high <= 1, got "
                f"low={self.low_watermark}, high={self.high_watermark}"
            )
        if self.sustained_threshold < 1:
            raise ValueError(
                f"sustained_threshold must be >= 1, got {self.sustained_threshold}"
            )

    @classmethod
    def unlimited(cls) -> "PressureBudget":
        return cls(budget_bytes=None)

    @classmethod
    def from_memory_model(cls, model: MemoryModel, **overrides: Any) -> "PressureBudget":
        """Budget exactly the configured footprint of ``model``."""
        return cls(budget_bytes=model.total_bytes(), **overrides)

    @classmethod
    def paper_iii_e(cls, **overrides: Any) -> "PressureBudget":
        """The §III-E example: 128 bins, 8 K receives — ~520 KiB."""
        return cls.from_memory_model(
            MemoryModel(bins=128, max_receives=8192), **overrides
        )

    @property
    def high_bytes(self) -> int | None:
        if self.budget_bytes is None:
            return None
        return int(self.budget_bytes * self.high_watermark)

    @property
    def low_bytes(self) -> int | None:
        if self.budget_bytes is None:
            return None
        return int(self.budget_bytes * self.low_watermark)


@dataclass(slots=True)
class PressureStats:
    """Counters narrating one run's pressure behaviour."""

    SCHEMA = "repro.pressure.stats/v1"

    #: Highest total occupancy ever charged (the acceptance assert:
    #: this never exceeds the budget).
    peak_charged_bytes: int = 0
    #: Charges refused because they would have exceeded the budget.
    budget_overruns: int = 0
    #: NORMAL -> PRESSURE transitions (and the reverse).
    pressure_entries: int = 0
    pressure_exits: int = 0
    #: Eager sends demoted to rendezvous while under pressure.
    demotions: int = 0
    #: UMQ entries evicted to the host, and evictees recalled on post.
    evictions: int = 0
    recalls: int = 0
    #: Posts queued by admission control instead of admitted inline.
    posts_deferred: int = 0
    #: Full software takeovers forced by sustained pressure, and the
    #: re-offloads once occupancy fell below the low watermark.
    takeovers: int = 0
    reoffloads: int = 0
    #: Credit grants withheld by the receiver while under pressure.
    credit_holds: int = 0

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PressureStats":
        return cls(**{k: payload[k] for k in cls.__dataclass_fields__ if k in payload})

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(
            {"schema": self.SCHEMA, **self.to_dict()}, indent=indent, sort_keys=True
        ) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "PressureStats":
        payload = json.loads(text)
        schema = payload.get("schema", cls.SCHEMA)
        if schema != cls.SCHEMA:
            raise ValueError(f"unsupported schema {schema!r}, expected {cls.SCHEMA!r}")
        return cls.from_dict(payload)


class PressureMeter:
    """Charge accounting against one :class:`PressureBudget`.

    The meter is shared by every layer of one receive stack (engine,
    bounce pool, flow control, controller); all of them see the same
    occupancy and the same watermark state.
    """

    def __init__(
        self, budget: PressureBudget | None = None, *, stats: PressureStats | None = None
    ) -> None:
        self.budget = budget if budget is not None else PressureBudget.unlimited()
        self.stats = stats if stats is not None else PressureStats()
        self.accounts: dict[str, int] = {name: 0 for name in ACCOUNTS}
        self.state = PressureState.NORMAL

    # -- occupancy -----------------------------------------------------

    @property
    def charged(self) -> int:
        """Total bytes currently charged across all accounts."""
        return sum(self.accounts.values())

    @property
    def budget_bytes(self) -> int | None:
        return self.budget.budget_bytes

    def headroom(self) -> int | float:
        """Bytes left before the budget (infinite when unlimited)."""
        if self.budget.budget_bytes is None:
            return float("inf")
        return self.budget.budget_bytes - self.charged

    def would_fit(self, nbytes: int) -> bool:
        return self.headroom() >= nbytes

    def level(self) -> float:
        """Occupancy as a fraction of the budget (0.0 when unlimited)."""
        if self.budget.budget_bytes is None:
            return 0.0
        return self.charged / self.budget.budget_bytes

    @property
    def under_pressure(self) -> bool:
        return self.state is PressureState.PRESSURE

    # -- charging ------------------------------------------------------

    def charge(self, account: str, nbytes: int) -> None:
        """Charge ``nbytes`` to ``account``; asserts the budget.

        Raising here is the last line of defence — the gates above
        (admission control, the RNR probe) are supposed to make every
        charge fit. A raise therefore means a gate is broken, and the
        overrun counter records it for the report.
        """
        if nbytes < 0:
            raise ValueError(f"charge must be non-negative, got {nbytes}")
        if account not in self.accounts:
            raise KeyError(f"unknown pressure account {account!r}")
        if not self.would_fit(nbytes):
            self.stats.budget_overruns += 1
            raise BudgetOverrun(
                f"charging {nbytes} B to {account!r} would exceed the "
                f"{self.budget.budget_bytes} B budget "
                f"({self.charged} B already charged)"
            )
        self.accounts[account] += nbytes
        total = self.charged
        if total > self.stats.peak_charged_bytes:
            self.stats.peak_charged_bytes = total
        self._update_state()

    def release(self, account: str, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"release must be non-negative, got {nbytes}")
        if self.accounts.get(account, 0) - nbytes < 0:
            raise ValueError(
                f"releasing {nbytes} B from {account!r} would drive the "
                f"account negative ({self.accounts.get(account, 0)} B charged)"
            )
        self.accounts[account] -= nbytes
        self._update_state()

    def release_all(self, account: str) -> int:
        """Zero one account (working-set migration off the DPA)."""
        released = self.accounts[account]
        self.accounts[account] = 0
        self._update_state()
        return released

    # -- typed helpers (the fixed §III-E unit costs) -------------------

    def charge_bins(self, bins: int) -> None:
        self.charge("bins", INDEX_TABLES * bins * BYTES_PER_BIN)

    def charge_descriptor(self) -> None:
        self.charge("descriptors", DESCRIPTOR_BYTES)

    def release_descriptor(self) -> None:
        self.release("descriptors", DESCRIPTOR_BYTES)

    def charge_unexpected(self) -> None:
        self.charge("unexpected", UNEXPECTED_HEADER_BYTES)

    def release_unexpected(self) -> None:
        self.release("unexpected", UNEXPECTED_HEADER_BYTES)

    # -- watermark hysteresis ------------------------------------------

    def _update_state(self) -> None:
        high, low = self.budget.high_bytes, self.budget.low_bytes
        if high is None:
            return
        total = self.charged
        if self.state is PressureState.NORMAL and total >= high:
            self.state = PressureState.PRESSURE
            self.stats.pressure_entries += 1
        elif self.state is PressureState.PRESSURE and total <= low:
            self.state = PressureState.NORMAL
            self.stats.pressure_exits += 1

    def snapshot(self) -> dict[str, float]:
        """One gauge sample (the obs layer's pull hook)."""
        return {
            "charged_bytes": float(self.charged),
            "budget_bytes": float(self.budget.budget_bytes or 0),
            "level": self.level(),
            "under_pressure": 1.0 if self.under_pressure else 0.0,
            **{f"account.{name}": float(v) for name, v in self.accounts.items()},
        }

    def timeline_probes(self) -> dict:
        """Live gauge probes for the timeline sampler.

        ``level``/``charged``/``under_pressure`` are instantaneous
        occupancy gauges; the rest are cumulative enforcement counters
        (exactly flat on runs that never hit the budget — the health
        layer's zero-false-alarm basis).
        """
        return {
            "level": self.level,
            "charged": lambda: float(self.charged),
            "under_pressure": lambda: 1.0 if self.under_pressure else 0.0,
            "entries": lambda: float(self.stats.pressure_entries),
            "overruns": lambda: float(self.stats.budget_overruns),
            "demotions": lambda: float(self.stats.demotions),
            "evictions": lambda: float(self.stats.evictions),
            "takeovers": lambda: float(self.stats.takeovers),
        }

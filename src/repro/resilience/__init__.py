"""Rank fault tolerance: fail-stop injection, detection, repair.

The ULFM-style layer above the cluster fabric: seeded whole-rank
fail-stop faults (:mod:`repro.resilience.faults`), heartbeat failure
detection over the fabric's management lane (:mod:`repro.resilience.
heartbeat`), coordinated round-boundary checkpoints built on the PR 4
block journal (:mod:`repro.resilience.snapshot`), deterministic
agreement + shrink / respawn communicator repair (:mod:`repro.
resilience.repair`), and the resilient BSP driver that ties them
together (:mod:`repro.resilience.cluster`).
"""

from repro.resilience.cluster import (
    RESILIENCE_APPS,
    ResilienceReport,
    ResilientClusterSim,
    resilience_round,
    run_resilient,
)
from repro.resilience.errors import RankFailedError
from repro.resilience.faults import RankFaultInjector, RankFaultPlan
from repro.resilience.heartbeat import HeartbeatConfig, HeartbeatNetwork
from repro.resilience.repair import RepairDecision, agree
from repro.resilience.snapshot import (
    RankSnapshot,
    WorldCheckpoint,
    restore_rank,
    snapshot_rank,
)

__all__ = [
    "RESILIENCE_APPS",
    "HeartbeatConfig",
    "HeartbeatNetwork",
    "RankFailedError",
    "RankFaultInjector",
    "RankFaultPlan",
    "RankSnapshot",
    "RepairDecision",
    "ResilienceReport",
    "ResilientClusterSim",
    "WorldCheckpoint",
    "agree",
    "resilience_round",
    "restore_rank",
    "run_resilient",
    "snapshot_rank",
]

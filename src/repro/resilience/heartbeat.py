"""Heartbeat failure detection over the fabric's management lane.

Every live rank emits a heartbeat every ``period`` ticks to every
other member; an observer suspects a peer once ``timeout`` ticks pass
with no beat heard. Beats ride the fabric control plane
(:meth:`repro.net.fabric.Fabric.inject_control` — the VL15-style
management lane): they traverse the peer's *real static route*, so
detection latency is a measurable function of the topology, but they
never queue behind data traffic and data traffic never queues behind
them — which is what makes the detector's two contractual properties
provable rather than statistical:

* **No false suspicions on a fault-free fabric.** A beat emitted at
  ``t`` arrives at exactly ``t + delay(route)``; as long as the
  emitter lives and ``timeout >= period + max_oneway + pump slack``,
  the observer's gap between arrivals can never reach ``timeout``,
  under any topology, placement, or data-plane congestion.
* **Bounded detection.** A rank killed at ``t`` emitted its last beat
  no earlier than ``t - period``; the last arrival lands by
  ``t + oneway``, so suspicion fires by ``t + timeout + oneway <=
  t + timeout + max_route_rtt``.

The property tests in ``tests/resilience/test_heartbeat.py`` drive
these bounds tick-by-tick across seeded topologies.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping

from repro.net.fabric import Fabric

__all__ = ["HeartbeatConfig", "HeartbeatNetwork"]


@dataclass(frozen=True, slots=True)
class HeartbeatConfig:
    """Detector tuning (JSON-literal fields only).

    ``timeout`` must comfortably exceed ``period`` plus the worst
    one-way control delay plus the driver's pump granularity; the
    integrated defaults leave a wide margin so the no-false-positive
    property holds even when the driver pumps once per progress round.
    """

    period: int = 16
    timeout: int = 256

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {self.period}")
        if self.timeout <= self.period:
            raise ValueError(
                f"timeout ({self.timeout}) must exceed period ({self.period})"
            )

    def to_params(self) -> dict:
        return asdict(self)

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "HeartbeatConfig":
        return cls(**dict(params))


class HeartbeatNetwork:
    """One membership's heartbeat mesh on one fabric.

    ``members`` maps each rank to the host node it lives on. The
    driver calls :meth:`pump` to emit due beats and drain arrivals,
    then :meth:`new_suspicions` to collect fresh timeouts; ground
    truth (was the suspect actually killed?) is the *caller's* to
    audit — the detector itself only observes silence.
    """

    def __init__(
        self,
        fabric: Fabric,
        members: Mapping[int, str],
        config: HeartbeatConfig,
        *,
        start: int | None = None,
    ) -> None:
        if len(members) < 2:
            raise ValueError("heartbeats need at least two members")
        self.fabric = fabric
        self.config = config
        self.members = dict(members)
        self.ports = {rank: f"hb:r{rank}" for rank in self.members}
        for rank in sorted(self.members):
            fabric.attach_control(self.ports[rank])
        start = fabric.clock if start is None else start
        self.live: set[int] = set(self.members)
        #: rank -> tick its next beat is due (first beat immediately).
        self.next_beat = {rank: start for rank in self.members}
        #: observer -> peer -> arrival tick of the freshest beat heard
        #: (registration counts as hearing: a grace period, not data).
        self.last_heard = {
            obs: {peer: start for peer in self.members if peer != obs}
            for obs in self.members
        }
        self.suspected: dict[int, set[int]] = {obs: set() for obs in self.members}
        self.beats_sent = 0
        self.beats_heard = 0

    def kill(self, rank: int) -> None:
        """Fail-stop ``rank``: beats already in flight still arrive
        (the wire does not know the sender died), but no more are
        emitted and the rank stops observing."""
        self.live.discard(rank)

    def max_route_rtt(self) -> int:
        """Worst member-pair control round trip — the topology term of
        the detection-latency bound."""
        return self.fabric.max_control_rtt(
            {self.members[rank] for rank in self.members}
        )

    def pump(self, now: int | None = None) -> None:
        """Emit every due beat and drain every arrived one."""
        now = self.fabric.clock if now is None else now
        for rank in sorted(self.live):
            while self.next_beat[rank] <= now:
                self.next_beat[rank] += self.config.period
                for peer in self.members:
                    if peer == rank:
                        continue
                    self.fabric.inject_control(
                        self.members[rank],
                        self.members[peer],
                        self.ports[peer],
                        rank,
                    )
                    self.beats_sent += 1
        for obs in self.members:
            heard = self.last_heard[obs]
            while (got := self.fabric.deliver_control(self.ports[obs])) is not None:
                src, arrival = got
                self.beats_heard += 1
                if arrival > heard.get(src, -1):
                    heard[src] = arrival

    def new_suspicions(self, now: int | None = None) -> list[tuple[int, int, int]]:
        """Fresh ``(observer, peer, tick)`` timeouts since last call.

        A peer is suspected by an observer once ``now - last_heard >=
        timeout``; each (observer, peer) pair fires at most once.
        """
        now = self.fabric.clock if now is None else now
        fresh: list[tuple[int, int, int]] = []
        for obs in sorted(self.live):
            taken = self.suspected[obs]
            for peer, heard in sorted(self.last_heard[obs].items()):
                if peer in taken:
                    continue
                if now - heard >= self.config.timeout:
                    taken.add(peer)
                    fresh.append((obs, peer, now))
        return fresh

    def suspects_all(self, peers) -> bool:
        """Do all live observers suspect every rank in ``peers``?"""
        targets = set(peers)
        return all(
            targets <= self.suspected[obs]
            for obs in self.live
            if obs not in targets
        )

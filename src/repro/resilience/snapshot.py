"""Coordinated rank checkpoints: the block journal, widened per rank.

A resilient cluster run executes one workload round per epoch and
checkpoints every rank at each quiescent round boundary — the
multi-rank analogue of the engine's block boundary (PR 4): no message
in flight, no pending engine work, so each rank's snapshot is just its
:class:`repro.recovery.journal.BlockCheckpoint` (posted receives,
unexpected store, decision clock) plus the runtime state the engine
does not own — the per-stream send/receive sequence counters that give
every message its identity. Restart rebuilds a rank's engine through
:func:`repro.recovery.journal.restore_engine`, so decision stamps stay
monotone and replayed pairings can be audited against the serial
oracle exactly as core-fault recovery is.

Stream counters are keyed by *world* rank so they survive communicator
repair: after a shrink, a surviving pair resumes its streams at the
checkpointed counts under new dense local ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import EngineConfig
from repro.core.engine import OptimisticMatcher
from repro.recovery.journal import BlockCheckpoint, checkpoint_engine, restore_engine

__all__ = ["RankSnapshot", "WorldCheckpoint", "snapshot_rank", "restore_rank"]


@dataclass(slots=True)
class RankSnapshot:
    """One rank's recoverable state at a quiescent round boundary."""

    world_rank: int
    round_index: int
    engine: BlockCheckpoint = field(default_factory=BlockCheckpoint)
    #: (peer world rank, tag) -> messages sent on that stream so far.
    send_streams: dict[tuple[int, int], int] = field(default_factory=dict)
    #: (peer world rank, tag) -> receives posted on that stream so far.
    recv_streams: dict[tuple[int, int], int] = field(default_factory=dict)


@dataclass(slots=True)
class WorldCheckpoint:
    """The coordinated cut: every member's snapshot at one boundary."""

    round_index: int
    snapshots: dict[int, RankSnapshot] = field(default_factory=dict)

    @classmethod
    def initial(cls, members) -> "WorldCheckpoint":
        """The boundary before round 0: empty engines, zero streams."""
        return cls(
            round_index=0,
            snapshots={
                rank: RankSnapshot(world_rank=rank, round_index=0)
                for rank in members
            },
        )


def snapshot_rank(
    world_rank: int,
    round_index: int,
    matcher: OptimisticMatcher,
    send_streams: dict[tuple[int, int], int],
    recv_streams: dict[tuple[int, int], int],
) -> RankSnapshot:
    """Checkpoint one settled rank (streams already world-keyed)."""
    return RankSnapshot(
        world_rank=world_rank,
        round_index=round_index,
        engine=checkpoint_engine(matcher),
        send_streams=dict(send_streams),
        recv_streams=dict(recv_streams),
    )


def restore_rank(
    snapshot: RankSnapshot, config: EngineConfig | None = None
) -> OptimisticMatcher:
    """Build the rank's matcher back from its snapshot: a fresh engine
    holding exactly the checkpointed state, decision clock monotone."""
    return restore_engine(
        snapshot.engine, config if config is not None else EngineConfig()
    )

"""Typed failures surfaced by the rank fault-tolerance layer."""

from __future__ import annotations

__all__ = ["RankFailedError"]


class RankFailedError(RuntimeError):
    """A peer rank is dead: the operation can never complete.

    Raised (or recorded) in place of letting a receive against a
    failed peer hang forever — ULFM's ``MPI_ERR_PROC_FAILED``. Carries
    enough to act on: who died, who observed it, and which request was
    failed.
    """

    def __init__(self, rank: int, *, observer: int = -1, handle: int = -1) -> None:
        self.rank = rank
        self.observer = observer
        self.handle = handle
        where = f" at rank {observer}" if observer >= 0 else ""
        which = f" (recv handle {handle})" if handle >= 0 else ""
        super().__init__(
            f"peer rank {rank} failed{where}: outstanding receive can "
            f"never complete{which}"
        )

"""Seeded rank fail-stop faults: kill rank r at global tick t.

A :class:`RankFaultPlan` is a pure-literal description (it crosses the
fleet worker boundary inside job params) of whole-rank deaths: the
process vanishes mid-run — no farewell message, no flush — exactly the
fail-stop model ULFM recovers from. Ticks are *global*: they index the
resilient run's cumulative fabric clock, so a kill can land in any
round (including mid-collective, since the cluster workloads are
collectives built on p2p).

The injector applies the same strict-attribution discipline as
:class:`repro.recovery.faults.CoreFaultInjector`: the driver kills
ranks only on the injector's say-so, and an error escaping the
simulation is *owned* by the injector only when a planned kill has
actually fired — otherwise it re-raises as a genuine bug, never
silently absorbed as "expected chaos".
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping

from repro.util.rng import derive_seed, make_rng

__all__ = ["RankFaultPlan", "RankFaultInjector"]


@dataclass(frozen=True, slots=True)
class RankFaultPlan:
    """Seeded fail-stop description (JSON-literal fields only)."""

    seed: int = 0
    #: Seeded kills: distinct victims drawn uniformly, ticks in
    #: ``[1, horizon]`` (0 disables seeded kills).
    kills: int = 0
    horizon: int = 1024
    #: Explicit kills: ``victims[i]`` dies at global ``kill_ticks[i]``.
    victims: tuple[int, ...] = ()
    kill_ticks: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kills < 0:
            raise ValueError(f"kills must be non-negative, got {self.kills}")
        if self.horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {self.horizon}")
        # Params arrive as JSON lists from the fleet boundary.
        object.__setattr__(self, "victims", tuple(self.victims))
        object.__setattr__(self, "kill_ticks", tuple(self.kill_ticks))
        if len(self.victims) != len(self.kill_ticks):
            raise ValueError("victims and kill_ticks must pair up")
        if len(set(self.victims)) != len(self.victims):
            raise ValueError(f"duplicate explicit victims: {self.victims}")
        if any(t < 1 for t in self.kill_ticks):
            raise ValueError("kill ticks must be >= 1")

    @property
    def is_clean(self) -> bool:
        return self.kills == 0 and not self.victims

    def with_options(self, **overrides: Any) -> "RankFaultPlan":
        return RankFaultPlan(**{**asdict(self), **overrides})

    def to_params(self) -> dict:
        payload = asdict(self)
        payload["victims"] = list(self.victims)
        payload["kill_ticks"] = list(self.kill_ticks)
        return payload

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "RankFaultPlan":
        return cls(**dict(params))

    def compile(self, nranks: int) -> tuple[tuple[int, int], ...]:
        """Derive the concrete ``(tick, rank)`` schedule for a world of
        ``nranks``, sorted by tick. Same seed, same deaths."""
        if nranks < 1:
            raise ValueError(f"need >= 1 rank, got {nranks}")
        schedule: list[tuple[int, int]] = []
        for rank, tick in zip(self.victims, self.kill_ticks):
            if not 0 <= rank < nranks:
                raise ValueError(f"victim {rank} outside world of {nranks}")
            schedule.append((tick, rank))
        if self.kills:
            taken = set(self.victims)
            pool = [r for r in range(nranks) if r not in taken]
            count = min(self.kills, len(pool))
            rng = make_rng(derive_seed(self.seed, "resilience.ranks"))
            picks = rng.choice(len(pool), size=count, replace=False)
            for index in sorted(int(i) for i in picks):
                tick = int(rng.integers(1, self.horizon + 1))
                schedule.append((tick, pool[index]))
        if len(schedule) >= nranks:
            raise ValueError(
                f"plan kills all {nranks} ranks; at least one must survive"
            )
        return tuple(sorted(schedule))


class RankFaultInjector:
    """Replays a compiled kill schedule against the global clock.

    The driver asks :meth:`due` every loop round and kills exactly the
    ranks returned; :attr:`fired` is the ground truth every detection
    (heartbeat suspicion, transport error, stall) is audited against.
    """

    def __init__(self, schedule) -> None:
        self._pending: list[tuple[int, int]] = sorted(schedule)
        #: world rank -> global tick it was killed at.
        self.fired: dict[int, int] = {}

    @property
    def exhausted(self) -> bool:
        return not self._pending

    @property
    def killed(self) -> frozenset[int]:
        return frozenset(self.fired)

    def due(self, global_tick: int) -> list[int]:
        """Ranks whose kill tick has been reached (each fires once)."""
        victims: list[int] = []
        while self._pending and self._pending[0][0] <= global_tick:
            tick, rank = self._pending.pop(0)
            if rank in self.fired:
                continue
            self.fired[rank] = tick
            victims.append(rank)
        return victims

    def owns(self, error: BaseException) -> bool:
        """Strict attribution: an escaping error belongs to the plan
        only if a planned kill has actually fired. A failure on a
        fault-free run is a genuine bug and must re-raise."""
        return bool(self.fired)

"""The resilient cluster driver: BSP epochs, failure detection, repair.

:class:`ResilientClusterSim` runs a cluster workload (halo / alltoall)
*one round per epoch*: each epoch is a fresh :class:`repro.net.cluster.
ClusterSim` over the current membership, every rank's engine restored
from the last coordinated checkpoint (:mod:`repro.resilience.
snapshot`) and its stream counters carried across the boundary, so
message identities — and therefore the C2 / serial-oracle audit — are
continuous across any number of repairs.

Inside an epoch the :class:`_EpochSim` subclass adds the failure
machinery on top of the unchanged data path:

* the :class:`repro.resilience.faults.RankFaultInjector` kills ranks
  against the *global* clock (a dead rank is stepped and polled no
  further — fail-stop, no farewell);
* a :class:`repro.resilience.heartbeat.HeartbeatNetwork` pumps on
  every rank poll; a true suspicion revokes the dead peer's posted
  receives from the observer's engine (``cancel_receive``), fails the
  observer's outstanding recvs against it, and stamps a
  ``peer_failed`` event into the flight recorder;
* once every live rank suspects every dead one, the epoch aborts.

An aborted epoch is rolled back wholesale (its fabric, wires, and
half-round deliveries are discarded — the round boundary checkpoint is
the recovery line), the survivors run the deterministic agreement
round (:func:`repro.resilience.repair.agree`, charged to the clock),
and the run repairs by **shrink** (dense survivor communicator) or
**respawn** (victims restored from their checkpoints), then re-executes
the round. Two backstops catch detector failures with strict
attribution: a sticky ``TransportError`` or an epoch stall with dead
ranks is owned by the injector (and counted as a backstop abort, the
signal the mutant lanes assert on); either without a fired kill
re-raises as a genuine bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.config import EngineConfig
from repro.net.cluster import ClusterSim, ClusterStall
from repro.net.placement import Placement, placement_by_name
from repro.net.routing import RouteTable
from repro.net.topology import Topology, topology_by_name
from repro.obs.timeline import NULL_SAMPLER
from repro.rdma.reliability import TransportError
from repro.resilience.errors import RankFailedError
from repro.resilience.faults import RankFaultInjector, RankFaultPlan
from repro.resilience.heartbeat import HeartbeatConfig, HeartbeatNetwork
from repro.resilience.repair import agree
from repro.resilience.snapshot import (
    WorldCheckpoint,
    restore_rank,
    snapshot_rank,
)
from repro.traces.model import Trace
from repro.traces.synthetic.base import TraceBuilder
from repro.traces.synthetic.patterns import (
    alltoall_p2p_round,
    grid_dims,
    halo_exchange_round,
)

__all__ = [
    "RESILIENCE_APPS",
    "ResilienceReport",
    "ResilientClusterSim",
    "resilience_round",
    "run_resilient",
]

SCHEMA = "repro.resilience.report/v1"

#: Planted driver bugs the rank-chaos mutant lanes must catch.
MUTANTS = ("", "deaf-detector", "no-abort", "stale-streams")


def _halo_round(builder: TraceBuilder, size: int) -> None:
    halo_exchange_round(builder, grid_dims(builder.nprocs, 2), fields=1, size=size)


def _alltoall_round(builder: TraceBuilder, size: int) -> None:
    alltoall_p2p_round(builder, tag=0, size=size)


#: Resilient apps use *constant* tags so per-stream sequence counters
#: accumulate across rounds — a restart that loses its counters (the
#: ``stale-streams`` mutant) regresses message identities and is
#: caught by the C2 / oracle check, not by luck.
RESILIENCE_APPS = {"halo": _halo_round, "alltoall": _alltoall_round}


def resilience_round(app: str, ranks: int, *, size: int = 512) -> Trace:
    """One round of the named workload over ``ranks`` members."""
    generator = RESILIENCE_APPS.get(app)
    if generator is None:
        raise KeyError(
            f"unknown resilience app {app!r}; known: {sorted(RESILIENCE_APPS)}"
        )
    builder = TraceBuilder(f"resilience-{app}", ranks)
    generator(builder, size)
    return builder.build()


# -- the report -----------------------------------------------------------


@dataclass(slots=True)
class ResilienceReport:
    """One resilient run's parameters and observables."""

    params: dict = field(default_factory=dict)
    results: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Every round committed, pairings oracle-clean, wire time
        conserved exactly over the committed epochs."""
        res = self.results
        cons = res.get("conservation", {})
        return (
            res.get("rounds_completed") == self.params.get("rounds")
            and not res.get("violations")
            and cons.get("exact", 0) == cons.get("checked", 0)
        )

    def to_dict(self) -> dict:
        return {"schema": SCHEMA, "params": self.params, "results": self.results}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ResilienceReport":
        schema = payload.get("schema")
        if schema != SCHEMA:
            raise ValueError(f"expected {SCHEMA}, got {schema!r}")
        return cls(params=dict(payload["params"]), results=dict(payload["results"]))

    def to_chaos_report(self, seed: int):
        """Project onto the fleet-codable :class:`repro.chaos.harness.
        ChaosReport` (schema v5's rank-failure counters)."""
        from repro.chaos.harness import ChaosReport

        res = self.results
        violations = res.get("violations", [])
        mismatches = [
            f"{v['expected']}: got {v['actual']}" for v in violations
        ]
        return ChaosReport(
            seed=seed,
            sent=res.get("sends", 0),
            delivered=res.get("deliveries", 0),
            mismatches=mismatches,
            first_violation=mismatches[0] if mismatches else "",
            rank_kills=len(res.get("kills", [])),
            rank_failures_detected=res.get("failures_detected", 0),
            rank_false_suspicions=len(res.get("false_suspicions", [])),
            rank_restarts=res.get("restarts", 0),
            comm_shrinks=res.get("shrinks", 0),
            rank_failed_recvs=res.get("failed_recvs", 0),
            rank_detection_latency_max=res.get("detection_latency_max", 0),
            rank_recovery_ticks=res.get("recovery_ticks", 0),
            rank_backstop_aborts=res.get("backstop_aborts", 0),
        )


# -- one epoch ------------------------------------------------------------


@dataclass(slots=True)
class _EpochOutcome:
    completed: bool
    #: "" | "suspicion" | "stall" | "transport" | "drain"
    reason: str = ""
    detail: str = ""


class _EpochSim(ClusterSim):
    """One round of one membership, with the failure machinery on."""

    def __init__(
        self,
        trace: Trace,
        *,
        group: list[int],
        offset: int,
        injector: RankFaultInjector,
        heartbeat: HeartbeatConfig | None,
        mutant: str = "",
        **kwargs,
    ) -> None:
        super().__init__(trace, **kwargs)
        self.group = list(group)
        self.index = {world: local for local, world in enumerate(group)}
        self.offset = offset
        self.injector = injector
        self.mutant = mutant
        self.dead_local: set[int] = set()
        #: world rank -> global tick the kill was applied at.
        self.kill_events: list[dict] = []
        self.detections: list[dict] = []
        self.false_suspicions: list[dict] = []
        self.failed_recvs = 0
        self.revoked_receives = 0
        self.revoked_unexpected = 0
        #: The typed errors dead-peer notification failed recvs with.
        self.recv_errors: list[RankFailedError] = []
        self.timeline: list[dict] = []
        self.hb: HeartbeatNetwork | None = None
        if heartbeat is not None and len(group) >= 2:
            self.hb = HeartbeatNetwork(
                self.fabric,
                {local: self.placement.node_of(local) for local in range(len(group))},
                heartbeat,
            )

    # -- fail-stop --------------------------------------------------------

    def _rank_active(self, node) -> bool:
        return node.rank not in self.dead_local

    def _sample_tick(self) -> float:
        # Keep the shared timeline monotone across epoch rebuilds.
        return float(self.offset + self.fabric.clock)

    def _kill(self, world_rank: int) -> None:
        local = self.index[world_rank]
        tick = self.offset + self.fabric.clock
        self.dead_local.add(local)
        if self.hb is not None:
            self.hb.kill(local)
        self.kill_events.append({"rank": world_rank, "tick": tick})
        self.timeline.append(
            {"tick": tick, "event": "rank_killed", "rank": world_rank}
        )
        self.recorder.event("rank_killed", rank=world_rank)

    # -- detection --------------------------------------------------------

    def _after_rank_progress(self, node) -> None:
        if self.hb is not None:
            self.hb.pump()

    def _handle_suspicions(self) -> None:
        if self.hb is None or self.mutant == "deaf-detector":
            return
        for obs, peer, at in self.hb.new_suspicions():
            self._on_suspicion(obs, peer, at)

    def _on_suspicion(self, obs: int, peer: int, at: int) -> None:
        tick = self.offset + at
        obs_world, peer_world = self.group[obs], self.group[peer]
        if peer not in self.dead_local:
            self.false_suspicions.append(
                {"observer": obs_world, "peer": peer_world, "tick": tick}
            )
            self.timeline.append(
                {
                    "tick": tick,
                    "event": "false_suspicion",
                    "observer": obs_world,
                    "peer": peer_world,
                }
            )
            return
        killed_at = next(
            e["tick"] for e in self.kill_events if e["rank"] == peer_world
        )
        self.detections.append(
            {
                "observer": obs_world,
                "peer": peer_world,
                "tick": tick,
                "latency": tick - killed_at,
                "via": "heartbeat",
            }
        )
        self.timeline.append(
            {
                "tick": tick,
                "event": "peer_failed",
                "observer": obs_world,
                "peer": peer_world,
                "latency": tick - killed_at,
            }
        )
        self.recorder.event(
            "peer_failed",
            observer=obs_world,
            peer=peer_world,
            latency=tick - killed_at,
        )
        self._revoke_peer(obs, peer)

    def _revoke_peer(self, obs: int, peer: int) -> None:
        """Dead-peer notification at ``obs``: fail outstanding recvs
        sourced from ``peer`` with a typed :class:`RankFailedError`
        (instead of letting them hang) and revoke the peer's entries
        from the observer's engine / UMQ."""
        node = self.ranks[obs]
        cancel = getattr(node.matcher, "cancel_receive", None)
        for handle, meta in node.recvs.items():
            if meta.done or meta.wildcard or meta.source != peer:
                continue
            if handle not in node.outstanding:
                continue
            node.outstanding.discard(handle)
            self.failed_recvs += 1
            self.recv_errors.append(
                RankFailedError(
                    self.group[peer], observer=self.group[obs], handle=handle
                )
            )
            if cancel is not None and cancel(handle):
                self.revoked_receives += 1
        revoke = getattr(node.matcher, "revoke_source", None)
        if revoke is not None:
            self.revoked_unexpected += revoke(peer)

    # -- the epoch loop ---------------------------------------------------

    def _ready_to_abort(self) -> bool:
        if not self.dead_local or self.mutant == "no-abort":
            return False
        if self.hb is None or self.mutant == "deaf-detector":
            return False
        return self.hb.suspects_all(self.dead_local)

    def dead_world(self) -> list[int]:
        return sorted(self.group[local] for local in self.dead_local)

    def suspicion_votes(self) -> dict[int, set[int]]:
        """Per-survivor suspicion sets in world ranks (the agreement
        input). Empty when detection came from a backstop."""
        if self.hb is None:
            return {}
        votes: dict[int, set[int]] = {}
        for obs in sorted(self.hb.live):
            names = {
                self.group[peer]
                for peer in self.hb.suspected[obs]
                if peer in self.dead_local
            }
            if names:
                votes[self.group[obs]] = names
        return votes

    def _awaiting_detection(self) -> bool:
        """While True, backstop aborts are deferred: the heartbeat
        detector is live and its provable detection bound
        (``timeout + max_route_rtt`` past the last kill, plus pump
        slack) has not yet elapsed — keep the clock moving and let
        suspicion fire instead of short-circuiting it."""
        if self.hb is None or self.mutant == "deaf-detector":
            return False
        if not self.kill_events:
            return False
        last_kill = max(e["tick"] for e in self.kill_events) - self.offset
        deadline = (
            last_kill
            + self.hb.config.timeout
            + self.hb.max_route_rtt()
            + 4 * self.hb.config.period
        )
        return self.fabric.clock < deadline

    def run_epoch(self, *, max_stall_rounds: int = 2_000) -> _EpochOutcome:
        idle = 0
        while True:
            now = self.fabric.clock
            for world_rank in self.injector.due(self.offset + now):
                if world_rank in self.index:
                    local = self.index[world_rank]
                    if local not in self.dead_local:
                        self._kill(world_rank)
            if self.hb is not None:
                self.hb.pump()
                self._handle_suspicions()
            if self._ready_to_abort():
                return _EpochOutcome(
                    False, "suspicion", f"all live ranks suspect {self.dead_world()}"
                )
            trace_done = self._trace_done()
            if trace_done and not self.dead_local:
                self._settle(max_stall_rounds)
                return _EpochOutcome(True)
            stalled = trace_done
            if not trace_done:
                try:
                    moved = self._progress_round()
                except TransportError as exc:
                    if not self.injector.owns(exc):
                        raise
                    self.timeline.append(
                        {
                            "tick": self.offset + self.fabric.clock,
                            "event": "transport_detection",
                            "peers": self.dead_world(),
                            "error": str(exc),
                        }
                    )
                    return _EpochOutcome(False, "transport", str(exc))
                if moved:
                    idle = 0
                    continue
                idle += 1
                stalled = (
                    self._in_flight() == 0 and self._pending_reads() == 0
                ) or idle > max_stall_rounds
            if not stalled:
                continue
            if not self.dead_local:
                # Genuine bug: a fault-free epoch must never stall.
                raise ClusterStall(
                    "no progress, nothing in flight; blocked ranks: "
                    f"{self._stuck_ops()}"
                )
            if self._awaiting_detection():
                # Blocked ranks and a drained network cannot advance
                # the shared clock on their own; tick it so heartbeat
                # silence accumulates toward the suspicion timeout.
                self.fabric.tick()
                continue
            if trace_done:
                # Live ranks drained the round with failed recvs
                # outstanding — the epoch has holes and cannot commit
                # (the no-abort mutant lands here).
                return _EpochOutcome(
                    False, "drain", f"trace drained around dead {self.dead_world()}"
                )
            detail = (
                f"epoch stalled with dead ranks {self.dead_world()}; "
                f"blocked: {self._stuck_ops()}"
            )
            self.timeline.append(
                {
                    "tick": self.offset + self.fabric.clock,
                    "event": "stall_detection",
                    "peers": self.dead_world(),
                }
            )
            return _EpochOutcome(False, "stall", detail)


# -- the driver -----------------------------------------------------------


class ResilientClusterSim:
    """Run a workload to completion through k rank failures."""

    def __init__(
        self,
        app: str = "halo",
        ranks: int = 8,
        *,
        rounds: int = 3,
        size: int = 512,
        topology: str | Topology = "torus",
        placement: str | Placement = "block",
        plan: RankFaultPlan | None = None,
        heartbeat: HeartbeatConfig | None = None,
        recovery: str = "shrink",
        mutant: str = "",
        record: bool = True,
        max_attempts: int | None = None,
        engine_config: EngineConfig | None = None,
    ) -> None:
        if recovery not in ("shrink", "respawn"):
            raise ValueError(f"unknown recovery mode {recovery!r}")
        if mutant not in MUTANTS:
            raise ValueError(f"unknown mutant {mutant!r}; known: {MUTANTS}")
        if app not in RESILIENCE_APPS:
            raise KeyError(
                f"unknown resilience app {app!r}; known: {sorted(RESILIENCE_APPS)}"
            )
        self.app = app
        self.world = ranks
        self.rounds = rounds
        self.size = size
        if isinstance(topology, str):
            topology = topology_by_name(topology, ranks)
        self.topology = topology
        if isinstance(placement, str):
            placement = placement_by_name(placement, ranks, topology.hosts)
        self.placement = placement
        self.plan = plan if plan is not None else RankFaultPlan()
        self.heartbeat = heartbeat
        self.recovery = recovery
        self.mutant = mutant
        self.record = record
        self.engine_config = engine_config
        #: Each abort costs one attempt on top of the committed rounds.
        self.max_attempts = (
            max_attempts if max_attempts is not None else rounds + 8
        )
        self._routes = RouteTable(topology)
        #: Committed epochs' flight-recorder exports, in commit order.
        self.ledgers: list = []
        self.sampler = NULL_SAMPLER

    def attach_sampler(self, sampler) -> None:
        """Sample every epoch onto one continuous timeline.

        Each epoch re-installs its probes over the same series names
        (probe replacement is the sampler's contract), and epochs
        stamp samples at ``offset + fabric.clock`` so the series stay
        monotone across aborts and rebuilds — ``ranks.live`` visibly
        steps down at a kill and back up on respawn."""
        self.sampler = sampler

    # -- control-plane pricing (agreement) -------------------------------

    def _control_delay(self, host_a: str, host_b: str) -> int:
        return sum(
            self.topology.links[name].latency + 1
            for name in self._routes.path(host_a, host_b)
        )

    def _rtt(self, rank_a: int, rank_b: int) -> int:
        a = self.placement.node_of(rank_a)
        b = self.placement.node_of(rank_b)
        return self._control_delay(a, b) + self._control_delay(b, a)

    # -- epoch construction ----------------------------------------------

    def _build_epoch(
        self,
        group: list[int],
        checkpoint: WorldCheckpoint,
        offset: int,
        injector: RankFaultInjector,
        stale: set[int],
    ) -> _EpochSim:
        n = len(group)
        trace = resilience_round(self.app, n, size=self.size)
        placement = Placement.custom(
            {local: self.placement.node_of(group[local]) for local in range(n)},
            scheme=self.placement.scheme,
        )
        snapshots = checkpoint.snapshots
        config = self.engine_config

        def factory(local: int):
            return restore_rank(snapshots[group[local]], config)

        epoch = _EpochSim(
            trace,
            group=group,
            offset=offset,
            injector=injector,
            heartbeat=self.heartbeat,
            mutant=self.mutant,
            topology=self.topology,
            placement=placement,
            matcher_factory=factory,
            record=self.record,
        )
        if self.sampler.enabled:
            epoch.attach_sampler(self.sampler)
        index = {world: local for local, world in enumerate(group)}
        for local, world in enumerate(group):
            if world in stale:
                # stale-streams mutant: the respawned rank forgot its
                # stream counters — its message identities regress and
                # the C2 / oracle audit must catch it.
                continue
            snap = snapshots[world]
            node = epoch.ranks[local]
            for (peer, tag), count in snap.send_streams.items():
                if peer in index:
                    node.send_streams[(index[peer], tag)] = count
            for (peer, tag), count in snap.recv_streams.items():
                if peer in index:
                    node.recv_streams[(index[peer], tag)] = count
        return epoch

    def _commit(
        self, epoch: _EpochSim, group: list[int], round_index: int
    ) -> WorldCheckpoint:
        """Coordinated checkpoint at the quiescent round boundary."""
        snapshots = {}
        for local, world in enumerate(group):
            node = epoch.ranks[local]
            if getattr(node.matcher, "pending_messages", 0):
                node.matcher.process_all()
            snapshots[world] = snapshot_rank(
                world,
                round_index,
                node.matcher,
                {
                    (group[peer], tag): count
                    for (peer, tag), count in node.send_streams.items()
                },
                {
                    (group[peer], tag): count
                    for (peer, tag), count in node.recv_streams.items()
                },
            )
        return WorldCheckpoint(round_index, snapshots)

    # -- the run ----------------------------------------------------------

    def run(self) -> ResilienceReport:
        group = list(range(self.world))
        checkpoint = WorldCheckpoint.initial(group)
        injector = RankFaultInjector(
            self.plan.compile(self.world) if not self.plan.is_clean else ()
        )
        offset = 0
        committed_ticks = 0
        round_index = 0
        attempts = 0
        stale: set[int] = set()
        timeline: list[dict] = []
        kills: list[dict] = []
        detections: list[dict] = []
        false_suspicions: list[dict] = []
        violations: list[dict] = []
        conservation = {"checked": 0, "exact": 0, "recovered": 0}
        sends = deliveries = discarded_sends = 0
        failed_recvs = revoked = revoked_umq = 0
        recv_errors: list[str] = []
        shrinks = restarts = suspicion_aborts = backstop_aborts = 0
        agreement_ticks = 0
        #: ledger annotation for the first epoch after a repair.
        repair_note: tuple[str, dict] | None = None
        while round_index < self.rounds:
            attempts += 1
            if attempts > self.max_attempts:
                raise RuntimeError(
                    f"resilient run did not converge in {self.max_attempts} "
                    f"attempts ({round_index}/{self.rounds} rounds committed)"
                )
            epoch = self._build_epoch(group, checkpoint, offset, injector, stale)
            stale = set()
            if repair_note is not None:
                epoch.recorder.event(repair_note[0], **repair_note[1])
                repair_note = None
            outcome = epoch.run_epoch()
            offset += epoch.fabric.clock
            timeline.extend(epoch.timeline)
            kills.extend(epoch.kill_events)
            detections.extend(epoch.detections)
            false_suspicions.extend(epoch.false_suspicions)
            failed_recvs += epoch.failed_recvs
            revoked += epoch.revoked_receives
            revoked_umq += epoch.revoked_unexpected
            recv_errors.extend(str(error) for error in epoch.recv_errors)
            violations.extend(epoch.violations)
            if outcome.completed:
                round_index += 1
                committed_ticks += epoch.fabric.clock
                sends += epoch.sends
                deliveries += epoch.deliveries
                for key, value in epoch.conservation().items():
                    conservation[key] += value
                checkpoint = self._commit(epoch, group, round_index)
                if self.record:
                    self.ledgers.append(epoch.recorder.export())
                timeline.append(
                    {
                        "tick": offset,
                        "event": "round_committed",
                        "round": round_index,
                        "group": list(group),
                    }
                )
                continue
            # -- rollback + repair ------------------------------------
            if self.record:
                # The aborted attempt's flight record is the failure's
                # forensics: rank_killed / peer_failed events and every
                # message the death stranded.
                self.ledgers.append(epoch.recorder.export("aborted"))
            discarded_sends += epoch.sends
            if outcome.reason == "suspicion":
                suspicion_aborts += 1
            else:
                backstop_aborts += 1
            failed_now = epoch.dead_world()
            votes = epoch.suspicion_votes()
            if not votes:
                # Backstop detection: the stall / transport diagnostic
                # names the dead peers; survivors all vote that set.
                votes = {
                    world: set(failed_now)
                    for world in group
                    if world not in failed_now
                }
            decision = agree(group, votes, mode=(
                "shrink" if self.recovery == "shrink" else "respawn"
            ), rtt=self._rtt)
            offset += decision.agreement_ticks
            agreement_ticks += decision.agreement_ticks
            timeline.append(
                {
                    "tick": offset,
                    "event": "repair_agreed",
                    "mode": decision.mode,
                    "failed": list(decision.failed),
                    "survivors": list(decision.survivors),
                    "agreement_ticks": decision.agreement_ticks,
                }
            )
            if self.recovery == "shrink":
                group = list(decision.survivors)
                shrinks += 1
                checkpoint = WorldCheckpoint(
                    checkpoint.round_index,
                    {world: checkpoint.snapshots[world] for world in group},
                )
                timeline.append(
                    {"tick": offset, "event": "shrunk", "group": list(group)}
                )
                repair_note = ("shrunk", {"group": list(group)})
            else:
                restarts += len(decision.failed)
                if self.mutant == "stale-streams":
                    stale = set(decision.failed)
                timeline.append(
                    {
                        "tick": offset,
                        "event": "restarted",
                        "ranks": list(decision.failed),
                    }
                )
                repair_note = ("restarted", {"ranks": list(decision.failed)})
        detected_pairs = {
            (d["peer"],) for d in detections
        }
        params = {
            "app": self.app,
            "ranks": self.world,
            "rounds": self.rounds,
            "size": self.size,
            "topology": self.topology.name,
            "placement": self.placement.scheme,
            "recovery": self.recovery,
            "mutant": self.mutant,
            "plan": self.plan.to_params(),
            "heartbeat": (
                self.heartbeat.to_params() if self.heartbeat is not None else None
            ),
        }
        results = {
            "rounds_completed": round_index,
            "attempts": attempts,
            "final_group": list(group),
            "kills": kills,
            "detections": detections,
            "failures_detected": len(detected_pairs),
            "false_suspicions": false_suspicions,
            "suspicion_aborts": suspicion_aborts,
            "backstop_aborts": backstop_aborts,
            "shrinks": shrinks,
            "restarts": restarts,
            "failed_recvs": failed_recvs,
            "revoked_receives": revoked,
            "revoked_unexpected": revoked_umq,
            "recv_errors": recv_errors,
            "agreement_ticks": agreement_ticks,
            "recovery_ticks": offset - committed_ticks,
            "detection_latency_max": max(
                (d["latency"] for d in detections), default=0
            ),
            "sends": sends,
            "deliveries": deliveries,
            "discarded_sends": discarded_sends,
            "violations": violations,
            "conservation": conservation,
            "elapsed_ticks": offset,
            "timeline": timeline,
        }
        return ResilienceReport(params=params, results=results)


def run_resilient(
    app: str = "halo",
    ranks: int = 8,
    *,
    rounds: int = 3,
    size: int = 512,
    topology: str = "torus",
    placement: str = "block",
    plan: RankFaultPlan | None = None,
    heartbeat: HeartbeatConfig | None = None,
    recovery: str = "shrink",
    mutant: str = "",
    record: bool = True,
) -> ResilienceReport:
    """Build and run a resilient cluster sim: the one-call frontdoor."""
    return ResilientClusterSim(
        app,
        ranks,
        rounds=rounds,
        size=size,
        topology=topology,
        placement=placement,
        plan=plan,
        heartbeat=heartbeat,
        recovery=recovery,
        mutant=mutant,
        record=record,
    ).run()

"""Communicator repair: deterministic agreement, shrink, and respawn.

After an epoch aborts on detected failures, the survivors must agree
on *who* is gone and what the next membership is before any of them
may rebuild state — ULFM's ``MPIX_Comm_agree`` + ``shrink`` pair. The
agreement here is deterministic and charged to the simulated clock:
two phases (propose: every survivor broadcasts its suspicion set;
commit: every survivor acknowledges the union) of all-to-all control
messages, so the round costs twice the slowest survivor-pair control
round trip. The decision is a pure function of the votes, so every
survivor computes the same :class:`RepairDecision` — no leader, no
tie to break.

* **shrink** — the new communicator is the dense re-indexing of the
  survivors; the failed ranks' streams and matcher entries simply do
  not exist in the next epoch.
* **respawn** — membership is unchanged; the failed ranks are revived
  from their last coordinated checkpoint and replay from the round
  boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

__all__ = ["RepairDecision", "agree"]


@dataclass(frozen=True, slots=True)
class RepairDecision:
    """The agreed outcome of one repair round."""

    #: World ranks agreed failed (the union of survivor votes).
    failed: tuple[int, ...]
    #: Surviving world ranks in dense new-communicator order.
    survivors: tuple[int, ...]
    #: ``"shrink"`` or ``"respawn"``.
    mode: str
    #: Simulated cost of the two-phase agreement, in fabric ticks.
    agreement_ticks: int
    #: Survivors that contributed a non-empty suspicion set.
    voters: int


def agree(
    group: Iterable[int],
    votes: Mapping[int, Iterable[int]],
    *,
    mode: str,
    rtt: Callable[[int, int], int],
) -> RepairDecision:
    """Run the deterministic agreement round over ``group``.

    ``votes`` maps each observer (world rank) to the peers it
    suspects; ``rtt(a, b)`` is the control round-trip between two
    world ranks (used only to *price* the round). Raises if the votes
    name nobody or everybody.
    """
    if mode not in ("shrink", "respawn"):
        raise ValueError(f"unknown repair mode {mode!r}")
    members = list(group)
    failed = sorted(
        {peer for suspects in votes.values() for peer in suspects if peer in members}
    )
    if not failed:
        raise ValueError("agreement with no suspects: nothing to repair")
    survivors = tuple(rank for rank in members if rank not in failed)
    if not survivors:
        raise ValueError("no survivors left to agree")
    worst_rtt = 0
    for a in survivors:
        for b in survivors:
            if a != b:
                worst_rtt = max(worst_rtt, rtt(a, b))
    voters = sum(
        1 for obs, suspects in votes.items() if obs in survivors and set(suspects)
    )
    return RepairDecision(
        failed=tuple(failed),
        survivors=survivors,
        mode=mode,
        agreement_ticks=2 * worst_rtt,
        voters=voters,
    )

"""repro — reproduction of "Offloaded MPI message matching: an
optimistic approach" (García et al., SC 2024).

Subpackages
-----------
``repro.core``
    Optimistic Tag Matching: the paper's bin-based, optimistically
    parallel matching engine (contribution C1).
``repro.matching``
    Baseline matchers (linked-list, bin-based, rank-based), the
    reference oracle, and the software-fallback controller.
``repro.dpa``
    Discrete-event model of an on-NIC Data Path Accelerator with a
    calibrated cycle-cost model.
``repro.rdma``
    Simulated RDMA substrate: queue pairs, completion queues, bounce
    buffers, eager and rendezvous protocols.
``repro.mpisim``
    A miniature MPI point-to-point runtime running on the matchers.
``repro.traces``
    DUMPI trace parsing, binary caching, and synthetic generators for
    the sixteen Table II mini-apps.
``repro.analyzer``
    The MPI trace analyzer (contribution C2): queue-depth, collision,
    call-mix, and tag-usage statistics over traces.
``repro.bench``
    The Figure 8 message-rate harness (ping-pong, NC / WC-FP / WC-SP
    scenarios, CPU baselines).
"""

from repro.core import (
    ANY_SOURCE,
    ANY_TAG,
    EngineConfig,
    MatchEvent,
    MatchKind,
    MessageEnvelope,
    OptimisticMatcher,
    ReceiveRequest,
    ResolutionPath,
)

__version__ = "1.0.0"

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "EngineConfig",
    "MatchEvent",
    "MatchKind",
    "MessageEnvelope",
    "OptimisticMatcher",
    "ReceiveRequest",
    "ResolutionPath",
    "__version__",
]

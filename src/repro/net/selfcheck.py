"""Cluster-fabric smoke invariants (the CI ``cluster-smoke`` gate).

Usage::

    python -m repro.net.selfcheck [--ranks N] [--rounds N]

Three invariants, each checked end-to-end and each a hard failure:

* **determinism** — the same workload run twice produces identical
  per-link reports (bytes, busy ticks, utilization) and the identical
  elapsed tick count. The fabric has no hidden entropy source; any
  divergence is a bug.
* **conservation** — every completed message's ledger wire phase is
  explained exactly by one fabric hop schedule: the per-hop durations
  telescope to ``arrival - inject`` and the phase opens/closes at
  those ticks (``exact == checked`` on a clean run, zero drops).
* **congestion ordering** — a flow contending for a link observes
  strictly higher end-to-end latency than the same flow alone on the
  same route. Queuing delay must be visible, and only additive.

Exit status 0 when all pass, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys

from repro.net.cluster import run_cluster
from repro.net.fabric import Fabric
from repro.net.topology import ring

__all__ = ["check_congestion_ordering", "check_determinism", "main", "run_selfcheck"]


def check_determinism(ranks: int, rounds: int) -> tuple[bool, str]:
    """Two identical runs must agree on every observable."""
    first = run_cluster("halo", ranks, topology="torus", rounds=rounds)
    second = run_cluster("halo", ranks, topology="torus", rounds=rounds)
    if first.results["links"] != second.results["links"]:
        return False, "per-link reports differ between identical runs"
    if first.results["elapsed_ticks"] != second.results["elapsed_ticks"]:
        return False, (
            f"elapsed ticks differ: {first.results['elapsed_ticks']} "
            f"vs {second.results['elapsed_ticks']}"
        )
    if not first.ok:
        return False, f"run not clean: {len(first.results['violations'])} violations"
    return True, (
        f"{len(first.results['links'])} links identical across runs, "
        f"{first.results['elapsed_ticks']} ticks"
    )


def check_conservation(ranks: int, rounds: int) -> tuple[bool, str]:
    """Per-hop wire time must telescope exactly on a clean run."""
    report = run_cluster("halo", ranks, topology="fattree", rounds=rounds)
    cons = report.results["conservation"]
    if cons["checked"] == 0:
        return False, "no messages audited"
    if cons["exact"] != cons["checked"]:
        return False, (
            f"conservation broken: {cons['exact']}/{cons['checked']} exact "
            f"({cons['recovered']} recovered on a clean run)"
        )
    return True, f"{cons['exact']}/{cons['checked']} messages telescope exactly"


def check_congestion_ordering() -> tuple[bool, str]:
    """Contended latency strictly exceeds uncontended, same route."""
    topo = ring(2)
    solo = Fabric(topo)
    solo.attach("p")
    hosts = topo.hosts
    base = solo.inject(hosts[0], hosts[1], "p", None, 512)
    uncontended = base.arrival - base.inject

    burst = Fabric(topo)
    burst.attach("p")
    last = None
    for _ in range(8):
        last = burst.inject(hosts[0], hosts[1], "p", None, 512)
    assert last is not None
    contended = last.arrival - last.inject
    if contended <= uncontended:
        return False, (
            f"no queuing visible: contended {contended} <= "
            f"uncontended {uncontended} ticks"
        )
    return True, f"contended {contended} > uncontended {uncontended} ticks"


def run_selfcheck(*, ranks: int = 8, rounds: int = 3) -> list[tuple[str, bool, str]]:
    return [
        ("determinism", *check_determinism(ranks, rounds)),
        ("conservation", *check_conservation(ranks, rounds)),
        ("congestion-ordering", *check_congestion_ordering()),
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ranks", type=int, default=8)
    parser.add_argument("--rounds", type=int, default=3)
    args = parser.parse_args(argv)
    checks = run_selfcheck(ranks=args.ranks, rounds=args.rounds)
    failed = 0
    for name, ok, detail in checks:
        mark = "ok" if ok else "FAIL"
        print(f"[{mark:>4}] {name}: {detail}")
        failed += 0 if ok else 1
    if failed:
        print(f"{failed}/{len(checks)} cluster smoke checks failed", file=sys.stderr)
        return 1
    print(f"all {len(checks)} cluster smoke checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

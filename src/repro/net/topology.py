"""Cluster topology graphs.

A :class:`Topology` is a directed multigraph of *hosts* (nodes that
can hold MPI ranks) and *switches*, connected by directed links each
carrying a propagation ``latency`` (ticks) and a ``bandwidth``
(bytes/tick, the store-and-forward serialization rate). Physical
cables are modeled as two independent directed links, so the two
directions never contend with each other — the full-duplex assumption
every RDMA fabric makes.

Three builders cover the shapes the offload literature evaluates on:

* :func:`ring` — the degenerate 1-D torus; every host is also a
  router, so non-neighbor traffic transits intermediate hosts.
* :func:`torus2d` — a rows×cols wrap-around mesh of hosts, the
  classic HPC direct network (each host links to its 4 neighbors).
* :func:`fat_tree` — a k-ary fat-tree (k pods of k/2 edge + k/2
  aggregation switches, (k/2)² cores, k³/4 hosts), the indirect
  network of most InfiniBand clusters.

:func:`topology_by_name` sizes a named family to fit a host count, so
drivers can sweep ``topology × placement`` from string parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "Link",
    "Topology",
    "ring",
    "torus2d",
    "fat_tree",
    "topology_by_name",
    "TOPOLOGY_FAMILIES",
]

#: Default link speed: 64 B/tick keeps serialization of a 512 B halo
#: payload at 8 ticks — visible next to 1-tick propagation, so
#: congestion is measurable without dominating everything.
DEFAULT_BANDWIDTH = 64
DEFAULT_LATENCY = 1


@dataclass(frozen=True, slots=True)
class Link:
    """One directed link. ``name`` doubles as its stats/metrics key."""

    src: str
    dst: str
    latency: int = DEFAULT_LATENCY
    bandwidth: int = DEFAULT_BANDWIDTH

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"link endpoints must differ, both {self.src!r}")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.bandwidth < 1:
            raise ValueError(f"bandwidth must be >= 1, got {self.bandwidth}")

    @property
    def name(self) -> str:
        return f"{self.src}>{self.dst}"


class Topology:
    """Hosts + switches + directed links, with adjacency lookups."""

    def __init__(self, name: str) -> None:
        self.name = name
        #: Rank-placeable nodes, in deterministic creation order.
        self.hosts: list[str] = []
        #: Pure forwarding nodes.
        self.switches: list[str] = []
        self._links: dict[str, Link] = {}
        #: node -> sorted list of outgoing neighbor nodes.
        self._adjacency: dict[str, list[str]] = {}

    # -- construction ----------------------------------------------------

    def add_host(self, node: str) -> str:
        if node in self._adjacency:
            raise ValueError(f"duplicate node {node!r}")
        self.hosts.append(node)
        self._adjacency[node] = []
        return node

    def add_switch(self, node: str) -> str:
        if node in self._adjacency:
            raise ValueError(f"duplicate node {node!r}")
        self.switches.append(node)
        self._adjacency[node] = []
        return node

    def connect(
        self,
        a: str,
        b: str,
        *,
        latency: int = DEFAULT_LATENCY,
        bandwidth: int = DEFAULT_BANDWIDTH,
    ) -> None:
        """Add the full-duplex cable a<->b (two directed links)."""
        for src, dst in ((a, b), (b, a)):
            link = Link(src, dst, latency=latency, bandwidth=bandwidth)
            if link.name in self._links:
                raise ValueError(f"duplicate link {link.name}")
            if src not in self._adjacency or dst not in self._adjacency:
                missing = src if src not in self._adjacency else dst
                raise KeyError(f"unknown node {missing!r}")
            self._links[link.name] = link
            self._adjacency[src].append(dst)
            self._adjacency[src].sort()

    # -- lookups ---------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        return self.hosts + self.switches

    @property
    def links(self) -> dict[str, Link]:
        return self._links

    def link(self, src: str, dst: str) -> Link:
        try:
            return self._links[f"{src}>{dst}"]
        except KeyError:
            raise KeyError(f"no link {src!r} -> {dst!r}") from None

    def neighbors(self, node: str) -> list[str]:
        return self._adjacency[node]

    def __contains__(self, node: str) -> bool:
        return node in self._adjacency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology({self.name!r}, hosts={len(self.hosts)}, "
            f"switches={len(self.switches)}, links={len(self._links)})"
        )


def ring(
    hosts: int,
    *,
    latency: int = DEFAULT_LATENCY,
    bandwidth: int = DEFAULT_BANDWIDTH,
) -> Topology:
    """``hosts`` nodes in a cycle; hosts route for each other."""
    if hosts < 2:
        raise ValueError(f"a ring needs >= 2 hosts, got {hosts}")
    topo = Topology(f"ring-{hosts}")
    for i in range(hosts):
        topo.add_host(f"h{i}")
    for i in range(hosts):
        peer = (i + 1) % hosts
        if hosts == 2 and peer < i:
            break  # h0<->h1 already cabled; don't duplicate the cycle edge
        topo.connect(f"h{i}", f"h{peer}", latency=latency, bandwidth=bandwidth)
    return topo


def torus2d(
    rows: int,
    cols: int,
    *,
    latency: int = DEFAULT_LATENCY,
    bandwidth: int = DEFAULT_BANDWIDTH,
) -> Topology:
    """A rows×cols wrap-around mesh (each host cabled to 4 neighbors)."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ValueError(f"torus needs >= 2 hosts, got {rows}x{cols}")
    topo = Topology(f"torus-{rows}x{cols}")
    for r in range(rows):
        for c in range(cols):
            topo.add_host(f"h{r * cols + c}")

    def host(r: int, c: int) -> str:
        return f"h{(r % rows) * cols + (c % cols)}"

    for r in range(rows):
        for c in range(cols):
            # Cable each wrap edge exactly once (skip the wrap edge
            # when the dimension is too short to have a distinct one).
            if cols > 1 and (cols > 2 or c + 1 < cols):
                topo.connect(host(r, c), host(r, c + 1), latency=latency, bandwidth=bandwidth)
            if rows > 1 and (rows > 2 or r + 1 < rows):
                topo.connect(host(r, c), host(r + 1, c), latency=latency, bandwidth=bandwidth)
    return topo


def fat_tree(
    k: int,
    *,
    latency: int = DEFAULT_LATENCY,
    bandwidth: int = DEFAULT_BANDWIDTH,
) -> Topology:
    """A k-ary fat-tree: k pods, (k/2)² cores, k³/4 hosts.

    Hosts attach to edge switches; edge switches uplink to every
    aggregation switch in their pod; aggregation switch j of each pod
    uplinks to cores j*(k/2)..(j+1)*(k/2)-1 — the standard rearrange-
    ably non-blocking wiring.
    """
    if k < 2 or k % 2:
        raise ValueError(f"fat-tree arity must be even and >= 2, got {k}")
    half = k // 2
    topo = Topology(f"fattree-{k}")
    for i in range(half * half * k):
        topo.add_host(f"h{i}")
    cores = [topo.add_switch(f"core{i}") for i in range(half * half)]
    for pod in range(k):
        edges = [topo.add_switch(f"p{pod}e{i}") for i in range(half)]
        aggs = [topo.add_switch(f"p{pod}a{i}") for i in range(half)]
        for e, edge in enumerate(edges):
            for h in range(half):
                host = f"h{(pod * half + e) * half + h}"
                topo.connect(host, edge, latency=latency, bandwidth=bandwidth)
            for agg in aggs:
                topo.connect(edge, agg, latency=latency, bandwidth=bandwidth)
        for a, agg in enumerate(aggs):
            for core in cores[a * half : (a + 1) * half]:
                topo.connect(agg, core, latency=latency, bandwidth=bandwidth)
    return topo


def _fit_ring(hosts: int, **kw) -> Topology:
    return ring(max(hosts, 2), **kw)


def _fit_torus(hosts: int, **kw) -> Topology:
    """Near-square torus with at least ``hosts`` hosts."""
    rows = max(int(math.isqrt(hosts)), 1)
    cols = max(-(-hosts // rows), 2 if rows == 1 else 1)
    return torus2d(rows, cols, **kw)


def _fit_fat_tree(hosts: int, **kw) -> Topology:
    k = 2
    while k * k * k // 4 < hosts:
        k += 2
    return fat_tree(k, **kw)


#: name -> builder(hosts, *, latency, bandwidth); the sweepable families.
TOPOLOGY_FAMILIES = {
    "ring": _fit_ring,
    "torus": _fit_torus,
    "fattree": _fit_fat_tree,
}


def topology_by_name(
    name: str,
    hosts: int,
    *,
    latency: int = DEFAULT_LATENCY,
    bandwidth: int = DEFAULT_BANDWIDTH,
) -> Topology:
    """Size family ``name`` to hold at least ``hosts`` hosts."""
    builder = TOPOLOGY_FAMILIES.get(name)
    if builder is None:
        raise KeyError(
            f"unknown topology {name!r}; known: {sorted(TOPOLOGY_FAMILIES)}"
        )
    topo = builder(hosts, latency=latency, bandwidth=bandwidth)
    if len(topo.hosts) < hosts:
        raise AssertionError(
            f"{name} sized {len(topo.hosts)} hosts for request of {hosts}"
        )
    return topo

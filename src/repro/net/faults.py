"""Seeded network faults: link flaps and partitions.

A :class:`LinkFaultPlan` is a pure-literal description (it crosses the
fleet worker boundary inside job params) of two fault families:

* **Link flaps** — seeded links go down for seeded windows; packets
  entering a down link are dropped. The RC reliability layer above
  the fabric retransmits, so a flap shows up as latency, not loss.
* **Partition** — one seeded victim host loses *all* its links for a
  window: the many-to-one cut that exercises go-back-N recovery
  across every flow touching that node at once. The window must stay
  inside the retry budget or the transport (correctly) fails sticky.

The compiled form is a :class:`FaultSchedule` of per-link down
windows, derived entirely from the plan seed — same seed, same faults.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping

from repro.net.topology import Topology
from repro.util.rng import derive_seed, make_rng

__all__ = ["LinkFaultPlan", "FaultSchedule"]


@dataclass(frozen=True, slots=True)
class LinkFaultPlan:
    """Seeded fault description (JSON-literal fields only)."""

    seed: int = 0
    #: Distinct links that flap (0 disables flapping).
    flap_links: int = 0
    #: Down windows per flapping link.
    flaps_per_link: int = 1
    #: Length of each flap window, in fabric ticks.
    flap_ticks: int = 32
    #: Windows are placed uniformly in [0, flap_horizon).
    flap_horizon: int = 2048
    #: Tick at which the partition starts (-1 = no partition).
    partition_at: int = -1
    #: Length of the partition window.
    partition_ticks: int = 64
    #: Host index to isolate (-1 = seeded choice).
    partition_victim: int = -1

    def __post_init__(self) -> None:
        if self.flap_links < 0 or self.flaps_per_link < 0:
            raise ValueError("flap counts must be non-negative")
        if self.flap_ticks < 1 or self.partition_ticks < 1:
            raise ValueError("fault windows must be >= 1 tick")
        if self.flap_horizon < 1:
            raise ValueError(f"flap_horizon must be >= 1, got {self.flap_horizon}")

    @property
    def is_clean(self) -> bool:
        return self.flap_links == 0 and self.partition_at < 0

    def with_options(self, **overrides: Any) -> "LinkFaultPlan":
        return LinkFaultPlan(**{**asdict(self), **overrides})

    def to_params(self) -> dict:
        return asdict(self)

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "LinkFaultPlan":
        return cls(**dict(params))

    def compile(self, topology: Topology) -> "FaultSchedule":
        """Derive the concrete per-link down windows for ``topology``."""
        windows: dict[str, list[tuple[int, int]]] = {}
        if self.is_clean:
            return FaultSchedule(windows)

        def add(link: str, t0: int, t1: int) -> None:
            windows.setdefault(link, []).append((t0, t1))

        link_names = sorted(topology.links)
        if self.flap_links and link_names:
            rng = make_rng(derive_seed(self.seed, "net.flaps"))
            count = min(self.flap_links, len(link_names))
            picks = rng.choice(len(link_names), size=count, replace=False)
            for index in sorted(int(i) for i in picks):
                name = link_names[index]
                for _ in range(self.flaps_per_link):
                    t0 = int(rng.integers(0, self.flap_horizon))
                    add(name, t0, t0 + self.flap_ticks)
        if self.partition_at >= 0 and topology.hosts:
            victim_index = self.partition_victim
            if victim_index < 0:
                rng = make_rng(derive_seed(self.seed, "net.partition"))
                victim_index = int(rng.integers(0, len(topology.hosts)))
            victim = topology.hosts[victim_index % len(topology.hosts)]
            t0, t1 = self.partition_at, self.partition_at + self.partition_ticks
            for link in topology.links.values():
                if victim in (link.src, link.dst):
                    add(link.name, t0, t1)
        for spans in windows.values():
            spans.sort()
        return FaultSchedule(windows)


class FaultSchedule:
    """Compiled per-link down windows with O(windows) lookup."""

    def __init__(self, windows: dict[str, list[tuple[int, int]]]) -> None:
        self.windows = windows

    @property
    def is_clean(self) -> bool:
        return not self.windows

    def down(self, link: str, tick: int) -> bool:
        """Is ``link`` down at ``tick``? (Half-open windows [t0, t1).)"""
        for t0, t1 in self.windows.get(link, ()):
            if t0 <= tick < t1:
                return True
            if t0 > tick:
                break
        return False

"""The shared fabric: links with occupancy, a global tick clock, and
per-port delivery queues.

The fabric is an *analytic* event-timed network: when a packet is
injected, its whole hop schedule is computed immediately against the
current link occupancy — per hop, the packet waits for the link to
free (``busy_until``), occupies it for its serialization time
(``ceil(size / bandwidth)``, min 1 tick), then propagates for the
link's latency. Contending flows therefore push each other's
``busy_until`` forward and *see* congestion; a flow alone on its
route sees only latency + serialization. Delivery happens when the
fabric clock (advanced one tick per ``deliver`` poll) reaches the
packet's arrival time.

Two invariants matter to everything above:

* **Per-pair FIFO** — a (src, dst) flow always takes the same static
  route (oblivious routing) and every link is FIFO (``busy_until`` is
  monotone), so later packets of a flow never overtake earlier ones.
  That is the C2 precondition the matcher relies on.
* **Hop conservation** — a transfer's hop intervals telescope:
  ``hops[0].t_in == inject``, ``hops[i+1].t_in == hops[i].t_out`` and
  ``arrival == hops[-1].t_out``, so per-hop durations sum *exactly*
  to the end-to-end wire time. The ledger's per-hop wire attribution
  inherits exactness from this, not from bookkeeping.

Besides the data path there is a tiny **control plane** (the
``inject_control`` / ``deliver_control`` pair): a management lane in
the spirit of InfiniBand's VL15 virtual lane, used by the heartbeat
failure detector. Control packets follow the *same static routes* as
data — their delay is the route's per-link latency plus one
serialization tick per hop — but they neither wait for nor advance
``busy_until``, and they are exempt from the link-fault schedule. That
separation is deliberate: it makes the failure detector's latency a
pure function of topology (provably bounded, see
:mod:`repro.resilience.heartbeat`) and guarantees that enabling
heartbeats perturbs no data-path observable.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.net.faults import FaultSchedule, LinkFaultPlan
from repro.net.routing import RouteTable
from repro.net.topology import Topology

__all__ = ["Fabric", "Hop", "LinkStats", "Transfer"]


@dataclass(frozen=True, slots=True)
class Hop:
    """One link traversal: enters at ``t_in``, leaves the far end at
    ``t_out`` (= queue wait + serialization + propagation later)."""

    link: str
    t_in: int
    t_out: int

    @property
    def duration(self) -> int:
        return self.t_out - self.t_in


@dataclass(slots=True)
class Transfer:
    """One packet's passage through the fabric."""

    src: str
    dst: str
    size: int
    inject: int
    arrival: int
    hops: tuple[Hop, ...]
    dropped: bool = False
    drop_link: str = ""

    def conserved(self) -> bool:
        """Per-hop durations telescope exactly to end-to-end time."""
        t = self.inject
        for hop in self.hops:
            if hop.t_in != t:
                return False
            t = hop.t_out
        end = self.arrival if not self.dropped else t
        return t == end


@dataclass(slots=True)
class LinkStats:
    """Cumulative per-link accounting (the obs export)."""

    packets: int = 0
    bytes: int = 0
    #: Ticks spent serializing packets onto this link.
    busy_ticks: int = 0
    #: Ticks packets spent queued waiting for the link.
    wait_ticks: int = 0
    #: Worst single-packet queue wait (the queue-depth signal).
    peak_wait: int = 0
    drops: int = 0


@dataclass(slots=True)
class _LinkState:
    latency: int
    bandwidth: int
    busy_until: int = 0
    stats: LinkStats = field(default_factory=LinkStats)


class Fabric:
    """Topology + routes + occupancy + the run's tick clock."""

    def __init__(
        self,
        topology: Topology,
        *,
        routes: RouteTable | None = None,
        plan: LinkFaultPlan | None = None,
        keep_transfers: bool = True,
    ) -> None:
        self.topology = topology
        self.routes = routes if routes is not None else RouteTable(topology)
        self.schedule: FaultSchedule = (
            plan.compile(topology) if plan is not None else FaultSchedule({})
        )
        self.clock = 0
        self._links: dict[str, _LinkState] = {
            name: _LinkState(link.latency, link.bandwidth)
            for name, link in topology.links.items()
        }
        #: port -> min-heap of (arrival, seq, packet, transfer).
        self._ports: dict[str, list] = {}
        #: control-plane ports (management lane, own heaps/counters).
        self._control_ports: dict[str, list] = {}
        self._seq = 0
        self.injected = 0
        self.delivered = 0
        self.dropped = 0
        self.control_injected = 0
        self.control_delivered = 0
        self.keep_transfers = keep_transfers
        #: Every transfer ever injected (conservation audits); cleared
        #: by callers that run long soaks with ``keep_transfers=False``.
        self.transfers: list[Transfer] = []

    def now(self) -> float:
        return float(self.clock)

    def tick(self) -> int:
        self.clock += 1
        return self.clock

    # -- ports -----------------------------------------------------------

    def attach(self, port: str) -> None:
        if port in self._ports:
            raise ValueError(f"duplicate port {port!r}")
        self._ports[port] = []

    def pending(self, port: str) -> int:
        """Packets in flight toward (or ready at) ``port``."""
        return len(self._ports[port])

    def next_arrival(self, port: str) -> int | None:
        """Arrival tick of ``port``'s earliest in-flight packet."""
        heap = self._ports[port]
        return heap[0][0] if heap else None

    # -- the datapath ----------------------------------------------------

    def inject(self, src: str, dst: str, port: str, packet, size: int) -> Transfer:
        """Route one packet; returns its (already decided) transfer.

        The packet lands on ``port``'s heap at its computed arrival
        tick unless a down link on the route drops it.
        """
        heap = self._ports[port]
        t = self.clock
        hops: list[Hop] = []
        transfer = Transfer(src, dst, size, inject=t, arrival=t, hops=())
        self.injected += 1
        for link_name in self.routes.path(src, dst):
            state = self._links[link_name]
            if self.schedule.down(link_name, t):
                state.stats.drops += 1
                self.dropped += 1
                transfer.dropped = True
                transfer.drop_link = link_name
                break
            start = max(t, state.busy_until)
            wait = start - t
            ser = max(1, -(-size // state.bandwidth))
            state.busy_until = start + ser
            out = start + ser + state.latency
            stats = state.stats
            stats.packets += 1
            stats.bytes += size
            stats.busy_ticks += ser
            stats.wait_ticks += wait
            if wait > stats.peak_wait:
                stats.peak_wait = wait
            hops.append(Hop(link_name, t, out))
            t = out
        transfer.hops = tuple(hops)
        transfer.arrival = t
        if self.keep_transfers:
            self.transfers.append(transfer)
        if not transfer.dropped:
            self._seq += 1
            heapq.heappush(heap, (transfer.arrival, self._seq, packet, transfer))
        return transfer

    def deliver(self, port: str):
        """Pop the next arrived ``(packet, transfer)`` at ``port``, or
        ``None`` when nothing has arrived by the current clock."""
        heap = self._ports[port]
        if heap and heap[0][0] <= self.clock:
            _, _, packet, transfer = heapq.heappop(heap)
            self.delivered += 1
            return packet, transfer
        return None

    # -- the control plane (management lane) -----------------------------

    def attach_control(self, port: str) -> None:
        """Attach a control-plane port (separate namespace and heaps)."""
        if port in self._control_ports:
            raise ValueError(f"duplicate control port {port!r}")
        self._control_ports[port] = []

    def control_delay(self, src: str, dst: str) -> int:
        """One-way control-packet delay ``src`` -> ``dst``.

        Per link on the static route: propagation latency plus one
        serialization tick. No queueing — the management lane never
        contends with data traffic.
        """
        return sum(
            self._links[name].latency + 1 for name in self.routes.path(src, dst)
        )

    def max_control_rtt(self, nodes=None) -> int:
        """Worst round-trip control delay over ``nodes`` (default: all
        hosts) — the topology term of the failure-detection bound."""
        hosts = list(nodes) if nodes is not None else list(self.topology.hosts)
        worst = 0
        for a in hosts:
            for b in hosts:
                if a == b:
                    continue
                rtt = self.control_delay(a, b) + self.control_delay(b, a)
                if rtt > worst:
                    worst = rtt
        return worst

    def inject_control(self, src: str, dst: str, port: str, packet) -> int:
        """Send one control packet; returns its arrival tick.

        Control packets bypass link occupancy entirely: they neither
        wait for ``busy_until`` nor advance it, are never dropped by
        the fault schedule, and touch none of the data-path counters —
        so a run with the control plane active is byte-identical on
        every data observable to the same run without it.
        """
        arrival = self.clock + self.control_delay(src, dst)
        self._seq += 1
        heapq.heappush(self._control_ports[port], (arrival, self._seq, packet))
        self.control_injected += 1
        return arrival

    def deliver_control(self, port: str):
        """Pop the next arrived ``(packet, arrival)`` control tuple at
        ``port``, or ``None`` when nothing has arrived yet."""
        heap = self._control_ports[port]
        if heap and heap[0][0] <= self.clock:
            arrival, _, packet = heapq.heappop(heap)
            self.control_delivered += 1
            return packet, arrival
        return None

    # -- reporting -------------------------------------------------------

    def link_stats(self) -> dict[str, LinkStats]:
        return {name: state.stats for name, state in self._links.items()}

    def link_report(self) -> dict[str, dict]:
        """Per-link stats as plain literals, only links that saw use."""
        report = {}
        for name in sorted(self._links):
            stats = self._links[name].stats
            if not stats.packets and not stats.drops:
                continue
            report[name] = {
                "packets": stats.packets,
                "bytes": stats.bytes,
                "busy_ticks": stats.busy_ticks,
                "wait_ticks": stats.wait_ticks,
                "peak_wait": stats.peak_wait,
                "drops": stats.drops,
                "utilization": stats.busy_ticks / self.clock if self.clock else 0.0,
            }
        return report

    def max_utilization(self) -> float:
        if not self.clock:
            return 0.0
        busiest = max(
            (state.stats.busy_ticks for state in self._links.values()), default=0
        )
        return busiest / self.clock

"""Fabric observability: per-link samples for :mod:`repro.obs`.

:func:`register_fabric` attaches a pull collector to a
:class:`repro.obs.registry.MetricsRegistry`; every snapshot then
carries the fabric's live counters — per-link bytes, packets,
utilization (busy ticks / clock), cumulative and peak queue wait (the
queue-depth signal), and drops — under ``<prefix>.link.<name>.*``,
plus fabric-wide totals under ``<prefix>.fabric.*``. Links that never
carried traffic are omitted so a fat-tree's quiet links don't flood
the snapshot.
"""

from __future__ import annotations

from repro.net.fabric import Fabric
from repro.obs.registry import MetricsRegistry

__all__ = ["register_fabric", "fabric_samples", "install_fabric_probes"]


def fabric_samples(fabric: Fabric) -> dict[str, float]:
    """One flat sample mapping of the fabric's current counters."""
    out: dict[str, float] = {
        "fabric.clock": float(fabric.clock),
        "fabric.injected": float(fabric.injected),
        "fabric.delivered": float(fabric.delivered),
        "fabric.dropped": float(fabric.dropped),
        "fabric.max_utilization": fabric.max_utilization(),
    }
    clock = fabric.clock
    for name, stats in sorted(fabric.link_stats().items()):
        if not stats.packets and not stats.drops:
            continue
        key = f"link.{name}"
        out[f"{key}.packets"] = float(stats.packets)
        out[f"{key}.bytes"] = float(stats.bytes)
        out[f"{key}.busy_ticks"] = float(stats.busy_ticks)
        out[f"{key}.utilization"] = stats.busy_ticks / clock if clock else 0.0
        out[f"{key}.wait_ticks"] = float(stats.wait_ticks)
        out[f"{key}.peak_wait"] = float(stats.peak_wait)
        out[f"{key}.drops"] = float(stats.drops)
    return out


def register_fabric(
    registry: MetricsRegistry, fabric: Fabric, *, prefix: str = "net"
) -> None:
    """Export ``fabric``'s counters through ``registry`` snapshots."""
    registry.add_collector(prefix, lambda: fabric_samples(fabric))


def install_fabric_probes(sampler, fabric: Fabric, *, prefix: str = "net") -> None:
    """Install the fabric's gauges on a timeline sampler.

    Fabric-wide counters plus one utilization series per link (the
    link set is static, so the series set is bounded by the topology).
    ``<prefix>.fabric.dropped`` only moves under a link fault plan —
    a clean fabric delivers everything — which is what lets the
    health layer treat any movement as a link-fault signature.
    """
    p = f"{prefix}." if prefix else ""
    sampler.add_probe(f"{p}fabric.injected", lambda: float(fabric.injected))
    sampler.add_probe(f"{p}fabric.delivered", lambda: float(fabric.delivered))
    sampler.add_probe(f"{p}fabric.dropped", lambda: float(fabric.dropped))
    sampler.add_probe(
        f"{p}fabric.in_flight",
        lambda: float(fabric.injected - fabric.delivered - fabric.dropped),
    )
    sampler.add_probe(f"{p}fabric.max_utilization", fabric.max_utilization)
    for name in sorted(fabric.link_stats()):

        def utilization(link: str = name) -> float:
            stats = fabric.link_stats()[link]
            return stats.busy_ticks / fabric.clock if fabric.clock else 0.0

        sampler.add_probe(f"{p}link.{name}.utilization", utilization)

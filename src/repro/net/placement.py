"""Rank → node placement maps.

A :class:`Placement` decides which host each MPI rank lives on. On a
shared fabric that choice *is* the communication cost: block placement
keeps halo neighbors on adjacent hosts (short routes, little
contention); round-robin scatters them (every exchange crosses the
network and neighbors contend for the same uplinks). The sweepable
schemes here are the baselines; :func:`repro.analyzer.placement.
recommend_placement` picks among them (plus a greedy commgraph-driven
layout) per application trace.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["Placement", "PLACEMENT_SCHEMES", "placement_by_name"]


class Placement:
    """An immutable rank → host-node map."""

    def __init__(self, mapping: Mapping[int, str], *, scheme: str = "custom") -> None:
        if not mapping:
            raise ValueError("placement must map at least one rank")
        ranks = sorted(mapping)
        if ranks != list(range(len(ranks))):
            raise ValueError(f"ranks must be dense 0..n-1, got {ranks}")
        self.scheme = scheme
        self._nodes = tuple(mapping[r] for r in ranks)
        self._by_node: dict[str, tuple[int, ...]] = {}
        for rank, node in enumerate(self._nodes):
            self._by_node[node] = self._by_node.get(node, ()) + (rank,)

    @property
    def ranks(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> tuple[str, ...]:
        """Node of each rank, indexed by rank."""
        return self._nodes

    def node_of(self, rank: int) -> str:
        return self._nodes[rank]

    def ranks_on(self, node: str) -> tuple[int, ...]:
        return self._by_node.get(node, ())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Placement) and self._nodes == other._nodes

    def __hash__(self) -> int:
        return hash(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Placement({self.scheme!r}, ranks={self.ranks})"

    # -- constructors ----------------------------------------------------

    @classmethod
    def block(cls, ranks: int, hosts: Sequence[str]) -> "Placement":
        """Consecutive ranks share a host (the mpirun default)."""
        _check(ranks, hosts)
        per_host = -(-ranks // len(hosts))
        return cls(
            {r: hosts[r // per_host] for r in range(ranks)}, scheme="block"
        )

    @classmethod
    def round_robin(cls, ranks: int, hosts: Sequence[str]) -> "Placement":
        """Rank r on host r mod n (cyclic / scatter placement)."""
        _check(ranks, hosts)
        return cls(
            {r: hosts[r % len(hosts)] for r in range(ranks)}, scheme="round_robin"
        )

    @classmethod
    def custom(
        cls, mapping: Mapping[int, str], *, scheme: str = "custom"
    ) -> "Placement":
        return cls(mapping, scheme=scheme)

    # -- fleet-param round-trip ------------------------------------------

    def to_params(self) -> dict:
        return {"scheme": self.scheme, "nodes": list(self._nodes)}

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "Placement":
        nodes = params["nodes"]
        return cls(
            {rank: node for rank, node in enumerate(nodes)},
            scheme=str(params.get("scheme", "custom")),
        )


def _check(ranks: int, hosts: Sequence[str]) -> None:
    if ranks < 1:
        raise ValueError(f"need >= 1 rank, got {ranks}")
    if not hosts:
        raise ValueError("need >= 1 host")


#: name -> constructor(ranks, hosts); the sweepable baseline schemes.
PLACEMENT_SCHEMES = {
    "block": Placement.block,
    "round_robin": Placement.round_robin,
}


def placement_by_name(name: str, ranks: int, hosts: Sequence[str]) -> Placement:
    builder = PLACEMENT_SCHEMES.get(name)
    if builder is None:
        raise KeyError(
            f"unknown placement {name!r}; known: {sorted(PLACEMENT_SCHEMES)}"
        )
    return builder(ranks, hosts)

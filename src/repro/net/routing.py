"""Static routing over a topology.

Routes are computed once (per-source BFS over deterministic sorted
adjacency) and never change during a run — the oblivious routing real
fabrics use for RC traffic, and the property that keeps per-pair
delivery FIFO: every (src, dst) flow always takes the same link
sequence, and each link is a FIFO queue, so a later packet of the
same flow can never overtake an earlier one.

Where several shortest paths exist (every fat-tree up/down pair, the
two directions round a ring's antipode), the tie is broken by a
stable per-(src, dst) hash over the candidate parents — a
deterministic stand-in for ECMP that spreads distinct flows across
the path diversity instead of funnelling them all through one core.
"""

from __future__ import annotations

import zlib
from collections import deque

from repro.net.topology import Topology

__all__ = ["RouteTable"]


def _flow_pick(src: str, dst: str, at: str, fanout: int) -> int:
    """Stable ECMP choice for flow (src, dst) at node ``at``."""
    return zlib.crc32(f"{src}|{dst}|{at}".encode()) % fanout


class RouteTable:
    """All-pairs static routes with ECMP-stable tie-breaking."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        #: src -> {node -> (distance, sorted equal-cost parents)}.
        self._trees: dict[str, dict[str, tuple[int, list[str]]]] = {}
        self._paths: dict[tuple[str, str], tuple[str, ...]] = {}

    def _tree(self, src: str) -> dict[str, tuple[int, list[str]]]:
        tree = self._trees.get(src)
        if tree is not None:
            return tree
        if src not in self.topology:
            raise KeyError(f"unknown node {src!r}")
        tree = {src: (0, [])}
        frontier = deque([src])
        while frontier:
            node = frontier.popleft()
            dist = tree[node][0]
            for neighbor in self.topology.neighbors(node):
                entry = tree.get(neighbor)
                if entry is None:
                    tree[neighbor] = (dist + 1, [node])
                    frontier.append(neighbor)
                elif entry[0] == dist + 1:
                    entry[1].append(node)
        self._trees[src] = tree
        return tree

    def hops(self, src: str, dst: str) -> int:
        """Link count of the route (0 for src == dst)."""
        return len(self.path(src, dst))

    def path(self, src: str, dst: str) -> tuple[str, ...]:
        """The link-name sequence from ``src`` to ``dst``.

        Raises :class:`KeyError` for unknown nodes and
        :class:`ValueError` when the topology does not connect them.
        """
        if src == dst:
            if src not in self.topology:
                raise KeyError(f"unknown node {src!r}")
            return ()
        cached = self._paths.get((src, dst))
        if cached is not None:
            return cached
        tree = self._tree(src)
        entry = tree.get(dst)
        if entry is None:
            raise ValueError(f"no route {src!r} -> {dst!r}")
        nodes = [dst]
        node = dst
        while node != src:
            parents = tree[node][1]
            node = parents[_flow_pick(src, dst, node, len(parents))]
            nodes.append(node)
        nodes.reverse()
        path = tuple(
            self.topology.link(a, b).name for a, b in zip(nodes, nodes[1:])
        )
        self._paths[(src, dst)] = path
        return path

"""repro.net — the cluster-fabric layer.

Everything below this package models a *shared* network: topology
graphs with per-link bandwidth and latency, static routing with
hop-by-hop occupancy (contending flows see queuing delay), rank→node
placement maps, and :class:`repro.net.fabricwire.FabricWire` — a
drop-in for :class:`repro.rdma.wire.Wire` so the whole RDMA stack
(reliability, credits, pressure, recovery) runs unchanged over the
fabric. :class:`repro.net.cluster.ClusterSim` drives synthetic app
traces end-to-end across N simulated nodes through that stack.
"""

from repro.net.fabric import Fabric, LinkStats, Transfer
from repro.net.fabricwire import FabricWire
from repro.net.faults import LinkFaultPlan
from repro.net.placement import Placement
from repro.net.routing import RouteTable
from repro.net.topology import Topology, fat_tree, ring, topology_by_name, torus2d

__all__ = [
    "Fabric",
    "FabricWire",
    "LinkFaultPlan",
    "LinkStats",
    "Placement",
    "RouteTable",
    "Topology",
    "Transfer",
    "fat_tree",
    "ring",
    "topology_by_name",
    "torus2d",
]

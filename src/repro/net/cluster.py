"""ClusterSim: synthetic app traces end-to-end over a shared fabric.

This is the multi-node closure of the pipeline: N ranks placed on a
topology, one RC connection (FabricWire + ReliableWire + a QueuePair
per side) per communicating pair, each rank's queue pairs feeding one
:class:`repro.rdma.protocol.RdmaReceiver`/matcher — the full offload
stack, unchanged, with every byte crossing the simulated network and
contending for links.

The driver is a run-to-block interpreter over a
:class:`repro.traces.model.Trace`: each rank executes its op stream
until it blocks on a wait, then a global progress round polls every
rank's transport. Collectives and one-sided ops are counted and
skipped (the p2p substrate is what the fabric exercises); wildcard
receives execute but are excluded from the stream check below.

Every send's payload carries its identity (``"src>dst:tag:k"``), so
delivery correctness is checked directly against MPI's non-overtaking
rule: the k-th receive posted by ``dst`` for stream ``(src, tag)``
must complete with the k-th message sent on that stream. Over exact
receives this is precisely the C2 pairing order — any fabric-induced
reordering the reliability layer failed to hide shows up as a
violation, with the message's ledger passport attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.engine import OptimisticMatcher
from repro.core.envelope import ReceiveRequest
from repro.net.fabric import Fabric
from repro.net.fabricwire import FabricWire
from repro.net.faults import LinkFaultPlan
from repro.net.metrics import install_fabric_probes
from repro.net.placement import Placement, placement_by_name
from repro.net.topology import (
    DEFAULT_BANDWIDTH,
    DEFAULT_LATENCY,
    Topology,
    topology_by_name,
)
from repro.obs.ledger import NULL_RECORDER, FlightRecorder
from repro.obs.timeline import NULL_SAMPLER
from repro.rdma.bounce import BounceBufferPool
from repro.rdma.cq import CompletionQueue
from repro.rdma.protocol import (
    DEFAULT_EAGER_THRESHOLD,
    RdmaReceiver,
    RdmaSender,
)
from repro.rdma.qp import QueuePair
from repro.rdma.reliability import ReliabilityConfig, ReliableWire
from repro.traces.model import OpKind, Trace
from repro.traces.synthetic.base import TraceBuilder
from repro.traces.synthetic.patterns import (
    alltoall_p2p_round,
    grid_dims,
    halo_exchange_round,
)

__all__ = [
    "CLUSTER_APPS",
    "ClusterReport",
    "ClusterSim",
    "ClusterStall",
    "cluster_workload",
    "run_cluster",
]

SCHEMA = "repro.net.cluster/v1"

#: Reliability tuning for fabric links: the fabric clock runs much
#: faster than any one pair's poll clock (every rank's every poll
#: ticks it), so transit consumes few per-pair ticks but congested or
#: partitioned runs need a deeper retry budget than the point-to-point
#: default before the transport (correctly) fails sticky.
CLUSTER_RELIABILITY = ReliabilityConfig(
    retry_timeout=16, max_timeout=256, max_retries=64
)


class ClusterStall(RuntimeError):
    """The cluster stopped making progress: blocked ranks, an idle
    network, and nothing in flight. Carries the per-rank stuck ops."""


# -- cluster workloads ----------------------------------------------------


def _halo(builder: TraceBuilder, rounds: int, size: int) -> None:
    dims = grid_dims(builder.nprocs, 2)
    for step in range(rounds):
        halo_exchange_round(builder, dims, fields=1, tag_base=step % 4, size=size)


def _alltoall(builder: TraceBuilder, rounds: int, size: int) -> None:
    for step in range(rounds):
        alltoall_p2p_round(builder, tag=step % 4, size=size)


def _hotspot(builder: TraceBuilder, rounds: int, size: int) -> None:
    """All ranks send to rank 0: the incast that saturates one host's
    downlink and makes queuing delay visible on every flow."""
    for step in range(rounds):
        clock = builder.begin_round()
        root = builder.ranks[0]
        reqs = [
            root.irecv(src, step % 4, clock.recv(), size=size)
            for src in range(1, builder.nprocs)
        ]
        for src in range(1, builder.nprocs):
            builder.ranks[src].isend(0, step % 4, clock.send(src), size=size)
        root.waitall(reqs, clock.wait())


#: name -> generator(builder, rounds, size); the sweepable apps.
CLUSTER_APPS = {
    "halo": _halo,
    "alltoall": _alltoall,
    "hotspot": _hotspot,
}


def cluster_workload(
    app: str, ranks: int, *, rounds: int = 4, size: int = 512
) -> Trace:
    """Generate the named cluster workload (exact receives only)."""
    generator = CLUSTER_APPS.get(app)
    if generator is None:
        raise KeyError(f"unknown cluster app {app!r}; known: {sorted(CLUSTER_APPS)}")
    builder = TraceBuilder(f"cluster-{app}", ranks)
    generator(builder, rounds, size)
    return builder.build()


# -- the report -----------------------------------------------------------


@dataclass(slots=True)
class ClusterReport:
    """One cluster run's parameters and observables (fleet-codable)."""

    params: dict = field(default_factory=dict)
    results: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return (
            not self.results.get("violations")
            and self.results.get("undelivered", 0) == 0
        )

    def to_dict(self) -> dict:
        return {"schema": SCHEMA, "params": self.params, "results": self.results}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ClusterReport":
        schema = payload.get("schema")
        if schema != SCHEMA:
            raise ValueError(f"expected {SCHEMA}, got {schema!r}")
        return cls(
            params=dict(payload["params"]), results=dict(payload["results"])
        )


# -- per-rank bookkeeping -------------------------------------------------


@dataclass(slots=True)
class _RecvMeta:
    source: int
    tag: int
    stream_index: int  #: k-th exact receive on (source, tag) at this rank
    wildcard: bool
    request: int  #: trace request id (-1 when none)
    done: bool = False


class _Rank:
    """One rank's stack: matcher, receiver, per-peer senders."""

    def __init__(
        self,
        rank: int,
        ops,
        recorder: FlightRecorder,
        bounce_buffers: int,
        matcher=None,
    ) -> None:
        self.rank = rank
        self.ops = ops
        self.pc = 0
        self.matcher = matcher if matcher is not None else OptimisticMatcher()
        if recorder.enabled and hasattr(self.matcher, "set_recorder"):
            self.matcher.set_recorder(recorder)
        self.receiver = RdmaReceiver(None, self.matcher, recorder=recorder)
        #: NIC staging memory is a per-rank resource shared by all of
        #: the rank's connections.
        self.pool = BounceBufferPool(bounce_buffers)
        self.senders: dict[int, RdmaSender] = {}
        self.next_handle = 0
        self.recvs: dict[int, _RecvMeta] = {}
        self.recv_by_request: dict[int, int] = {}
        #: (source, tag) -> receives posted so far on that stream.
        self.recv_streams: dict[tuple[int, int], int] = {}
        #: (dst, tag) -> messages sent so far on that stream.
        self.send_streams: dict[tuple[int, int], int] = {}
        self.outstanding: set[int] = set()
        self.consumed = 0  #: completed-list prefix already checked
        self.skipped_ops = 0

    @property
    def done(self) -> bool:
        return self.pc >= len(self.ops) and not self.outstanding


class ClusterSim:
    """N ranks, one trace, one shared fabric."""

    def __init__(
        self,
        trace: Trace,
        *,
        topology: str | Topology = "torus",
        placement: str | Placement = "block",
        plan: LinkFaultPlan | None = None,
        latency: int = DEFAULT_LATENCY,
        bandwidth: int = DEFAULT_BANDWIDTH,
        eager_threshold: int = DEFAULT_EAGER_THRESHOLD,
        reliability: ReliabilityConfig | None = None,
        bounce_buffers: int = 256,
        cq_depth: int = 1024,
        record: bool = True,
        matcher_factory=None,
    ) -> None:
        """``matcher_factory``, when given, is called with each rank
        index to build that rank's matcher (e.g. an engine restored
        from a checkpoint) instead of a fresh
        :class:`OptimisticMatcher`."""
        self.trace = trace
        self.nprocs = trace.nprocs
        if isinstance(topology, str):
            topology = topology_by_name(
                topology, self.nprocs, latency=latency, bandwidth=bandwidth
            )
        self.topology = topology
        if isinstance(placement, str):
            placement = placement_by_name(placement, self.nprocs, topology.hosts)
        self.placement = placement
        self.plan = plan
        self.fabric = Fabric(topology, plan=plan)
        self.recorder: FlightRecorder = FlightRecorder() if record else NULL_RECORDER
        self.recorder.set_clock(lambda: float(self.fabric.clock))
        self.eager_threshold = eager_threshold
        self.reliability = (
            reliability if reliability is not None else CLUSTER_RELIABILITY
        )
        self._cq_depth = cq_depth
        self.ranks = [
            _Rank(
                r,
                trace.rank(r).ops,
                self.recorder,
                bounce_buffers,
                matcher=matcher_factory(r) if matcher_factory is not None else None,
            )
            for r in range(self.nprocs)
        ]
        self.wires: list[ReliableWire] = []
        self.violations: list[dict] = []
        self.sends = 0
        self.deliveries = 0
        self.sampler = NULL_SAMPLER
        for a, b in sorted(self._pairs()):
            self._connect(a, b)

    # -- telemetry --------------------------------------------------------

    def attach_sampler(self, sampler) -> None:
        """Install the cluster's standard timeline probes on ``sampler``
        and start polling it each progress round (on fabric ticks).

        Series: the fabric gauges
        (:func:`repro.net.metrics.install_fabric_probes`) plus
        ``ranks.live`` — the count of ranks still participating, which
        is constant on fault-free runs and steps down exactly when a
        fail-stop subclass deactivates a rank.
        """
        self.sampler = sampler
        if not sampler.enabled:
            return
        install_fabric_probes(sampler, self.fabric)
        sampler.add_probe(
            "ranks.live",
            lambda: float(sum(1 for n in self.ranks if self._rank_active(n))),
        )
        # Deliberately no rc.retransmits probe here: a congested but
        # healthy fabric retransmits legitimately, so that series is
        # only a fault signature on the point-to-point chaos stack.

    def _sample_tick(self) -> float:
        """The sampler's clock (epoch subclasses offset this so ticks
        stay monotone across rebuilds)."""
        return float(self.fabric.clock)

    # -- wiring ----------------------------------------------------------

    def _pairs(self) -> set[tuple[int, int]]:
        """Unordered communicating pairs, derived from the trace."""
        pairs: set[tuple[int, int]] = set()
        for rank_trace in self.trace.ranks:
            me = rank_trace.rank
            for op in rank_trace.ops:
                if op.kind in (OpKind.ISEND, OpKind.SEND) and op.peer >= 0:
                    pairs.add((min(me, op.peer), max(me, op.peer)))
                elif (
                    op.kind in (OpKind.IRECV, OpKind.RECV)
                    and 0 <= op.peer < self.nprocs
                ):
                    pairs.add((min(me, op.peer), max(me, op.peer)))
        return pairs

    def _connect(self, a: int, b: int) -> None:
        """One RC connection between ranks ``a`` and ``b``."""
        end_a, end_b = f"r{a}|{a}-{b}", f"r{b}|{a}-{b}"
        fabric_wire = FabricWire(
            self.fabric,
            end_a,
            end_b,
            node_a=self.placement.node_of(a),
            node_b=self.placement.node_of(b),
            recorder=self.recorder,
        )
        wire = ReliableWire(
            fabric_wire, config=self.reliability, recorder=self.recorder
        )
        self.wires.append(wire)
        for rank, side, peer in ((a, end_a, b), (b, end_b, a)):
            node = self.ranks[rank]
            qp = QueuePair(
                wire,
                side,
                cq=CompletionQueue(self._cq_depth),
                bounce_pool=node.pool,
                recorder=self.recorder,
            )
            node.receiver.add_qp(qp)
            node.senders[peer] = RdmaSender(
                qp,
                rank,
                eager_threshold=self.eager_threshold,
                recorder=self.recorder,
            )

    # -- op execution ----------------------------------------------------

    def _post_receive(self, node: _Rank, op) -> int:
        wildcard = op.uses_wildcard()
        handle = node.next_handle
        node.next_handle += 1
        stream_index = -1
        if not wildcard:
            key = (op.peer, op.tag)
            stream_index = node.recv_streams.get(key, 0)
            node.recv_streams[key] = stream_index + 1
        node.recvs[handle] = _RecvMeta(
            source=op.peer,
            tag=op.tag,
            stream_index=stream_index,
            wildcard=wildcard,
            request=op.request,
        )
        if op.request >= 0:
            node.recv_by_request[op.request] = handle
        node.outstanding.add(handle)
        node.receiver.post_receive(
            ReceiveRequest(source=op.peer, tag=op.tag, comm=op.comm, handle=handle)
        )
        return handle

    def _send(self, node: _Rank, op) -> None:
        key = (op.peer, op.tag)
        seq = node.send_streams.get(key, 0)
        node.send_streams[key] = seq + 1
        ident = f"{node.rank}>{op.peer}:{op.tag}:{seq}"
        payload = ident.encode().ljust(max(op.size, len(ident)), b".")
        header = node.senders[op.peer].send(op.tag, payload, comm=op.comm)
        if self.recorder.enabled and header.mid >= 0:
            self.recorder.label(header.mid, ident)
        self.sends += 1

    def _wait_satisfied(self, node: _Rank, op) -> bool:
        if op.kind is OpKind.WAITALL:
            return not node.outstanding
        handle = node.recv_by_request.get(op.request)
        if handle is None:
            return True  # send request: complete at post time
        return node.recvs[handle].done

    def _step_rank(self, node: _Rank) -> bool:
        """Run ``node`` until it blocks; True if any op executed."""
        moved = False
        while node.pc < len(node.ops):
            op = node.ops[node.pc]
            if op.kind in (OpKind.IRECV, OpKind.RECV):
                handle = self._post_receive(node, op)
                node.pc += 1
                moved = True
                if op.kind is OpKind.RECV and not node.recvs[handle].done:
                    break  # blocking receive
            elif op.kind in (OpKind.ISEND, OpKind.SEND):
                self._send(node, op)
                node.pc += 1
                moved = True
            elif op.kind in (OpKind.WAIT, OpKind.WAITALL):
                if not self._wait_satisfied(node, op):
                    break
                node.pc += 1
                moved = True
            else:
                # Collectives / one-sided: outside the p2p substrate.
                node.skipped_ops += 1
                node.pc += 1
                moved = True
        return moved

    # -- completion checking ---------------------------------------------

    def _check_completions(self, node: _Rank) -> int:
        completed = node.receiver.completed
        fresh = 0
        while node.consumed < len(completed):
            delivery = completed[node.consumed]
            node.consumed += 1
            fresh += 1
            self.deliveries += 1
            meta = node.recvs.get(delivery.handle)
            if meta is None:
                continue
            meta.done = True
            node.outstanding.discard(delivery.handle)
            if meta.wildcard:
                continue
            expected = (
                f"{meta.source}>{node.rank}:{meta.tag}:{meta.stream_index}"
            )
            actual = delivery.payload.rstrip(b".").decode(errors="replace")
            if actual != expected:
                self.violations.append(
                    {
                        "rank": node.rank,
                        "expected": expected,
                        "actual": actual,
                        "passport": self.recorder.passport(actual),
                    }
                )
        return fresh

    # -- the run loop ----------------------------------------------------

    def _in_flight(self) -> int:
        return sum(wire.in_flight() for wire in self.wires)

    def _pending_reads(self) -> int:
        return sum(
            node.receiver.pending_reads
            for node in self.ranks
            if self._rank_active(node)
        )

    def _rank_active(self, node: _Rank) -> bool:
        """Whether ``node`` still participates (hook for fail-stop
        subclasses: a dead rank is stepped and polled no further)."""
        return True

    def _trace_done(self) -> bool:
        return all(node.done for node in self.ranks if self._rank_active(node))

    def _stuck_ops(self) -> dict[int, str]:
        """The op each unfinished active rank is blocked on."""
        return {
            node.rank: str(node.ops[node.pc].kind)
            for node in self.ranks
            if self._rank_active(node) and not node.done and node.pc < len(node.ops)
        }

    def _progress_round(self) -> bool:
        """One global round: step every active rank to its next block,
        then poll every active receiver. True if anything moved."""
        moved = False
        for node in self.ranks:
            if self._rank_active(node) and self._step_rank(node):
                moved = True
        for node in self.ranks:
            if not self._rank_active(node):
                continue
            node.receiver.progress()
            if self._check_completions(node):
                moved = True
            self._after_rank_progress(node)
        if self.sampler.enabled:
            self.sampler.poll(self._sample_tick())
        return moved

    def _after_rank_progress(self, node: _Rank) -> None:
        """Per-rank-poll hook (resilience pumps heartbeats here so the
        detector's clock granularity is one rank poll, not one global
        round)."""

    def _settle(self, max_rounds: int) -> None:
        """Let the network settle (stray ACKs, duplicate suppression)."""
        settle = 0
        while self._in_flight() > 0 and settle < max_rounds:
            settle += 1
            for node in self.ranks:
                if self._rank_active(node):
                    node.receiver.progress()

    def run(self, *, max_stall_rounds: int = 10_000) -> ClusterReport:
        """Execute the trace to completion and report.

        ``max_stall_rounds`` bounds consecutive no-progress rounds
        (blocked ranks with traffic still in flight are *not* stalled:
        retransmission timers need polls to count down).
        """
        idle = 0
        while not self._trace_done():
            if self._progress_round():
                idle = 0
                continue
            if self._in_flight() == 0 and self._pending_reads() == 0:
                raise ClusterStall(
                    "no progress, nothing in flight; blocked ranks: "
                    f"{self._stuck_ops()}"
                )
            idle += 1
            if idle > max_stall_rounds:
                raise ClusterStall(
                    f"no progress in {max_stall_rounds} rounds with "
                    f"{self._in_flight()} frames in flight"
                )
        self._settle(max_stall_rounds)
        return self.report()

    # -- reporting -------------------------------------------------------

    def conservation(self) -> dict:
        """Per-message wire-phase vs per-hop telescoping audit.

        For every completed recorded message: the wire phase must open
        at some fabric injection and close at that copy's arrival, with
        the hop durations summing exactly to the phase length. Clean
        runs satisfy ``exact == checked``; faulty runs may retransmit,
        where only the delivered copy telescopes (``recovered``).
        """
        checked = exact = recovered = 0
        for rec in self.recorder.records.values() if self.recorder.enabled else ():
            wire_ts = staged_ts = None
            for ts, phase, _ in rec.transitions:
                if phase == "wire" and wire_ts is None:
                    wire_ts = ts
                elif phase == "staged" and staged_ts is None:
                    staged_ts = ts
            if wire_ts is None or staged_ts is None:
                continue
            checked += 1
            matched = False
            for ts, name, detail in rec.events:
                if name != "fabric_hops" or not detail or detail["dropped"]:
                    continue
                hop_sum = sum(t_out - t_in for _, t_in, t_out in detail["hops"])
                if (
                    detail["arrival"] == staged_ts
                    and hop_sum == detail["arrival"] - detail["inject"]
                ):
                    if detail["inject"] == wire_ts:
                        exact += 1
                    else:
                        recovered += 1  # a retransmitted copy delivered
                    matched = True
                    break
            if not matched:
                # Conservation failure: no injection explains the
                # observed wire phase.
                pass
        return {"checked": checked, "exact": exact, "recovered": recovered}

    def report(self) -> ClusterReport:
        totals: dict[str, float] = {}
        completed_records = 0
        if self.recorder.enabled:
            for rec in self.recorder.records.values():
                if not rec.completed:
                    continue
                completed_records += 1
                for phase, duration in rec.phase_durations().items():
                    totals[phase] = totals.get(phase, 0.0) + duration
        outstanding = sum(len(node.outstanding) for node in self.ranks)
        retransmits = sum(wire.stats.retransmits for wire in self.wires)
        rnr = sum(wire.stats.rnr_naks for wire in self.wires)
        params = {
            "app": self.trace.name,
            "ranks": self.nprocs,
            "topology": self.topology.name,
            "placement": self.placement.scheme,
            "eager_threshold": self.eager_threshold,
            "plan": self.plan.to_params() if self.plan is not None else None,
        }
        results = {
            "sends": self.sends,
            "deliveries": self.deliveries,
            "undelivered": outstanding,
            "violations": self.violations,
            "skipped_ops": sum(node.skipped_ops for node in self.ranks),
            "elapsed_ticks": self.fabric.clock,
            "fabric": {
                "injected": self.fabric.injected,
                "delivered": self.fabric.delivered,
                "dropped": self.fabric.dropped,
                "max_utilization": self.fabric.max_utilization(),
            },
            "transport": {"retransmits": retransmits, "rnr_naks": rnr},
            "links": self.fabric.link_report(),
            "phase_totals": totals,
            "completed_records": completed_records,
            "conservation": self.conservation(),
        }
        return ClusterReport(params=params, results=results)


def run_cluster(
    app: str,
    ranks: int,
    *,
    topology: str = "torus",
    placement: str = "block",
    rounds: int = 4,
    size: int = 512,
    plan: LinkFaultPlan | None = None,
    eager_threshold: int = DEFAULT_EAGER_THRESHOLD,
    record: bool = True,
) -> ClusterReport:
    """Generate a workload and run it: the one-call frontdoor."""
    trace = cluster_workload(app, ranks, rounds=rounds, size=size)
    sim = ClusterSim(
        trace,
        topology=topology,
        placement=placement,
        plan=plan,
        eager_threshold=eager_threshold,
        record=record,
    )
    return sim.run()

"""FabricWire: the Wire contract over a shared fabric.

A :class:`FabricWire` is a drop-in for :class:`repro.rdma.wire.Wire`
— same ``transmit`` / ``receive`` / ``drain`` / ``endpoint`` /
``peer_of`` surface — whose packets actually cross a
:class:`repro.net.fabric.Fabric`: they are routed hop by hop, wait in
link queues behind other flows' traffic, and can be dropped by link
faults. Wrap one in a :class:`repro.rdma.reliability.ReliableWire`
and the whole RDMA stack (go-back-N recovery, RNR, credits, queue
pairs) runs unchanged over a congested, lossy, *shared* network.

Ledger coupling: the reliability layer stamps a message's ``wire``
transition at transmit; when the message-bearing packet pops out of
the fabric here, the ``staged`` transition is stamped *at the exact
arrival tick* (``FlightRecorder.stamp_at``), so the ledger's wire
phase equals the fabric transit time — which the fabric's telescoping
hop schedule splits exactly into per-hop components (annotated via
``note("fabric_hops")`` at inject). Conservation is structural, not
reconciled after the fact.

Per-pair FIFO survives end to end: each direction of a FabricWire is
one (src-node, dst-node) flow, flows follow static routes, links are
FIFO — so delivery order here matches transmit order and the C2
completion-order precondition holds exactly as it does on the perfect
in-memory wire.
"""

from __future__ import annotations

from repro.net.fabric import Fabric, Transfer
from repro.obs.ledger import NULL_RECORDER, FlightRecorder
from repro.rdma.wire import Packet

__all__ = ["FabricWire", "fabric_mid_of"]


def fabric_mid_of(packet: Packet) -> int:
    """The ledger mid a packet carries, unwrapping RC framing.

    ``rc_data`` frames hold ``(psn, inner)``; message-bearing inner
    packets (``send`` / ``rts``) lead with a header that has a mid.
    Control traffic (ACK/NAK/read protocol) has no mid: returns -1.
    """
    if packet.opcode == "rc_data":
        try:
            return fabric_mid_of(packet.payload[1])
        except (TypeError, IndexError):
            return -1
    if packet.opcode in ("send", "rts"):
        try:
            return int(getattr(packet.payload[0], "mid", -1))
        except (TypeError, IndexError):
            return -1
    return -1


class _Port:
    """One side of a FabricWire; ``pending`` counts in-flight + arrived
    (everything injected toward this port and not yet consumed)."""

    __slots__ = ("name", "_fabric")

    def __init__(self, name: str, fabric: Fabric) -> None:
        self.name = name
        self._fabric = fabric

    def pending(self) -> int:
        return self._fabric.pending(self.name)


class FabricWire:
    """Two named endpoints on a shared :class:`Fabric`.

    ``a`` / ``b`` are the endpoint names the RDMA stack addresses
    (globally unique per fabric — they double as fabric port ids);
    ``node_a`` / ``node_b`` are the topology hosts they live on.
    Several FabricWires share one fabric, which is the whole point:
    their flows contend on common links.
    """

    def __init__(
        self,
        fabric: Fabric,
        a: str,
        b: str,
        *,
        node_a: str,
        node_b: str,
        recorder: FlightRecorder = NULL_RECORDER,
        tick_on_receive: bool = True,
    ) -> None:
        if a == b:
            raise ValueError(f"wire endpoints must be distinct, both named {a!r}")
        self.fabric = fabric
        self._nodes = {a: node_a, b: node_b}
        self._ports = {a: _Port(a, fabric), b: _Port(b, fabric)}
        self._peers = {a: self._ports[b], b: self._ports[a]}
        fabric.attach(a)
        fabric.attach(b)
        self.delivered = 0
        self.dropped = 0
        self._recorder = recorder
        #: Each receive poll advances the shared fabric clock one tick
        #: (the polling loop *is* simulated time). Drivers that step
        #: the clock themselves turn this off.
        self._tick_on_receive = tick_on_receive

    @property
    def names(self) -> tuple[str, str]:
        names = tuple(self._ports)
        return names  # type: ignore[return-value]

    @property
    def now(self) -> float:
        return self.fabric.now()

    def endpoint(self, name: str) -> _Port:
        return self._ports[name]

    def peer_of(self, name: str) -> _Port:
        try:
            return self._peers[name]
        except KeyError:
            raise KeyError(f"unknown endpoint {name!r}") from None

    def transmit(self, src: str, packet: Packet) -> None:
        """Route ``packet`` across the fabric toward ``src``'s peer."""
        peer = self.peer_of(src)
        transfer = self.fabric.inject(
            self._nodes[src], self._nodes[peer.name], peer.name, packet, packet.size
        )
        if transfer.dropped:
            self.dropped += 1
        if self._recorder.enabled:
            self._note_hops(packet, transfer)

    def receive(self, dst: str) -> Packet | None:
        """Pop the next *arrived* packet at ``dst`` (None when the
        queue is empty or the head is still in transit)."""
        if self._tick_on_receive:
            self.fabric.tick()
        got = self.fabric.deliver(dst)
        if got is None:
            return None
        packet, transfer = got
        self.delivered += 1
        if self._recorder.enabled:
            self._stamp_arrival(packet, transfer)
        return packet

    def drain(self, dst: str) -> list[Packet]:
        """Pop everything already arrived at ``dst``."""
        if self._tick_on_receive:
            self.fabric.tick()
        out: list[Packet] = []
        while (got := self.fabric.deliver(dst)) is not None:
            packet, transfer = got
            self.delivered += 1
            if self._recorder.enabled:
                self._stamp_arrival(packet, transfer)
            out.append(packet)
        return out

    def in_flight(self) -> int:
        """Packets injected on this wire and not yet consumed."""
        return sum(port.pending() for port in self._ports.values())

    # -- ledger coupling -------------------------------------------------

    def _note_hops(self, packet: Packet, transfer: Transfer) -> None:
        mid = fabric_mid_of(packet)
        if mid < 0:
            return
        self._recorder.note(
            mid,
            "fabric_hops",
            src=transfer.src,
            dst=transfer.dst,
            inject=transfer.inject,
            arrival=transfer.arrival,
            dropped=transfer.dropped,
            drop_link=transfer.drop_link,
            hops=[[h.link, h.t_in, h.t_out] for h in transfer.hops],
        )

    def _stamp_arrival(self, packet: Packet, transfer: Transfer) -> None:
        # Close the wire phase at the true arrival tick (the pop may
        # happen later). The phase guard makes duplicates and stale
        # retransmit copies harmless: only the first arrival of a
        # message still in its wire phase stamps.
        mid = fabric_mid_of(packet)
        if mid >= 0 and self._recorder.phase_of(mid) == "wire":
            self._recorder.stamp_at(
                mid,
                "staged",
                transfer.arrival,
                where="fabric",
                hops=len(transfer.hops),
            )

"""``repro-obs``: analyze a flight-recorder ledger dump.

Subcommands::

    repro-obs attribution LEDGER.json [--scenario NAME]
    repro-obs critical-path LEDGER.json [--scenario NAME] [--top K]
    repro-obs flows LEDGER.json --out TRACE.json

``attribution`` renders the conserved per-phase latency waterfall
(p50/p95/p99 per phase, per scenario) and exits nonzero if any
message's phase durations fail to sum to its end-to-end latency.

``critical-path`` reports the top-k causal chains dominating each
scenario's makespan (the first chain spans it exactly) and exits
nonzero when no chain can be built (empty ledger).

``flows`` exports a Perfetto-loadable Chrome trace with per-message
flow events linking spans across the host/wire/nic/engine tracks.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.obs.attribution import attribute, render_attribution
from repro.obs.critpath import critical_path, render_chains
from repro.obs.flows import write_flow_trace
from repro.obs.ledger import LedgerDump

__all__ = ["main"]


def _load(path: Path) -> LedgerDump:
    return LedgerDump.from_json(path.read_text())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-obs", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_attr = sub.add_parser("attribution", help="conserved phase waterfall")
    p_attr.add_argument("ledger", type=Path)
    p_attr.add_argument("--scenario", default=None)

    p_crit = sub.add_parser("critical-path", help="top-k causal chains")
    p_crit.add_argument("ledger", type=Path)
    p_crit.add_argument("--scenario", default=None)
    p_crit.add_argument("--top", type=int, default=3)

    p_flow = sub.add_parser("flows", help="Perfetto flow-event export")
    p_flow.add_argument("ledger", type=Path)
    p_flow.add_argument("--out", type=Path, required=True)

    args = parser.parse_args(argv)
    try:
        dump = _load(args.ledger)
    except (OSError, ValueError) as exc:
        print(f"{args.ledger}: unreadable ledger ({exc})", file=sys.stderr)
        return 2

    if args.command == "attribution":
        reports = attribute(dump, scenario=args.scenario)
        if not reports:
            print("no matching scenarios in ledger", file=sys.stderr)
            return 1
        try:
            print(render_attribution(reports))
        except BrokenPipeError:  # e.g. piped into `head`
            sys.stderr.close()
        return 1 if any(rep.violations for rep in reports) else 0

    if args.command == "critical-path":
        chains = critical_path(dump, scenario=args.scenario, k=args.top)
        if not chains:
            print("no chains (empty ledger?)", file=sys.stderr)
            return 1
        try:
            print(render_chains(chains))
        except BrokenPipeError:  # e.g. piped into `head`
            sys.stderr.close()
        return 0

    if args.command == "flows":
        count = write_flow_trace(dump, str(args.out))
        print(f"wrote {args.out} ({count} events)")
        return 0

    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    raise SystemExit(main())

"""``repro-obs``: analyze observability artifacts.

Subcommands::

    repro-obs attribution LEDGER.json [--scenario NAME]
    repro-obs critical-path LEDGER.json [--scenario NAME] [--top K]
    repro-obs flows LEDGER.json --out TRACE.json
    repro-obs timeline TIMELINE.json [--match STR] [--perfetto OUT.json]
    repro-obs health TIMELINE.json [--json-out REPORT.json]

``attribution`` renders the conserved per-phase latency waterfall
(p50/p95/p99 per phase, per scenario) and exits nonzero if any
message's phase durations fail to sum to its end-to-end latency.

``critical-path`` reports the top-k causal chains dominating each
scenario's makespan (the first chain spans it exactly).

``flows`` exports a Perfetto-loadable Chrome trace with per-message
flow events linking spans across the host/wire/nic/engine tracks.

``timeline`` renders a sampled timeline dump
(:class:`repro.obs.timeline.Timeline` JSON) as terminal sparklines;
``--perfetto`` additionally exports the series as Perfetto counter
tracks.

``health`` replays the default alarm rules
(:func:`repro.obs.health.default_rules`) over a timeline dump and
prints the resulting :class:`repro.obs.health.HealthReport`.

Exit codes (uniform across subcommands)::

    0  success, nothing violated
    1  a violation: conservation failure, or health alarms fired
    2  usage error or unreadable/empty input
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.obs.attribution import attribute, render_attribution
from repro.obs.critpath import critical_path, render_chains
from repro.obs.flows import write_flow_trace
from repro.obs.ledger import LedgerDump
from repro.obs.timeline import Timeline, timeline_to_chrome

__all__ = ["main"]

_EXIT_CODES = """\
exit codes: 0 success / 1 violation (conservation failure, fired
alarms) / 2 usage error or unreadable input\
"""


def _load_ledger(path: Path) -> LedgerDump:
    return LedgerDump.from_json(path.read_text())


def _load_timeline(path: Path) -> Timeline:
    return Timeline.from_json(path.read_text())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-obs", description=__doc__, epilog=_EXIT_CODES
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_attr = sub.add_parser(
        "attribution", help="conserved phase waterfall", epilog=_EXIT_CODES
    )
    p_attr.add_argument("ledger", type=Path)
    p_attr.add_argument("--scenario", default=None)

    p_crit = sub.add_parser(
        "critical-path", help="top-k causal chains", epilog=_EXIT_CODES
    )
    p_crit.add_argument("ledger", type=Path)
    p_crit.add_argument("--scenario", default=None)
    p_crit.add_argument("--top", type=int, default=3)

    p_flow = sub.add_parser(
        "flows", help="Perfetto flow-event export", epilog=_EXIT_CODES
    )
    p_flow.add_argument("ledger", type=Path)
    p_flow.add_argument("--out", type=Path, required=True)

    p_tl = sub.add_parser(
        "timeline", help="render a sampled timeline", epilog=_EXIT_CODES
    )
    p_tl.add_argument("timeline", type=Path)
    p_tl.add_argument("--match", default=None, help="only series containing this")
    p_tl.add_argument("--width", type=int, default=60, help="sparkline width")
    p_tl.add_argument(
        "--perfetto", type=Path, default=None, metavar="OUT.json",
        help="also export Perfetto counter tracks",
    )

    p_health = sub.add_parser(
        "health", help="run the alarm rules over a timeline", epilog=_EXIT_CODES
    )
    p_health.add_argument("timeline", type=Path)
    p_health.add_argument(
        "--json-out", type=Path, default=None, help="write the HealthReport as JSON"
    )

    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 0 if exc.code == 0 else 2

    if args.command in ("attribution", "critical-path", "flows"):
        try:
            dump = _load_ledger(args.ledger)
        except (OSError, ValueError) as exc:
            print(f"{args.ledger}: unreadable ledger ({exc})", file=sys.stderr)
            return 2

    if args.command == "attribution":
        reports = attribute(dump, scenario=args.scenario)
        if not reports:
            # Nothing to analyze is an input problem, not a violation.
            print("no matching scenarios in ledger", file=sys.stderr)
            return 2
        try:
            print(render_attribution(reports))
        except BrokenPipeError:  # e.g. piped into `head`
            sys.stderr.close()
        return 1 if any(rep.violations for rep in reports) else 0

    if args.command == "critical-path":
        chains = critical_path(dump, scenario=args.scenario, k=args.top)
        if not chains:
            print("no chains (empty ledger?)", file=sys.stderr)
            return 2
        try:
            print(render_chains(chains))
        except BrokenPipeError:  # e.g. piped into `head`
            sys.stderr.close()
        return 0

    if args.command == "flows":
        count = write_flow_trace(dump, str(args.out))
        print(f"wrote {args.out} ({count} events)")
        return 0

    try:
        timeline = _load_timeline(args.timeline)
    except (OSError, ValueError) as exc:
        print(f"{args.timeline}: unreadable timeline ({exc})", file=sys.stderr)
        return 2

    if args.command == "timeline":
        if not timeline.series:
            print("no series in timeline", file=sys.stderr)
            return 2
        try:
            print(timeline.render(width=args.width, match=args.match))
        except BrokenPipeError:
            sys.stderr.close()
        if args.perfetto is not None:
            tracer = timeline_to_chrome(timeline)
            tracer.write(str(args.perfetto))
            print(f"wrote {args.perfetto} ({len(tracer)} events)")
        return 0

    if args.command == "health":
        from repro.obs.health import HealthMonitor

        monitor = HealthMonitor().scan(timeline)
        report = monitor.report(ticks=timeline.ticks)
        print(report.render())
        if args.json_out is not None:
            args.json_out.write_text(report.to_json())
        return 0 if report.healthy else 1

    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    raise SystemExit(main())

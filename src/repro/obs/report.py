"""Render a metrics snapshot as a terminal report.

Usage::

    PYTHONPATH=src python -m repro.obs.report metrics.json
    PYTHONPATH=src python -m repro.obs.report metrics.json --match engine
    PYTHONPATH=src python -m repro.obs.report metrics.json --delta base.json

Counters and gauges group by dotted prefix and render as labelled
horizontal bars (:func:`repro.util.asciiplot.hbar_chart`); histograms
are detected by their ``_bucket{le=...}`` samples and render one bar
per bucket, which is the closest a terminal gets to Figure-style
distribution plots.

``--delta BASELINE.json`` renders :meth:`MetricsSnapshot.delta`
instead — what changed between the baseline snapshot and this one
(zero-change samples are dropped so the report shows only movement).
"""

from __future__ import annotations

import argparse
import re
import sys
from collections import defaultdict
from pathlib import Path

from repro.obs.registry import MetricsSnapshot
from repro.util.asciiplot import hbar_chart

__all__ = ["render_metrics", "main"]

_BUCKET_RE = re.compile(r"^(?P<base>.+)_bucket\{le=(?P<le>[^}]+)\}$")

#: Family keys that are summary samples, not buckets.
_NON_BUCKET = ("count", "sum", "p50", "p95", "p99")


def _split(snapshot: MetricsSnapshot):
    """Separate histogram families from scalar samples."""
    histograms: dict[str, dict[str, float]] = defaultdict(dict)
    scalars: dict[str, float] = {}
    hist_bases: set[str] = set()
    for name in snapshot.values:
        match = _BUCKET_RE.match(name)
        if match is not None:
            hist_bases.add(match.group("base"))
    suffixes = tuple(f"_{k}" for k in _NON_BUCKET)
    for name, value in snapshot.values.items():
        match = _BUCKET_RE.match(name)
        if match is not None:
            histograms[match.group("base")][match.group("le")] = value
            continue
        base = name.rsplit("_", 1)[0]
        if base in hist_bases and name.endswith(suffixes):
            histograms[base][name.rsplit("_", 1)[1]] = value
            continue
        scalars[name] = value
    return scalars, histograms


def _bound(le: str) -> float:
    return float("inf") if le == "+inf" else float(le)


def _de_cumulate(buckets: dict[str, float]) -> dict[str, float]:
    """Bucket counts are per-bucket already; order by bound for display."""
    ordered = sorted((k for k in buckets if k not in _NON_BUCKET), key=_bound)
    return {f"<= {le}": buckets[le] for le in ordered}


def _quantile(family: dict[str, float], q: float) -> float:
    """Quantile recomputed from the family's *bucket* samples.

    Buckets are additive under :meth:`MetricsSnapshot.merge`, so this
    stays correct for merged snapshots — unlike the registry-emitted
    ``_p50/_p95/_p99`` convenience samples, which are per-snapshot
    estimates and sum meaninglessly. Matches
    :meth:`repro.obs.registry.Histogram.quantile` on a lone snapshot.
    """
    ordered = sorted((k for k in family if k not in _NON_BUCKET), key=_bound)
    count = sum(family[k] for k in ordered)
    if not count:
        return 0.0
    rank = q * count
    cum = 0.0
    lo = 0.0
    last_finite = 0.0
    for le in ordered:
        n = family[le]
        hi = _bound(le)
        if hi != float("inf"):
            last_finite = hi
        if n and cum + n >= rank:
            return last_finite if hi == float("inf") else (
                lo + (hi - lo) * (rank - cum) / n
            )
        cum += n
        if hi != float("inf"):
            lo = hi
    return last_finite


def render_metrics(
    snapshot: MetricsSnapshot, *, width: int = 40, match: str | None = None
) -> str:
    """The full terminal report for one snapshot."""
    scalars, histograms = _split(snapshot)
    if match:
        scalars = {k: v for k, v in scalars.items() if match in k}
        histograms = {k: v for k, v in histograms.items() if match in k}
    groups: dict[str, dict[str, float]] = defaultdict(dict)
    for name, value in scalars.items():
        prefix, _, rest = name.partition(".")
        if not rest:
            prefix, rest = "(top level)", name
        groups[prefix][rest] = value
    sections: list[str] = []
    for prefix in sorted(groups):
        body = hbar_chart(groups[prefix], width=width)
        sections.append(f"== {prefix} ==\n{body}")
    for base in sorted(histograms):
        family = histograms[base]
        count = family.get("count", 0.0)
        total = family.get("sum", 0.0)
        mean = total / count if count else 0.0
        p50 = _quantile(family, 0.50)
        p95 = _quantile(family, 0.95)
        p99 = _quantile(family, 0.99)
        bars = hbar_chart(_de_cumulate(family), width=width)
        sections.append(
            f"== {base} (histogram: n={count:g}, mean={mean:g}, "
            f"p50={p50:g}, p95={p95:g}, p99={p99:g}) ==\n{bars}"
        )
    return "\n\n".join(sections) if sections else "(no metrics)"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", type=Path, help="metrics JSON written by --metrics-out")
    parser.add_argument("--width", type=int, default=40, help="bar width in cells")
    parser.add_argument("--match", default=None, help="only metrics containing this substring")
    parser.add_argument(
        "--delta",
        type=Path,
        default=None,
        metavar="BASELINE.json",
        help="render the change since this earlier snapshot instead",
    )
    args = parser.parse_args(argv)
    try:
        snapshot = MetricsSnapshot.from_json(args.path.read_text())
    except (OSError, ValueError) as exc:
        print(f"error: cannot read metrics from {args.path}: {exc}", file=sys.stderr)
        return 2
    if args.delta is not None:
        try:
            baseline = MetricsSnapshot.from_json(args.delta.read_text())
        except (OSError, ValueError) as exc:
            print(
                f"error: cannot read metrics from {args.delta}: {exc}",
                file=sys.stderr,
            )
            return 2
        changed = snapshot.delta(baseline)
        snapshot = MetricsSnapshot(
            {k: v for k, v in changed.values.items() if v != 0.0}
        )
        if not snapshot.values:
            print("(no change)")
            return 0
    try:
        print(render_metrics(snapshot, width=args.width, match=args.match))
    except BrokenPipeError:  # e.g. piped into `head`
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Glue between the observability layer and the existing subsystems.

Nothing in here is required for correctness: every adapter attaches to
hooks the subsystems already expose (the engine's ``observer``
callback, carried stats objects, reliability counters) and turns them
into registry samples and simulated-time spans. Attaching with a
:data:`repro.obs.trace.NULL_TRACER` is free — the adapters install
nothing when the tracer is disabled.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import SpanTracer

__all__ = [
    "EngineTraceObserver",
    "attach_engine_observer",
    "DegradedWindowWatcher",
    "PressureWindowWatcher",
    "register_stack_metrics",
    "register_pressure_metrics",
]

#: A simulated clock: current time in microseconds of its domain.
SimClock = Callable[[], float]


class EngineTraceObserver:
    """Adapts the engine's observer callback into tracer events.

    The engine has no clock of its own — blocks are instantaneous in
    the matcher and only acquire duration in a cost model — so the
    caller supplies the clock of the surrounding simulation (wire
    ticks in the chaos stack, DPA cycles under the machine model).
    Block spans use the executor's critical path (max thread steps) as
    their duration, one step = one microsecond of the block's clock.
    """

    def __init__(
        self, tracer: SpanTracer, clock: SimClock, *, process: str = "engine"
    ) -> None:
        self.tracer = tracer
        self.clock = clock
        self._blocks = tracer.track(process, "blocks")
        self._matches = tracer.track(process, "resolutions")

    def __call__(self, event: str, payload: dict) -> None:
        now = self.clock()
        if event == "block_end":
            span = float(payload.get("steps_span", payload.get("messages", 1)))
            self.tracer.complete(
                self._blocks, "block", now - span, span, args=payload
            )
            if payload.get("slow", 0):
                self.tracer.instant(
                    self._blocks, "slow_path", now, args={"count": payload["slow"]}
                )
        elif event == "consume":
            self.tracer.instant(
                self._matches, f"match:{payload.get('path', '?')}", now, args=payload
            )
        elif event == "unexpected":
            self.tracer.instant(self._matches, "unexpected", now, args=payload)


def attach_engine_observer(
    engine, tracer: SpanTracer, clock: SimClock, *, process: str = "engine"
) -> EngineTraceObserver | None:
    """Install a tracing observer on an ``OptimisticMatcher``.

    Returns the observer, or ``None`` (and installs nothing — the
    zero-overhead path) when the tracer is disabled.
    """
    if not tracer.enabled:
        return None
    observer = EngineTraceObserver(tracer, clock, process=process)
    engine.set_observer(observer)
    return observer


class DegradedWindowWatcher:
    """Turns spill/recovery *counters* into spill->recovery *windows*.

    Engine generations are invisible from outside a matcher except
    through the carried stats object (``fallback_spills`` /
    ``fallback_recoveries`` only ever grow). Polling those counters —
    after each pump round, say — is enough to reconstruct the degraded
    windows as B/E spans without touching the matcher.
    """

    def __init__(
        self,
        tracer: SpanTracer,
        stats,
        clock: SimClock,
        *,
        process: str = "matcher",
    ) -> None:
        self.tracer = tracer
        self.stats = stats
        self.clock = clock
        self._track = tracer.track(process, "degraded")
        self._spills_seen = int(getattr(stats, "fallback_spills", 0))
        self._recoveries_seen = int(getattr(stats, "fallback_recoveries", 0))
        self._open = False

    def poll(self) -> None:
        if not self.tracer.enabled:
            return
        now = self.clock()
        spills = int(getattr(self.stats, "fallback_spills", 0))
        recoveries = int(getattr(self.stats, "fallback_recoveries", 0))
        # Replay each boundary crossed since the last poll. Multiple
        # whole windows inside one poll interval degenerate to
        # zero-length spans at ``now`` — still countable in the trace.
        while self._spills_seen < spills or self._recoveries_seen < recoveries:
            if not self._open and self._spills_seen < spills:
                self._spills_seen += 1
                self.tracer.begin(
                    self._track,
                    "degraded",
                    now,
                    args={"spill": self._spills_seen},
                )
                self.tracer.instant(self._track, "spill", now)
                self._open = True
            elif self._open and self._recoveries_seen < recoveries:
                self._recoveries_seen += 1
                self.tracer.instant(self._track, "recovery", now)
                self.tracer.end(self._track, now)
                self._open = False
            else:  # pragma: no cover - counter drift (recovery w/o spill)
                self._recoveries_seen = recoveries
                break

    def close(self) -> None:
        """End-of-run: close a window that never recovered."""
        if self._open:
            self.tracer.end(self._track, self.clock())
            self._open = False


class PressureWindowWatcher:
    """Turns the meter's hysteresis *counters* into pressured *windows*.

    The :class:`repro.pressure.budget.PressureMeter` only counts its
    NORMAL->PRESSURE transitions (``pressure_entries`` /
    ``pressure_exits``); polling those at round boundaries — exactly
    like :class:`DegradedWindowWatcher` does for spill/recovery —
    reconstructs each pressured episode as a B/E span, with takeovers
    and re-offloads marked as instants inside it.
    """

    def __init__(
        self,
        tracer: SpanTracer,
        pressure_stats,
        clock: SimClock,
        *,
        process: str = "pressure",
    ) -> None:
        self.tracer = tracer
        self.stats = pressure_stats
        self.clock = clock
        self._track = tracer.track(process, "pressured")
        self._entries_seen = int(getattr(pressure_stats, "pressure_entries", 0))
        self._exits_seen = int(getattr(pressure_stats, "pressure_exits", 0))
        self._takeovers_seen = int(getattr(pressure_stats, "takeovers", 0))
        self._reoffloads_seen = int(getattr(pressure_stats, "reoffloads", 0))
        self._open = False

    def poll(self) -> None:
        if not self.tracer.enabled:
            return
        now = self.clock()
        entries = int(getattr(self.stats, "pressure_entries", 0))
        exits = int(getattr(self.stats, "pressure_exits", 0))
        while self._entries_seen < entries or self._exits_seen < exits:
            if not self._open and self._entries_seen < entries:
                self._entries_seen += 1
                self.tracer.begin(
                    self._track, "pressured", now, args={"entry": self._entries_seen}
                )
                self._open = True
            elif self._open and self._exits_seen < exits:
                self._exits_seen += 1
                self.tracer.end(self._track, now)
                self._open = False
            else:  # pragma: no cover - counter drift (exit w/o entry)
                self._exits_seen = exits
                break
        takeovers = int(getattr(self.stats, "takeovers", 0))
        while self._takeovers_seen < takeovers:
            self._takeovers_seen += 1
            self.tracer.instant(
                self._track, "takeover", now, args={"n": self._takeovers_seen}
            )
        reoffloads = int(getattr(self.stats, "reoffloads", 0))
        while self._reoffloads_seen < reoffloads:
            self._reoffloads_seen += 1
            self.tracer.instant(
                self._track, "reoffload", now, args={"n": self._reoffloads_seen}
            )

    def close(self) -> None:
        """End-of-run: close an episode that never depressurized."""
        if self._open:
            self.tracer.end(self._track, self.clock())
            self._open = False


def register_pressure_metrics(
    registry: MetricsRegistry, meter, *, prefix: str = "pressure"
) -> None:
    """Register a :class:`PressureMeter`'s ledger as pull collectors:
    the cumulative stats counters plus the live occupancy gauges
    (charged bytes, per-account split, level, pressured flag) from
    ``meter.snapshot()``."""
    registry.register_stats(f"{prefix}.stats", meter.stats)
    registry.add_collector(f"{prefix}.meter", meter.snapshot)


def register_stack_metrics(
    registry: MetricsRegistry,
    *,
    engine_stats=None,
    wire=None,
    raw_wire=None,
    receiver=None,
    dpa_report=None,
    prefix: str = "",
) -> None:
    """Register every stats carrier of one receive stack as collectors.

    All values are *pulled* at snapshot time from the live objects, so
    counters stay cumulative across engine generations (the stats
    object is carried) and are never clobber-mirrored.
    """
    p = f"{prefix}." if prefix else ""
    if engine_stats is not None:
        registry.register_stats(f"{p}engine", engine_stats)
    if wire is not None and getattr(wire, "stats", None) is not None:
        registry.register_stats(f"{p}rc", wire.stats)
    if raw_wire is not None and getattr(raw_wire, "stats", None) is not None:
        registry.register_stats(f"{p}faults", raw_wire.stats)
    if receiver is not None:
        registry.add_collector(
            f"{p}receiver",
            lambda: {
                "completed": float(len(receiver.completed)),
                "host_staged_deliveries": float(receiver.host_staged_deliveries),
                "pending_reads": float(receiver.pending_reads),
            },
        )
    if dpa_report is not None:
        registry.register_stats(f"{p}dpa", dpa_report)

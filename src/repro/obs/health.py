"""Streaming health rules over sampled time series.

The :mod:`repro.obs.timeline` sampler turns the stack's gauges into
``(tick, value)`` streams; this module watches those streams *as they
are sampled* and turns anomalies into typed :class:`HealthEvent`\\ s —
the alarm layer a production offload NIC is operated through, rebuilt
over the simulation's own clocks.

Rule vocabulary (all streaming, O(1) state per watched series):

* :class:`ThresholdRule` — level crossing with hysteresis: fires when
  the value reaches ``high``, re-arms only after it falls back to
  ``clear`` (so a value oscillating across one line raises one alarm,
  not one per sample).
* :class:`RateRule` — change detection on cumulative counters: fires
  when the value rises (or, with ``direction="fall"``, falls) by at
  least ``min_delta`` between consecutive samples. Edge-triggered per
  episode: a counter that keeps climbing holds one alarm open rather
  than re-firing every tick.
* :class:`DriftRule` — EWMA mean/deviation z-score drift detector:
  tracks an exponentially weighted mean and squared deviation, fires
  when a sample lands more than ``z`` deviations *and* ``min_delta``
  above the learned mean after ``warmup`` samples. Outliers are not
  folded into the EWMA while the rule is violated, so an excursion
  cannot teach the detector that broken is normal.

Alarm guarantees (proved by ``tests/obs/test_health.py`` and the
chaos lanes in :mod:`repro.chaos.health`): the default taxonomy
raises **zero** events on clean seeded runs, and every chaos mutant
lane raises its matching alarm within one sampling interval of the
fault's first observable effect — the same zero-false-alarm /
bounded-detection contract the heartbeat detector made for rank
failures, extended to the whole telemetry surface.

A finished run exports a :class:`HealthReport` (schema
``repro.obs.health/v1``) with the fired events, the rules that stayed
quiet, and per-rule evaluation counts.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from enum import IntEnum
from fnmatch import fnmatchcase
from typing import Any, Mapping

__all__ = [
    "Severity",
    "HealthEvent",
    "HealthRule",
    "ThresholdRule",
    "RateRule",
    "DriftRule",
    "HealthMonitor",
    "HealthReport",
    "default_rules",
    "ALARM_TAXONOMY",
]

HEALTH_SCHEMA = "repro.obs.health/v1"


class Severity(IntEnum):
    """Alarm severities, ordered so ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    CRITICAL = 2


@dataclass(frozen=True)
class HealthEvent:
    """One fired alarm: which rule, on which series, when, and why."""

    alarm: str  # taxonomy name ("spill-storm", "overload", ...)
    rule: str  # rule type ("threshold" / "rate" / "drift")
    metric: str  # concrete series name that violated
    tick: float  # simulated tick of the violating sample
    observed: float
    expected: float  # threshold / previous value / learned mean
    severity: Severity
    window: float = 0.0  # ticks since the previous sample of the series
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "alarm": self.alarm,
            "rule": self.rule,
            "metric": self.metric,
            "tick": self.tick,
            "observed": self.observed,
            "expected": self.expected,
            "severity": self.severity.name,
            "window": self.window,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "HealthEvent":
        return cls(
            alarm=str(payload["alarm"]),
            rule=str(payload["rule"]),
            metric=str(payload["metric"]),
            tick=float(payload["tick"]),
            observed=float(payload["observed"]),
            expected=float(payload["expected"]),
            severity=Severity[str(payload.get("severity", "WARNING"))],
            window=float(payload.get("window", 0.0)),
            detail=str(payload.get("detail", "")),
        )

    def describe(self) -> str:
        return (
            f"[{self.severity.name}] {self.alarm}: {self.metric}={self.observed:g} "
            f"(expected {self.expected:g}) at tick {self.tick:g} ({self.rule})"
        )


class HealthRule:
    """Base rule: matches series by fnmatch pattern, keeps one state
    object per concrete series, and turns samples into events."""

    kind = "rule"

    def __init__(
        self,
        alarm: str,
        pattern: str,
        *,
        severity: Severity = Severity.WARNING,
    ) -> None:
        self.alarm = alarm
        self.pattern = pattern
        self.severity = severity
        #: Samples evaluated (clean-run proof: evaluated > 0, fired == 0).
        self.evaluated = 0
        self._state: dict[str, dict[str, float]] = {}

    def matches(self, metric: str) -> bool:
        return fnmatchcase(metric, self.pattern)

    def observe(self, metric: str, tick: float, value: float) -> HealthEvent | None:
        if not self.matches(metric):
            return None
        self.evaluated += 1
        state = self._state.get(metric)
        if state is None:
            state = self._initial_state()
            self._state[metric] = state
        window = tick - state["last_tick"] if state["seen"] else 0.0
        event = self._step(metric, tick, value, window, state)
        state["last_tick"] = tick
        state["seen"] = 1.0
        return event

    def _initial_state(self) -> dict[str, float]:
        return {"last_tick": 0.0, "seen": 0.0}

    def _step(
        self,
        metric: str,
        tick: float,
        value: float,
        window: float,
        state: dict[str, float],
    ) -> HealthEvent | None:
        raise NotImplementedError


class ThresholdRule(HealthRule):
    """Fire when the value reaches ``high``; re-arm below ``clear``."""

    kind = "threshold"

    def __init__(
        self,
        alarm: str,
        pattern: str,
        *,
        high: float,
        clear: float | None = None,
        severity: Severity = Severity.WARNING,
    ) -> None:
        super().__init__(alarm, pattern, severity=severity)
        self.high = float(high)
        self.clear = float(clear) if clear is not None else float(high)
        if self.clear > self.high:
            raise ValueError("clear level must not exceed high level")

    def _initial_state(self) -> dict[str, float]:
        return {"last_tick": 0.0, "seen": 0.0, "armed": 1.0}

    def _step(self, metric, tick, value, window, state):
        if state["armed"] and value >= self.high:
            state["armed"] = 0.0
            return HealthEvent(
                alarm=self.alarm,
                rule=self.kind,
                metric=metric,
                tick=tick,
                observed=value,
                expected=self.high,
                severity=self.severity,
                window=window,
                detail=f"level {value:g} crossed high {self.high:g}",
            )
        if not state["armed"] and value < self.clear:
            state["armed"] = 1.0  # hysteresis: re-arm only below clear
        return None


class RateRule(HealthRule):
    """Fire on a per-sample change of at least ``min_delta``.

    Built for cumulative counters that are *exactly flat* on healthy
    runs (spills, budget overruns, fabric drops, live-rank count): the
    first sample establishes the baseline, any subsequent movement in
    the watched direction is by definition a fault signature, so the
    alarm fires at the **first sample where the change is visible** —
    at most one sampling interval after the underlying counter moved.
    Edge-triggered: a counter still climbing at the next sample is the
    same episode and does not re-fire; the episode closes when the
    series goes flat again.
    """

    kind = "rate"

    def __init__(
        self,
        alarm: str,
        pattern: str,
        *,
        min_delta: float = 1.0,
        direction: str = "rise",
        severity: Severity = Severity.WARNING,
    ) -> None:
        super().__init__(alarm, pattern, severity=severity)
        if direction not in ("rise", "fall"):
            raise ValueError(f"direction must be 'rise' or 'fall', got {direction!r}")
        if min_delta <= 0:
            raise ValueError("min_delta must be positive")
        self.min_delta = float(min_delta)
        self.direction = direction

    def _initial_state(self) -> dict[str, float]:
        return {"last_tick": 0.0, "seen": 0.0, "prev": 0.0, "open": 0.0}

    def _step(self, metric, tick, value, window, state):
        if not state["seen"]:
            state["prev"] = value
            return None
        delta = value - state["prev"]
        state["prev"] = value
        moved = delta >= self.min_delta if self.direction == "rise" else (
            -delta >= self.min_delta
        )
        if moved and not state["open"]:
            state["open"] = 1.0
            return HealthEvent(
                alarm=self.alarm,
                rule=self.kind,
                metric=metric,
                tick=tick,
                observed=value,
                expected=value - delta,
                severity=self.severity,
                window=window,
                detail=f"{self.direction} of {abs(delta):g} in {window:g} ticks",
            )
        if not moved:
            state["open"] = 0.0  # flat again: episode over, re-arm
        return None


class DriftRule(HealthRule):
    """EWMA mean/deviation z-score drift detector.

    Learns an exponentially weighted mean and squared deviation over
    the first ``warmup`` samples, then flags samples more than ``z``
    deviations *and* ``min_delta`` absolute above the mean (the
    ``min_delta`` guard keeps a near-constant series from alarming on
    numerically tiny wiggles). While violated, samples are *not*
    folded into the EWMA — an excursion cannot teach the detector
    that broken is normal — and the episode is edge-triggered like
    :class:`RateRule`.
    """

    kind = "drift"

    def __init__(
        self,
        alarm: str,
        pattern: str,
        *,
        alpha: float = 0.2,
        z: float = 4.0,
        warmup: int = 4,
        min_delta: float = 1.0,
        severity: Severity = Severity.WARNING,
    ) -> None:
        super().__init__(alarm, pattern, severity=severity)
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = float(alpha)
        self.z = float(z)
        self.warmup = int(warmup)
        self.min_delta = float(min_delta)

    def _initial_state(self) -> dict[str, float]:
        return {
            "last_tick": 0.0,
            "seen": 0.0,
            "mean": 0.0,
            "var": 0.0,
            "count": 0.0,
            "open": 0.0,
        }

    def _step(self, metric, tick, value, window, state):
        if state["count"] < self.warmup:
            # Learning phase: fold in unconditionally, never fire.
            self._fold(state, value)
            state["count"] += 1
            return None
        deviation = value - state["mean"]
        sigma = math.sqrt(state["var"])
        violating = deviation > self.min_delta and deviation > self.z * max(
            sigma, 1e-12
        )
        if violating:
            event = None
            if not state["open"]:
                state["open"] = 1.0
                event = HealthEvent(
                    alarm=self.alarm,
                    rule=self.kind,
                    metric=metric,
                    tick=tick,
                    observed=value,
                    expected=state["mean"],
                    severity=self.severity,
                    window=window,
                    detail=(
                        f"drift {deviation:g} above EWMA mean {state['mean']:g} "
                        f"(sigma {sigma:g}, z>{self.z:g})"
                    ),
                )
            return event  # violating samples are not folded in
        state["open"] = 0.0
        self._fold(state, value)
        state["count"] += 1
        return None

    def _fold(self, state: dict[str, float], value: float) -> None:
        if state["count"] == 0:
            state["mean"] = value
            state["var"] = 0.0
            return
        deviation = value - state["mean"]
        state["mean"] += self.alpha * deviation
        state["var"] = (1.0 - self.alpha) * (
            state["var"] + self.alpha * deviation * deviation
        )


#: The default alarm taxonomy: name -> (watched series, fault lane it
#: detects, detection bound in sampling intervals). Mirrors TESTING.md's
#: failure taxonomy; every entry is exercised by a chaos health lane.
ALARM_TAXONOMY: dict[str, tuple[str, str, int]] = {
    "spill-storm": ("engine.spills", "spill lane (receive exhaustion)", 1),
    "overload": ("pressure.level", "overload lane (DPA budget)", 1),
    "budget-overrun": ("pressure.overruns", "overload lane (DPA budget)", 1),
    "pressure-onset": ("pressure.entries", "overload lane (DPA budget)", 1),
    "budget-evictions": ("pressure.evictions", "overload lane (DPA budget)", 1),
    "link-flap": ("net.fabric.dropped", "link-flap lane (fabric faults)", 1),
    "rank-down": ("ranks.live", "rank-kill lane (fail-stop)", 1),
    "wire-fault-storm": ("faults.injected", "wire-fault lanes", 1),
}


def default_rules() -> list[HealthRule]:
    """The standard alarm set over the standard stack probes.

    Every watched series is **exactly flat** (or, for
    ``pressure.level``, bounded well under the threshold) on clean
    seeded runs, which is what makes the zero-false-alarm guarantee
    provable rather than probabilistic; see TESTING.md.
    """
    return [
        RateRule(
            "spill-storm",
            "*engine.spills",
            severity=Severity.CRITICAL,
        ),
        ThresholdRule(
            "overload",
            "*pressure.level",
            high=0.85,
            clear=0.60,
            severity=Severity.WARNING,
        ),
        RateRule(
            "budget-overrun",
            "*pressure.overruns",
            severity=Severity.CRITICAL,
        ),
        RateRule(
            "pressure-onset",
            "*pressure.entries",
            severity=Severity.WARNING,
        ),
        RateRule(
            "budget-evictions",
            "*pressure.evictions",
            severity=Severity.WARNING,
        ),
        RateRule(
            "link-flap",
            "*net.fabric.dropped",
            severity=Severity.CRITICAL,
        ),
        RateRule(
            "rank-down",
            "*ranks.live",
            direction="fall",
            severity=Severity.CRITICAL,
        ),
        # Drift, not rate, on the injector counter: a single injected
        # fault is routine for a fault lane, a *drift* of the counter
        # past its learned envelope is a storm. rc.retransmits is
        # deliberately unwatched — a healthy-but-busy wire retransmits
        # legitimately on timer, so that series cannot carry a
        # zero-false-alarm guarantee.
        DriftRule(
            "wire-fault-storm",
            "*faults.injected",
            warmup=4,
            min_delta=4.0,
            severity=Severity.WARNING,
        ),
    ]


@dataclass
class HealthReport:
    """A run's health verdict: fired events + quiet-rule evidence."""

    events: list[HealthEvent] = field(default_factory=list)
    rules: list[dict] = field(default_factory=list)  # name/kind/pattern/evaluated/fired
    ticks: int = 0

    SCHEMA = HEALTH_SCHEMA

    @property
    def healthy(self) -> bool:
        return not self.events

    @property
    def worst(self) -> Severity | None:
        return max((e.severity for e in self.events), default=None)

    def alarms(self) -> set[str]:
        return {e.alarm for e in self.events}

    def to_dict(self) -> dict:
        return {
            "healthy": self.healthy,
            "ticks": self.ticks,
            "events": [e.to_dict() for e in self.events],
            "rules": list(self.rules),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "HealthReport":
        report = cls(
            events=[HealthEvent.from_dict(e) for e in payload.get("events", ())],
            rules=[dict(r) for r in payload.get("rules", ())],
            ticks=int(payload.get("ticks", 0)),
        )
        return report

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(
            {"schema": self.SCHEMA, **self.to_dict()}, indent=indent
        ) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "HealthReport":
        payload = json.loads(text)
        schema = payload.get("schema", cls.SCHEMA)
        if schema != cls.SCHEMA:
            raise ValueError(f"unsupported schema {schema!r}, expected {cls.SCHEMA!r}")
        return cls.from_dict(payload)

    def render(self) -> str:
        lines = []
        verdict = "HEALTHY" if self.healthy else f"UNHEALTHY ({self.worst.name})"
        lines.append(f"health: {verdict} over {self.ticks} sampling rounds")
        for event in self.events:
            lines.append(f"  {event.describe()}")
        quiet = [r for r in self.rules if not r["fired"]]
        if quiet:
            names = ", ".join(sorted({r["alarm"] for r in quiet}))
            lines.append(f"  quiet rules: {names}")
        return "\n".join(lines)


class HealthMonitor:
    """Evaluates a rule set over samples, streaming or post hoc.

    Attach to a live sampler (:meth:`attach`) to see every sample the
    moment it is taken — events then also flow to the optional tracer
    (instant events on a ``health`` track) and flight recorder
    (ledger ``health_alarm`` events) so alarms land in the same
    artifacts the rest of the stack explains itself through. Or run
    :meth:`scan` over a finished :class:`~repro.obs.timeline.Timeline`
    to audit a dump offline (the CLI path).
    """

    def __init__(
        self,
        rules: list[HealthRule] | None = None,
        *,
        tracer=None,
        recorder=None,
    ) -> None:
        self.rules = list(rules) if rules is not None else default_rules()
        self.events: list[HealthEvent] = []
        self._tracer = tracer
        self._track = None
        self._recorder = recorder
        self._ticks = 0

    def attach(self, sampler) -> "HealthMonitor":
        """Subscribe to a live sampler's sample stream."""
        sampler.add_listener(self.observe)
        return self

    def observe(self, metric: str, tick: float, value: float) -> None:
        for rule in self.rules:
            event = rule.observe(metric, tick, value)
            if event is not None:
                self._emit(event)

    def scan(self, timeline) -> "HealthMonitor":
        """Evaluate the rules over a finished timeline, in tick order
        (the order samples were taken in, reconstructed by sorting on
        tick with the series name as a stable tiebreak)."""
        merged: list[tuple[float, str, float]] = []
        for name, series in timeline.series.items():
            for tick, value in series.samples:
                merged.append((tick, name, value))
        merged.sort(key=lambda item: (item[0], item[1]))
        for tick, name, value in merged:
            self.observe(name, tick, value)
        self._ticks = max(self._ticks, timeline.ticks)
        return self

    def note_tick(self) -> None:
        self._ticks += 1

    def _emit(self, event: HealthEvent) -> None:
        self.events.append(event)
        if self._tracer is not None and self._tracer.enabled:
            if self._track is None:
                self._track = self._tracer.track("health", "alarms")
            self._tracer.instant(
                self._track,
                event.alarm,
                event.tick,
                cat="health",
                args={
                    "metric": event.metric,
                    "observed": event.observed,
                    "expected": event.expected,
                    "severity": event.severity.name,
                },
            )
        if self._recorder is not None and self._recorder.enabled:
            self._recorder.event(
                "health_alarm",
                alarm=event.alarm,
                metric=event.metric,
                tick=event.tick,
                observed=event.observed,
                severity=event.severity.name,
            )

    def report(self, *, ticks: int | None = None) -> HealthReport:
        per_rule = []
        for rule in self.rules:
            fired_count = sum(1 for e in self.events if e.alarm == rule.alarm)
            per_rule.append(
                {
                    "alarm": rule.alarm,
                    "kind": rule.kind,
                    "pattern": rule.pattern,
                    "evaluated": rule.evaluated,
                    "fired": fired_count,
                }
            )
        return HealthReport(
            events=list(self.events),
            rules=per_rule,
            ticks=ticks if ticks is not None else self._ticks,
        )

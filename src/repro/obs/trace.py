"""Simulated-time span tracing with Chrome ``trace_event`` export.

Every clock in the reproduction is *simulated*: the DPA cycle model's
running cycle count, the reliability layer's retransmission ticks, the
MPI recorder's virtual walltime. The tracer therefore never reads a
wall clock — instrumentation sites stamp events with their own
simulated timestamps (in microseconds of their clock domain), and each
clock domain gets its own Perfetto *process* row so mixed domains stay
visually separate.

Exported traces use the Chrome ``trace_event`` JSON Array/Object
format (``{"traceEvents": [...], "displayTimeUnit": "ms"}``) and load
directly in Perfetto / ``chrome://tracing``. Emitted phases:

* ``X`` — complete spans (``ts`` + ``dur``): blocks, degraded windows;
* ``B``/``E`` — open/close spans for windows whose end is discovered
  later: retransmit episodes, RNR stalls, spill->recovery;
* ``i`` — instant events: slow-path resolutions, timeouts;
* ``C`` — counter tracks: queue depths over time;
* ``M`` — metadata naming processes/threads.

Per-track timestamps are clamped monotonically non-decreasing (a
simulated clock can legitimately report the same instant twice; going
backwards would be a bug the validator flags).

The **null-sink fast path**: :data:`NULL_TRACER` answers the same API
with constant no-ops and is what instrumented code holds when tracing
is off. Sites guard hot paths with ``tracer.enabled`` (a plain class
attribute — one attribute load), so a disabled tracer costs near zero;
``python -m repro.obs.overhead`` proves the bound in CI.
"""

from __future__ import annotations

import json
from typing import IO, Any, Mapping

__all__ = [
    "Track",
    "SpanTracer",
    "NullTracer",
    "NULL_TRACER",
    "ScopedTracer",
    "mpi_trace_to_chrome",
]


class Track:
    """One timeline row: a (clock-domain process, thread) pair."""

    __slots__ = ("pid", "tid", "last_ts", "open_names")

    def __init__(self, pid: int, tid: int) -> None:
        self.pid = pid
        self.tid = tid
        self.last_ts = 0.0
        #: Stack of open B-phase span names (for balanced E events).
        self.open_names: list[str] = []


class SpanTracer:
    """Collects simulated-time events for one run."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []
        self._tracks: dict[tuple[str, str], Track] = {}
        self._pids: dict[str, int] = {}

    # -- track management ----------------------------------------------

    def track(self, process: str, thread: str = "main") -> Track:
        """The (lazily created) track named ``process`` / ``thread``.

        ``process`` names a clock domain ("dpa", "rc", "engine"); all
        its tracks share one Perfetto process row group.
        """
        key = (process, thread)
        existing = self._tracks.get(key)
        if existing is not None:
            return existing
        pid = self._pids.setdefault(process, len(self._pids) + 1)
        tid = sum(1 for (p, _t) in self._tracks if p == process) + 1
        track = Track(pid, tid)
        self._tracks[key] = track
        self.events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process},
            }
        )
        self.events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread},
            }
        )
        return track

    def _stamp(self, track: Track, ts: float) -> float:
        ts = float(ts)
        if ts < track.last_ts:
            ts = track.last_ts
        track.last_ts = ts
        return ts

    # -- event emission -------------------------------------------------

    def complete(
        self,
        track: Track,
        name: str,
        ts: float,
        dur: float,
        *,
        cat: str = "span",
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """A finished span: ``ts`` start, ``dur`` length (same clock)."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": self._stamp(track, ts),
            "dur": max(float(dur), 0.0),
            "pid": track.pid,
            "tid": track.tid,
        }
        if args:
            event["args"] = dict(args)
        self.events.append(event)
        track.last_ts = max(track.last_ts, event["ts"] + event["dur"])

    def begin(
        self,
        track: Track,
        name: str,
        ts: float,
        *,
        cat: str = "span",
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """Open a span whose end is not yet known (B phase)."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "B",
            "ts": self._stamp(track, ts),
            "pid": track.pid,
            "tid": track.tid,
        }
        if args:
            event["args"] = dict(args)
        self.events.append(event)
        track.open_names.append(name)

    def end(
        self,
        track: Track,
        ts: float,
        *,
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """Close the innermost open span on ``track`` (E phase)."""
        if not track.open_names:
            return
        name = track.open_names.pop()
        event = {
            "name": name,
            "ph": "E",
            "ts": self._stamp(track, ts),
            "pid": track.pid,
            "tid": track.tid,
        }
        if args:
            event["args"] = dict(args)
        self.events.append(event)

    def instant(
        self,
        track: Track,
        name: str,
        ts: float,
        *,
        cat: str = "event",
        args: Mapping[str, Any] | None = None,
    ) -> None:
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": self._stamp(track, ts),
            "pid": track.pid,
            "tid": track.tid,
        }
        if args:
            event["args"] = dict(args)
        self.events.append(event)

    def counter(
        self, track: Track, name: str, ts: float, values: Mapping[str, float]
    ) -> None:
        """A counter sample (Perfetto renders these as area charts)."""
        self.events.append(
            {
                "name": name,
                "ph": "C",
                "ts": self._stamp(track, ts),
                "pid": track.pid,
                "tid": track.tid,
                "args": {k: float(v) for k, v in values.items()},
            }
        )

    def close_open_spans(self, ts_for: Mapping[Track, float] | None = None) -> None:
        """Balance any still-open B spans (end-of-run cleanup)."""
        for track in self._tracks.values():
            ts = (ts_for or {}).get(track, track.last_ts)
            while track.open_names:
                self.end(track, ts)

    # -- export ---------------------------------------------------------

    def to_chrome(self) -> dict[str, Any]:
        return {"traceEvents": list(self.events), "displayTimeUnit": "ms"}

    def write(self, destination: str | IO[str]) -> None:
        """Write the Chrome trace_event JSON to a path or open file."""
        self.close_open_spans()
        payload = json.dumps(self.to_chrome(), indent=None, separators=(",", ":"))
        if hasattr(destination, "write"):
            destination.write(payload)  # type: ignore[union-attr]
        else:
            with open(destination, "w", encoding="utf-8") as fp:
                fp.write(payload)

    def __len__(self) -> int:
        return len(self.events)


class NullTracer(SpanTracer):
    """The disabled tracer: every method is a constant no-op.

    Instrumented code holds one of these when tracing is off; the
    per-call cost is a method dispatch on a no-op (and hot loops skip
    even that by testing :attr:`enabled` first).
    """

    enabled = False

    _NULL_TRACK = Track(0, 0)

    def __init__(self) -> None:  # no event storage at all
        self.events = []
        self._tracks = {}
        self._pids = {}

    def track(self, process: str, thread: str = "main") -> Track:
        return self._NULL_TRACK

    def complete(self, *args, **kwargs) -> None:
        pass

    def begin(self, *args, **kwargs) -> None:
        pass

    def end(self, *args, **kwargs) -> None:
        pass

    def instant(self, *args, **kwargs) -> None:
        pass

    def counter(self, *args, **kwargs) -> None:
        pass

    def close_open_spans(self, *args, **kwargs) -> None:
        pass


#: Shared do-nothing tracer — the default value for every ``tracer``
#: parameter in the instrumented stack.
NULL_TRACER = NullTracer()


class ScopedTracer(SpanTracer):
    """A view of another tracer with every process name prefixed.

    Lets independent simulations (e.g. the chaos soak's one traced run
    per fault profile) share one output file without colliding on
    track names or clocks: each run writes under ``prefix/process``.
    Scoping a disabled tracer stays disabled (and free).
    """

    def __init__(self, inner: SpanTracer, prefix: str) -> None:
        self._inner = inner
        self.prefix = prefix
        self.enabled = inner.enabled
        # Shared storage: events/tracks live on the inner tracer.
        self.events = inner.events
        self._tracks = inner._tracks
        self._pids = inner._pids

    def track(self, process: str, thread: str = "main") -> Track:
        return self._inner.track(f"{self.prefix}{process}", thread)

    # Emission delegates to the inner tracer so scoping a NullTracer
    # stays a no-op even for callers that skip the `enabled` guard.

    def complete(self, *args, **kwargs) -> None:
        self._inner.complete(*args, **kwargs)

    def begin(self, *args, **kwargs) -> None:
        self._inner.begin(*args, **kwargs)

    def end(self, *args, **kwargs) -> None:
        self._inner.end(*args, **kwargs)

    def instant(self, *args, **kwargs) -> None:
        self._inner.instant(*args, **kwargs)

    def counter(self, *args, **kwargs) -> None:
        self._inner.counter(*args, **kwargs)

    def close_open_spans(self, *args, **kwargs) -> None:
        self._inner.close_open_spans(*args, **kwargs)


def mpi_trace_to_chrome(trace) -> SpanTracer:
    """Render a :class:`repro.traces.model.Trace` as a Chrome trace.

    Each rank becomes a thread track in the ``mpi`` clock domain;
    every recorded op is a complete span at its virtual walltime
    (seconds -> microseconds), so a recorded run can be inspected in
    Perfetto alongside the matching-engine spans it produced.
    """
    tracer = SpanTracer()
    for rank_trace in trace.ranks:
        track = tracer.track("mpi", f"rank {rank_trace.rank}")
        for op in rank_trace.ops:
            args: dict[str, Any] = {"tag": op.tag, "comm": op.comm}
            if op.peer != -2:
                args["peer"] = op.peer
            if op.size:
                args["size"] = op.size
            tracer.complete(
                track,
                op.kind.value,
                op.walltime * 1e6,
                1.0,  # ops are points in virtual time; 1us makes them visible
                cat=op.group.value,
                args=args,
            )
    return tracer

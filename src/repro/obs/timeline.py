"""Simulated-clock time-series sampling — the continuous-telemetry layer.

Everything the registry (:mod:`repro.obs.registry`) exports is an
end-state aggregate: one number per counter after the run. The paper's
own analysis (the Fig. 7 queue-depth study, the §III-E budget the
pressure layer reacts to) is about *dynamics* — how deep the UMQ got
and when, how occupancy approached the budget, when a link saturated.
This module adds that axis:

* :class:`TimeSeries` — one metric's ``(tick, value)`` samples in a
  bounded ring (old samples fall off; the drop count is kept, so a
  truncated series is visibly truncated).
* :class:`Timeline` — a named set of series with a stable JSON schema
  (``repro.obs.timeline/v1``), ASCII rendering, and Perfetto
  counter-track export (one ``C`` event per sample, loadable next to
  the span traces).
* :class:`TimelineSampler` — the periodic poller: subsystems register
  zero-argument gauge probes; the simulation's driver loop calls
  :meth:`TimelineSampler.poll` with the current *simulated* tick, and
  the sampler reads every probe whenever one ``interval`` has elapsed.
  Like the tracer and the flight recorder, there is a null variant
  (:data:`NULL_SAMPLER`) whose :meth:`poll` is a constant no-op, so an
  un-instrumented run pays one attribute test per driver round and
  allocates nothing.

Probe naming follows the registry's dotted convention; the standard
stack probes (installed by :func:`install_stack_probes` in the chaos
harness, :meth:`repro.pressure.budget.PressureMeter.timeline_probes`,
:func:`repro.net.metrics.install_fabric_probes`, and the cluster sims)
are the series the :mod:`repro.obs.health` rules engine watches.
Re-installing a probe under an existing name *replaces* the reader and
continues the series — exactly what engine generations and epoch
rebuilds need.
"""

from __future__ import annotations

import json
from collections import deque
from collections.abc import Callable, Mapping
from typing import Any

__all__ = [
    "TimeSeries",
    "Timeline",
    "TimelineSampler",
    "NullSampler",
    "NULL_SAMPLER",
    "install_stack_probes",
    "timeline_to_chrome",
]

TIMELINE_SCHEMA = "repro.obs.timeline/v1"

#: A gauge probe: zero arguments, current value of its metric.
Probe = Callable[[], float]


class TimeSeries:
    """One metric's bounded ring of ``(tick, value)`` samples."""

    __slots__ = ("name", "capacity", "dropped", "_samples")

    def __init__(self, name: str, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        #: Samples evicted by the ring bound (total - retained).
        self.dropped = 0
        self._samples: deque[tuple[float, float]] = deque(maxlen=capacity)

    def append(self, tick: float, value: float) -> None:
        if len(self._samples) == self.capacity:
            self.dropped += 1
        self._samples.append((float(tick), float(value)))

    @property
    def samples(self) -> list[tuple[float, float]]:
        return list(self._samples)

    def last(self) -> tuple[float, float] | None:
        return self._samples[-1] if self._samples else None

    def values(self) -> list[float]:
        return [v for _, v in self._samples]

    def __len__(self) -> int:
        return len(self._samples)

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "dropped": self.dropped,
            "samples": [[t, v] for t, v in self._samples],
        }

    @classmethod
    def from_dict(cls, name: str, payload: Mapping[str, Any]) -> "TimeSeries":
        series = cls(name, int(payload.get("capacity", 1024)))
        for t, v in payload.get("samples", ()):
            series._samples.append((float(t), float(v)))
        series.dropped = int(payload.get("dropped", 0))
        return series


class Timeline:
    """A named set of :class:`TimeSeries` sharing one simulated clock."""

    SCHEMA = TIMELINE_SCHEMA

    def __init__(self, *, interval: float = 0.0, capacity: int = 1024) -> None:
        self.interval = float(interval)
        self.capacity = int(capacity)
        self.series: dict[str, TimeSeries] = {}
        #: Sampling rounds performed (each reads every probe once).
        self.ticks = 0

    def record(self, name: str, tick: float, value: float) -> None:
        series = self.series.get(name)
        if series is None:
            series = TimeSeries(name, self.capacity)
            self.series[name] = series
        series.append(tick, value)

    def __len__(self) -> int:
        return len(self.series)

    # -- JSON ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "interval": self.interval,
            "capacity": self.capacity,
            "ticks": self.ticks,
            "series": {
                name: self.series[name].to_dict() for name in sorted(self.series)
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Timeline":
        timeline = cls(
            interval=float(payload.get("interval", 0.0)),
            capacity=int(payload.get("capacity", 1024)),
        )
        timeline.ticks = int(payload.get("ticks", 0))
        for name, entry in payload.get("series", {}).items():
            timeline.series[str(name)] = TimeSeries.from_dict(str(name), entry)
        return timeline

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(
            {"schema": self.SCHEMA, **self.to_dict()}, indent=indent
        ) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Timeline":
        payload = json.loads(text)
        schema = payload.get("schema", cls.SCHEMA)
        if schema != cls.SCHEMA:
            raise ValueError(f"unsupported schema {schema!r}, expected {cls.SCHEMA!r}")
        return cls.from_dict(payload)

    # -- rendering -----------------------------------------------------

    def render(self, *, width: int = 60, match: str | None = None) -> str:
        """ASCII sparkline per series (terminal Fig. 7)."""
        from repro.util.asciiplot import spark_series

        rows = {
            name: series.values()
            for name, series in sorted(self.series.items())
            if match is None or match in name
        }
        if not rows:
            return "(no series)"
        return spark_series(rows, width=width)


def timeline_to_chrome(timeline: Timeline):
    """Render a timeline as Perfetto counter tracks.

    Each series becomes one ``C`` (counter) event stream on a
    ``timeline`` process row, so queue-depth/occupancy dynamics load
    in Perfetto next to the span traces and flow events.
    """
    from repro.obs.trace import SpanTracer

    tracer = SpanTracer()
    track = tracer.track("timeline", "counters")
    merged: list[tuple[float, str, float]] = []
    for name, series in sorted(timeline.series.items()):
        for tick, value in series.samples:
            merged.append((tick, name, value))
    merged.sort(key=lambda item: (item[0], item[1]))
    for tick, name, value in merged:
        tracer.counter(track, name, tick, {"value": value})
    return tracer


class TimelineSampler:
    """Polls registered gauge probes on a simulated-clock period.

    The sampler never owns a clock: the surrounding driver loop calls
    :meth:`poll` with *its* current tick (wire ticks in the chaos
    stack, fabric ticks under the cluster sims) and the sampler reads
    every probe when at least ``interval`` ticks have elapsed since
    the last sampling round (``interval=0`` samples on every poll).
    """

    enabled = True

    def __init__(self, *, interval: float = 0.0, capacity: int = 1024) -> None:
        self.timeline = Timeline(interval=interval, capacity=capacity)
        self.interval = float(interval)
        self._probes: dict[str, Probe] = {}
        self._listeners: list[Callable[[str, float, float], None]] = []
        self._last: float | None = None

    # -- registration --------------------------------------------------

    def add_probe(self, name: str, fn: Probe) -> None:
        """Register (or replace) the reader behind series ``name``.

        Replacement is deliberate: engine generations and epoch
        rebuilds re-install probes over the same series name and the
        series simply continues on the new object.
        """
        self._probes[name] = fn

    def add_probes(self, probes: Mapping[str, Probe], *, prefix: str = "") -> None:
        p = f"{prefix}." if prefix else ""
        for name, fn in probes.items():
            self.add_probe(f"{p}{name}", fn)

    def add_listener(self, fn: Callable[[str, float, float], None]) -> None:
        """``fn(name, tick, value)`` is called on every sample — the
        attach point the :mod:`repro.obs.health` monitor uses to see
        samples as they happen rather than post hoc."""
        self._listeners.append(fn)

    @property
    def probe_names(self) -> list[str]:
        return sorted(self._probes)

    # -- sampling ------------------------------------------------------

    def poll(self, now: float) -> bool:
        """Sample if a period has elapsed; True when a round ran."""
        if self._last is not None and now - self._last < self.interval:
            return False
        self.sample(now)
        return True

    def sample(self, now: float) -> None:
        """Force one sampling round at tick ``now``."""
        self._last = now
        self.timeline.ticks += 1
        for name in sorted(self._probes):
            value = float(self._probes[name]())
            self.timeline.record(name, now, value)
            for listener in self._listeners:
                listener(name, now, value)


class NullSampler(TimelineSampler):
    """The disabled sampler: every method is a constant no-op.

    Driver loops hold one of these by default and guard their poll
    site with ``sampler.enabled`` (one class-attribute load), so an
    un-instrumented run samples nothing and allocates nothing —
    ``python -m repro.obs.overhead --sampler`` proves the bound.
    """

    enabled = False

    def __init__(self) -> None:
        self.timeline = Timeline()
        self.interval = 0.0
        self._probes = {}
        self._listeners = []
        self._last = None

    def add_probe(self, name: str, fn: Probe) -> None:
        pass

    def add_probes(self, probes: Mapping[str, Probe], *, prefix: str = "") -> None:
        pass

    def add_listener(self, fn) -> None:
        pass

    def poll(self, now: float) -> bool:
        return False

    def sample(self, now: float) -> None:
        pass


#: Shared do-nothing sampler — the default for every ``sampler``
#: parameter in the instrumented drivers.
NULL_SAMPLER = NullSampler()


def _first_attr(obj: object, *names: str) -> float:
    """The first present numeric attribute of ``obj`` (else 0)."""
    for name in names:
        value = getattr(obj, name, None)
        if value is not None:
            return float(value)
    return 0.0


def install_stack_probes(
    sampler: TimelineSampler,
    *,
    matcher=None,
    engine_stats=None,
    wire=None,
    raw_wire=None,
    meter=None,
    receiver=None,
    prefix: str = "",
) -> None:
    """Install the standard receive-stack probes on ``sampler``.

    Mirrors :func:`repro.obs.hooks.register_stack_metrics`, but as
    live gauges: every reader resolves its object *at sample time*, so
    matcher wrappers that swap engines underneath (fallback, recovery,
    pressure) keep reporting the live generation's queues. Series:

    ``engine.prq_depth`` / ``engine.umq_depth`` / ``engine.pending``
        Posted-receive, unexpected-queue, and ingress-queue depths.
    ``engine.prq_max_bin`` / ``engine.umq_max_bin``
        Deepest single hash bin (the Fig. 7 signal).
    ``engine.conflict_fraction``
        Cumulative conflicted-thread fraction.
    ``engine.spills`` / ``engine.spill_active``
        Cumulative spill count and the current degraded flag.
    ``rc.retransmits`` / ``rc.rnr_naks`` and ``faults.injected``
        Reliability and fault-injection counters (cumulative).
    ``pressure.*``
        The meter's occupancy/enforcement gauges
        (:meth:`repro.pressure.budget.PressureMeter.timeline_probes`).
    ``receiver.completed``
        Deliveries surfaced so far.
    """
    p = f"{prefix}." if prefix else ""
    if matcher is not None:

        def engine_of():
            # Wrapper pipelines expose the live engine generation as
            # ``.engine`` (pressure, recovery) or ``.fallback`` (the
            # chaos harness's fallback adapter); a bare engine is its
            # own generation.
            inner = getattr(matcher, "engine", None)
            if inner is None:
                inner = getattr(matcher, "fallback", matcher)
            return inner

        def depths() -> dict[str, float]:
            inner = engine_of()
            fn = getattr(inner, "queue_depths", None)
            if fn is not None:
                return fn()
            return {
                "prq": _first_attr(inner, "posted_receives", "posted_count"),
                "umq": _first_attr(inner, "unexpected_count"),
                "pending": _first_attr(inner, "pending_messages"),
                "prq_max_bin": 0.0,
                "umq_max_bin": 0.0,
            }

        sampler.add_probe(f"{p}engine.prq_depth", lambda: depths()["prq"])
        sampler.add_probe(f"{p}engine.umq_depth", lambda: depths()["umq"])
        sampler.add_probe(f"{p}engine.pending", lambda: depths()["pending"])
        sampler.add_probe(f"{p}engine.prq_max_bin", lambda: depths()["prq_max_bin"])
        sampler.add_probe(f"{p}engine.umq_max_bin", lambda: depths()["umq_max_bin"])
    if engine_stats is not None:
        sampler.add_probe(
            f"{p}engine.conflict_fraction",
            lambda: engine_stats.conflicts / max(engine_stats.messages, 1),
        )
        sampler.add_probe(
            f"{p}engine.spills", lambda: float(engine_stats.fallback_spills)
        )
        sampler.add_probe(
            f"{p}engine.spill_active",
            lambda: 1.0
            if engine_stats.fallback_spills > engine_stats.fallback_recoveries
            else 0.0,
        )
    if wire is not None and getattr(wire, "stats", None) is not None:
        sampler.add_probe(
            f"{p}rc.retransmits", lambda: float(wire.stats.retransmits)
        )
        sampler.add_probe(f"{p}rc.rnr_naks", lambda: float(wire.stats.rnr_naks))
    if raw_wire is not None and getattr(raw_wire, "stats", None) is not None:
        sampler.add_probe(
            f"{p}faults.injected", lambda: float(raw_wire.stats.total_injected())
        )
    if meter is not None:
        sampler.add_probes(meter.timeline_probes(), prefix=f"{p}pressure")
    if receiver is not None:
        sampler.add_probe(
            f"{p}receiver.completed", lambda: float(len(receiver.completed))
        )

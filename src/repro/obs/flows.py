"""Perfetto flow-event export of a ledger dump.

Each message's phase segments become ``X`` (complete) events on the
track of the layer that owned the phase — host, wire, nic, engine —
and a Chrome flow (``s``/``t``/``f`` events sharing ``id=mid``) links
the segments across tracks, so Perfetto draws one arrow-chained
lifeline per message through the whole offload stack.

Events are constructed directly (not through
:class:`repro.obs.trace.SpanTracer` — its per-track monotone clamping
would distort interleaved per-message timelines) and globally sorted
by timestamp, which makes every track monotone for the validator.
"""

from __future__ import annotations

import json

from repro.obs.ledger import LedgerDump

__all__ = ["ledger_to_chrome", "write_flow_trace"]

#: phase -> (layer name, pid). One Perfetto "process" per layer.
_LAYERS: dict[str, tuple[str, int]] = {
    "send": ("host", 1),
    "wire": ("wire", 2),
    "staged": ("nic", 3),
    "cq": ("nic", 3),
    "rdma_read": ("nic", 3),
    "engine": ("engine", 4),
    "umq": ("engine", 4),
    "parked": ("engine", 4),
    "matched": ("engine", 4),
}
_DEFAULT_LAYER = ("engine", 4)
_FLOW_CAT = "msg"


def ledger_to_chrome(dump: LedgerDump) -> list[dict]:
    """Chrome ``trace_event`` list (metadata first, then ts-sorted)."""
    meta: list[dict] = []
    events: list[dict] = []
    named_tracks: set[tuple[int, int]] = set()
    named_procs: set[int] = set()

    def track(pid: int, tid: int, layer: str, scenario: str) -> None:
        if pid not in named_procs:
            named_procs.add(pid)
            meta.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": layer},
                }
            )
        if (pid, tid) not in named_tracks:
            named_tracks.add((pid, tid))
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": scenario},
                }
            )

    for tid, scenario in enumerate(sorted(dump.scenarios), start=1):
        for _, rec in dump.iter_records(scenario):
            segments = rec.segments()
            if not segments:
                continue
            flow_name = rec.label or f"mid{rec.mid}"
            prev_pid: int | None = None
            for t0, t1, phase in segments:
                layer, pid = _LAYERS.get(phase, _DEFAULT_LAYER)
                track(pid, tid, layer, scenario)
                events.append(
                    {
                        "name": phase,
                        "cat": "ledger",
                        "ph": "X",
                        "ts": t0,
                        "dur": t1 - t0,
                        "pid": pid,
                        "tid": tid,
                        "args": {"mid": rec.mid, "label": rec.label},
                    }
                )
                if prev_pid is None:
                    events.append(
                        {
                            "name": flow_name,
                            "cat": _FLOW_CAT,
                            "ph": "s",
                            "id": rec.mid,
                            "ts": t0,
                            "pid": pid,
                            "tid": tid,
                        }
                    )
                elif pid != prev_pid:
                    events.append(
                        {
                            "name": flow_name,
                            "cat": _FLOW_CAT,
                            "ph": "t",
                            "id": rec.mid,
                            "ts": t0,
                            "pid": pid,
                            "tid": tid,
                        }
                    )
                prev_pid = pid
            end_t = segments[-1][1]
            layer, pid = _LAYERS.get(segments[-1][2], _DEFAULT_LAYER)
            events.append(
                {
                    "name": flow_name,
                    "cat": _FLOW_CAT,
                    "ph": "f",
                    "bp": "e",
                    "id": rec.mid,
                    "ts": end_t,
                    "pid": pid,
                    "tid": tid,
                }
            )
    events.sort(key=lambda e: e["ts"])
    return meta + events


def write_flow_trace(dump: LedgerDump, path: str) -> int:
    """Write the flow trace; returns the number of events."""
    payload = ledger_to_chrome(dump)
    with open(path, "w", encoding="utf-8") as fp:
        json.dump({"traceEvents": payload, "displayTimeUnit": "ms"}, fp)
    return len(payload)

"""The metrics registry: one namespace for every subsystem's counters.

The reproduction's telemetry used to be a patchwork — ``EngineStats``
dataclass fields, ``ReliabilityStats`` on the wire, fault-injection
tallies, ad-hoc prints in benchmarks. The registry gives all of them a
single, mergeable representation:

* :class:`Counter` — a monotonically increasing total, optionally
  split by label values (``counter.labels(path="slow").inc()``).
* :class:`Gauge` — a point-in-time level (queue depth, live engine
  generation).
* :class:`Histogram` — fixed-bound bucket counts plus count/sum, for
  distributions (retransmits per run, block sizes).

Two integration styles:

* **Push** — code increments registry metrics directly.
* **Pull (collectors)** — existing stats objects register a collector
  callable; their current field values are read at snapshot time.
  Because carriers like :class:`repro.core.stats.EngineStats` survive
  engine generations (spill/recovery swaps the engine, not the stats
  object), pulled values are cumulative across generations by
  construction — no clobber-mirroring.

Snapshots are plain flat dicts (``name{label=value}`` -> number) with
associative :meth:`MetricsSnapshot.merge` (values add) and
:meth:`MetricsSnapshot.delta`, and a stable JSON form consumed by
``python -m repro.obs.report``.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_BUCKETS",
]

#: Default histogram bounds: powers of two up to 64Ki (counts, ticks,
#: cycles — everything in the simulator is small-integer valued).
DEFAULT_BUCKETS: tuple[float, ...] = tuple(float(2**i) for i in range(17))


def _labels_key(labels: Mapping[str, str | int | float]) -> str:
    """Canonical ``{k=v,...}`` suffix; empty string for no labels."""
    if not labels:
        return ""
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return "{" + inner + "}"


class _Metric:
    """Common naming/labelling machinery for one metric family."""

    __slots__ = ("name", "help", "_children")

    def __init__(self, name: str, help: str = "") -> None:
        # Labelled children carry a "{k=v,...}" suffix; only the base
        # name must stay free of structural characters.
        base, brace, _rest = name.partition("{")
        if (
            not base
            or any(c in base for c in "}=,\n")
            or (brace and not name.endswith("}"))
        ):
            raise ValueError(f"bad metric name {name!r}")
        self.name = name
        self.help = help
        #: label-key -> child metric of the same type.
        self._children: dict[str, _Metric] = {}

    def labels(self, **labels: str | int | float):
        """The child metric for one label combination (created lazily)."""
        key = _labels_key(labels)
        child = self._children.get(key)
        if child is None:
            child = type(self)(self.name + key, self.help)
            self._children[key] = child
        return child

    def _own_samples(self) -> Iterable[tuple[str, float]]:  # pragma: no cover
        raise NotImplementedError

    def samples(self) -> Iterable[tuple[str, float]]:
        """All (flat name, value) samples: self plus labelled children."""
        yield from self._own_samples()
        for child in self._children.values():
            yield from child.samples()


class Counter(_Metric):
    """A total that only moves forward."""

    __slots__ = ("_value",)

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _own_samples(self) -> Iterable[tuple[str, float]]:
        yield self.name, self._value


class Gauge(_Metric):
    """A level that can move both ways (or be computed on demand)."""

    __slots__ = ("_value", "_fn")

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        self._fn = None
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Read the gauge from ``fn`` at snapshot time (pull style)."""
        self._fn = fn

    @property
    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value

    def _own_samples(self) -> Iterable[tuple[str, float]]:
        yield self.name, self.value


class Histogram(_Metric):
    """Fixed-bound bucket histogram with cumulative count and sum."""

    __slots__ = ("bounds", "bucket_counts", "count", "sum")

    def __init__(
        self,
        name: str,
        help: str = "",
        *,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        if tuple(sorted(buckets)) != tuple(buckets) or not buckets:
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.bounds = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +inf overflow
        self.count = 0
        self.sum = 0.0

    def labels(self, **labels: str | int | float) -> "Histogram":
        key = _labels_key(labels)
        child = self._children.get(key)
        if child is None:
            child = Histogram(self.name + key, self.help, buckets=self.bounds)
            self._children[key] = child
        return child  # type: ignore[return-value]

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile, linearly interpolated inside the
        containing bucket (``histogram_quantile`` semantics, with the
        first bucket's lower edge taken as 0). Empty histograms report
        0.0; ranks landing in the +inf overflow bucket clamp to the
        highest finite bound."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cum = 0
        lo = 0.0
        for bound, n in zip(self.bounds, self.bucket_counts):
            if n and cum + n >= rank:
                return lo + (bound - lo) * (rank - cum) / n
            cum += n
            lo = bound
        return self.bounds[-1]

    def _own_samples(self) -> Iterable[tuple[str, float]]:
        for bound, n in zip(self.bounds, self.bucket_counts):
            yield f"{self.name}_bucket{{le={bound:g}}}", float(n)
        yield f"{self.name}_bucket{{le=+inf}}", float(self.bucket_counts[-1])
        yield f"{self.name}_count", float(self.count)
        yield f"{self.name}_sum", float(self.sum)
        # Per-snapshot estimates for direct readers. NOT additive under
        # MetricsSnapshot.merge — the report renderer recomputes
        # quantiles from the (additive) bucket samples instead.
        yield f"{self.name}_p50", self.quantile(0.50)
        yield f"{self.name}_p95", self.quantile(0.95)
        yield f"{self.name}_p99", self.quantile(0.99)


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """An immutable flat view of a registry at one instant.

    ``values`` maps flat sample names (labels folded into the name) to
    numbers. Snapshots form a commutative monoid under :meth:`merge`
    (values add; the empty snapshot is the identity), so merging is
    associative — shard-and-combine aggregation is order-independent.
    """

    values: dict[str, float] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots by summing every sample."""
        merged = dict(self.values)
        for name, value in other.values.items():
            merged[name] = merged.get(name, 0.0) + value
        return MetricsSnapshot(merged)

    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """What changed since ``earlier`` (absent keys count as 0)."""
        keys = set(self.values) | set(earlier.values)
        return MetricsSnapshot(
            {
                k: self.values.get(k, 0.0) - earlier.values.get(k, 0.0)
                for k in sorted(keys)
            }
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        payload = {
            "schema": "repro.obs.metrics/v1",
            "metrics": {k: self.values[k] for k in sorted(self.values)},
        }
        return json.dumps(payload, indent=indent) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "MetricsSnapshot":
        payload = json.loads(text)
        metrics = payload.get("metrics", payload)  # tolerate bare dicts
        return cls({str(k): float(v) for k, v in metrics.items()})

    def get(self, name: str, default: float = 0.0) -> float:
        return self.values.get(name, default)

    def __len__(self) -> int:
        return len(self.values)


class MetricsRegistry:
    """Namespace of metrics plus pull-style collectors."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list[tuple[str, Callable[[], Mapping[str, float]]]] = []

    # -- metric creation ------------------------------------------------

    def _create(self, cls: type, name: str, help: str, **kwargs) -> _Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {type(existing).__name__}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._create(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._create(Gauge, name, help)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._create(Histogram, name, help, buckets=buckets)  # type: ignore[return-value]

    # -- collectors -----------------------------------------------------

    def add_collector(
        self, prefix: str, fn: Callable[[], Mapping[str, float]]
    ) -> None:
        """Pull ``fn()``'s samples under ``prefix.`` at snapshot time."""
        self._collectors.append((prefix, fn))

    def register_stats(self, prefix: str, obj: object) -> None:
        """Collect every public numeric attribute of ``obj`` (a stats
        dataclass) under ``prefix.``. The object is read live at each
        snapshot, so carriers that survive engine generations report
        cumulative values with no mirroring step."""

        def collect() -> dict[str, float]:
            out: dict[str, float] = {}
            names: Iterable[str]
            slots = getattr(type(obj), "__slots__", None)
            fields_attr = getattr(type(obj), "__dataclass_fields__", None)
            if fields_attr is not None:
                names = fields_attr.keys()
            elif slots is not None:
                names = slots
            else:  # pragma: no cover - plain objects
                names = vars(obj).keys()
            for name in names:
                if name.startswith("_"):
                    continue
                value = getattr(obj, name, None)
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                out[name] = float(value)
            return out

        self.add_collector(prefix, collect)

    # -- output ---------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        values: dict[str, float] = {}
        for metric in self._metrics.values():
            for name, value in metric.samples():
                values[name] = value
        for prefix, fn in self._collectors:
            for name, value in fn().items():
                values[f"{prefix}.{name}"] = values.get(f"{prefix}.{name}", 0.0) + float(
                    value
                )
        return MetricsSnapshot(values)

    def to_json(self, *, indent: int | None = 2) -> str:
        return self.snapshot().to_json(indent=indent)

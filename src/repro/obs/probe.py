"""``@probe`` hook points: attach observers without code edits.

A probe marks a function as an observation site. In the default
(disabled) state a probed call costs one module-global truth test on
top of the original call — cheap enough for hot paths like
``OptimisticMatcher.process_block`` (the bound is enforced by
``python -m repro.obs.overhead`` in CI).

When enabled, every subscriber attached to the probe's name is invoked
*after* the wrapped function returns, as ``hook(args, kwargs, result)``
— enough to count, histogram, or trace the call without the callee
knowing. Benchmarks and the chaos soak attach to published probe names
(``engine.process_block``, ``engine.post_receive``, ...) instead of
patching library code.

Usage::

    @probe("engine.process_block")
    def process_block(self): ...

    with subscribed("engine.process_block", my_hook):
        run_workload()

The original callable stays reachable as ``fn.__wrapped__`` (used by
the overhead benchmark to measure the dispatch cost honestly).
"""

from __future__ import annotations

import functools
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import Any

__all__ = [
    "probe",
    "subscribe",
    "unsubscribe",
    "subscribed",
    "probe_names",
    "active",
]

#: Post-call hook: (positional args, keyword args, return value).
ProbeHook = Callable[[tuple, dict, Any], None]

#: Fast global gate: False => probed calls skip all lookup work.
_ENABLED = False
_SUBSCRIBERS: dict[str, list[ProbeHook]] = {}
_KNOWN: set[str] = set()


def probe(name: str) -> Callable[[Callable], Callable]:
    """Declare ``name`` as an observation site on the decorated callable."""
    _KNOWN.add(name)

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _ENABLED:
                return fn(*args, **kwargs)
            result = fn(*args, **kwargs)
            hooks = _SUBSCRIBERS.get(name)
            if hooks:
                for hook in hooks:
                    hook(args, kwargs, result)
            return result

        wrapper.__probe_name__ = name  # type: ignore[attr-defined]
        return wrapper

    return decorate


def probe_names() -> tuple[str, ...]:
    """Every probe name declared so far (import-order dependent)."""
    return tuple(sorted(_KNOWN))


def active() -> bool:
    """Whether any subscriber is attached (the gate is open)."""
    return _ENABLED


def subscribe(name: str, hook: ProbeHook) -> None:
    """Attach ``hook`` to probe ``name`` and open the global gate."""
    global _ENABLED
    _SUBSCRIBERS.setdefault(name, []).append(hook)
    _ENABLED = True


def unsubscribe(name: str, hook: ProbeHook) -> None:
    """Detach ``hook``; the gate closes when no subscriber remains."""
    global _ENABLED
    hooks = _SUBSCRIBERS.get(name)
    if hooks is not None:
        try:
            hooks.remove(hook)
        except ValueError:
            pass
        if not hooks:
            del _SUBSCRIBERS[name]
    _ENABLED = bool(_SUBSCRIBERS)


@contextmanager
def subscribed(name: str, hook: ProbeHook) -> Iterator[None]:
    """Scoped :func:`subscribe` / :func:`unsubscribe` pair."""
    subscribe(name, hook)
    try:
        yield
    finally:
        unsubscribe(name, hook)

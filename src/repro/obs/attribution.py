"""Latency attribution: conserved per-message phase waterfalls.

Each :class:`repro.obs.ledger.MessageRecord` decomposes its end-to-end
latency into phase segments whose durations telescope to exactly
``end - start`` (conservation holds by construction — segments are
consecutive-transition gaps). This module aggregates those waterfalls
per scenario and per phase, with p50/p95/p99 summary quantiles over
the per-message phase durations, and renders an ASCII report for the
``repro-obs attribution`` CLI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.obs.ledger import LedgerDump, MessageRecord

__all__ = [
    "PhaseSummary",
    "ScenarioAttribution",
    "attribute",
    "check_conservation",
    "quantile",
    "render_attribution",
]


def quantile(values: list[float], q: float) -> float:
    """Linear-interpolation quantile of a non-empty sample list."""
    if not values:
        raise ValueError("quantile of empty sample")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass(slots=True)
class PhaseSummary:
    """Aggregate of one phase's durations across a scenario."""

    phase: str
    count: int
    total: float
    p50: float
    p95: float
    p99: float
    max: float


@dataclass(slots=True)
class ScenarioAttribution:
    """One scenario's conserved waterfall."""

    scenario: str
    messages: int
    completed: int
    total_latency: float
    phases: list[PhaseSummary] = field(default_factory=list)
    #: mids whose phase durations failed to sum to their latency
    #: (must stay empty — conservation is structural).
    violations: list[int] = field(default_factory=list)


def check_conservation(record: MessageRecord) -> bool:
    """Phase durations must sum to the end-to-end latency.

    Conservation is exact in the algebra (segments telescope), so the
    only slack allowed is float rounding of the telescoped sum — a few
    ulps, not a bookkeeping tolerance.
    """
    total = math.fsum(t1 - t0 for t0, t1, _ in record.segments())
    return math.isclose(total, record.latency, rel_tol=1e-12, abs_tol=1e-12)


def attribute(dump: LedgerDump, scenario: str | None = None) -> list[ScenarioAttribution]:
    """Aggregate per-phase waterfalls for each scenario in the dump."""
    out: list[ScenarioAttribution] = []
    for name in sorted(dump.scenarios):
        if scenario is not None and name != scenario:
            continue
        per_phase: dict[str, list[float]] = {}
        messages = completed = 0
        total_latency = 0.0
        violations: list[int] = []
        for _, rec in dump.iter_records(name):
            if not rec.transitions:
                continue
            messages += 1
            if rec.completed:
                completed += 1
            total_latency += rec.latency
            if not check_conservation(rec):
                violations.append(rec.mid)
            for phase, duration in rec.phase_durations().items():
                per_phase.setdefault(phase, []).append(duration)
        phases = [
            PhaseSummary(
                phase=phase,
                count=len(samples),
                total=sum(samples),
                p50=quantile(samples, 0.50),
                p95=quantile(samples, 0.95),
                p99=quantile(samples, 0.99),
                max=max(samples),
            )
            for phase, samples in sorted(
                per_phase.items(), key=lambda kv: -sum(kv[1])
            )
        ]
        out.append(
            ScenarioAttribution(
                scenario=name,
                messages=messages,
                completed=completed,
                total_latency=total_latency,
                phases=phases,
                violations=violations,
            )
        )
    return out


def render_attribution(reports: list[ScenarioAttribution]) -> str:
    """ASCII waterfall tables, one per scenario."""
    lines: list[str] = []
    for rep in reports:
        lines.append(
            f"scenario {rep.scenario}: {rep.messages} messages "
            f"({rep.completed} completed), total latency {rep.total_latency:g}"
        )
        if rep.violations:
            lines.append(f"  CONSERVATION VIOLATED for mids {rep.violations[:10]}")
        lines.append(
            f"  {'phase':>10} {'msgs':>6} {'total':>10} {'share':>7} "
            f"{'p50':>8} {'p95':>8} {'p99':>8} {'max':>8}"
        )
        for ph in rep.phases:
            share = ph.total / rep.total_latency if rep.total_latency else 0.0
            lines.append(
                f"  {ph.phase:>10} {ph.count:>6} {ph.total:>10g} {share:>6.1%} "
                f"{ph.p50:>8g} {ph.p95:>8g} {ph.p99:>8g} {ph.max:>8g}"
            )
    return "\n".join(lines)

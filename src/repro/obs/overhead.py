"""Null-sink overhead micro-benchmark (CI-enforced).

The observability layer's contract is that *disabled* tracing is near
free. Two measurements back the claim, both over the engine micro
workload from ``benchmarks/test_engine_micro.py``:

* **probed vs bare** — the stock :class:`OptimisticMatcher` (whose
  ``post_receive``/``process_block`` carry ``@probe`` hook points,
  disabled by default) against a variant calling the undecorated
  originals (``__wrapped__``). The ratio is the full disabled-probe
  dispatch cost on the hot path.
* **dispatch cost** — nanoseconds per disabled probed call of a no-op
  function, for context.

CI runs ``python -m repro.obs.overhead --assert-max-overhead 0.05``:
the probed/bare ratio must stay under 1.05. Timings take the best of
``--repeat`` runs to shed scheduler noise; the workload is pure
simulated matching, so best-of is stable.

``--ledger`` switches to the flight-recorder contract
(:mod:`repro.obs.ledger`): a disabled :class:`NullRecorder` must be
near free. Because the pre-ledger code no longer exists to diff
against, the asserted number is a *dispatch bound*: the measured cost
of one ``recorder.enabled`` guard, times a deliberate overcount of the
guard sites a message crosses end to end, divided by the measured
per-message pipeline time. Disabled-vs-enabled wall timings ride along
as context (the enabled recorder is allowed to cost; the gate is on
the disabled path).

``--sampler`` applies the same dispatch-bound method to the timeline
sampler (:mod:`repro.obs.timeline`): hot loops guard on
``sampler.enabled``, a class attribute on :class:`NullSampler`, so the
disabled path allocates nothing and costs one attribute read per
guard site per round. The bound is guard cost x guard sites per
round, over the measured per-round pipeline time.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.config import EngineConfig
from repro.core.engine import OptimisticMatcher
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.obs.probe import active as probes_active
from repro.obs.probe import probe as probe_decorator

__all__ = [
    "run_ledger_overhead_bench",
    "run_overhead_bench",
    "run_sampler_overhead_bench",
    "main",
]

N_MESSAGES = 256


class _BareMatcher(OptimisticMatcher):
    """The engine with its probe wrappers stripped — the pre-obs code."""

    post_receive = OptimisticMatcher.post_receive.__wrapped__  # type: ignore[attr-defined]
    process_block = OptimisticMatcher.process_block.__wrapped__  # type: ignore[attr-defined]


def _drive(cls, rounds: int) -> None:
    for _ in range(rounds):
        engine = cls(EngineConfig(bins=64, block_threads=8, max_receives=2 * N_MESSAGES))
        for i in range(N_MESSAGES):
            engine.post_receive(ReceiveRequest(source=0, tag=i))
        for i in range(N_MESSAGES):
            engine.submit_message(MessageEnvelope(source=0, tag=i, send_seq=i))
        engine.process_all()


def _best_of(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _probe_dispatch_ns(repeat: int, calls: int = 200_000) -> float:
    """Extra nanoseconds a disabled probe adds to one no-op call."""

    def raw() -> None:
        pass

    probed = probe_decorator("obs.overhead.noop")(raw)

    def loop(fn):
        def run() -> None:
            for _ in range(calls):
                fn()

        return run

    t_raw = _best_of(loop(raw), repeat)
    t_probed = _best_of(loop(probed), repeat)
    return max(t_probed - t_raw, 0.0) / calls * 1e9


def run_overhead_bench(*, rounds: int = 8, repeat: int = 5) -> dict:
    """Measure the disabled-tracer overhead; returns a JSON-able dict."""
    if probes_active():
        raise RuntimeError("overhead bench requires probes to be disabled")
    # Interleave measurement order (bare first, then probed, repeated by
    # _best_of) so cache warm-up doesn't systematically favour one side.
    _drive(_BareMatcher, 1)
    _drive(OptimisticMatcher, 1)
    t_bare = _best_of(lambda: _drive(_BareMatcher, rounds), repeat)
    t_probed = _best_of(lambda: _drive(OptimisticMatcher, rounds), repeat)
    return {
        "benchmark": "obs-disabled-overhead",
        "workload": {"messages": N_MESSAGES, "rounds": rounds, "repeat": repeat},
        "bare_seconds": t_bare,
        "probed_seconds": t_probed,
        "overhead_fraction": t_probed / t_bare - 1.0,
        "probe_dispatch_ns": _probe_dispatch_ns(repeat),
    }


def _ledger_guard_ns(repeat: int, calls: int = 200_000) -> float:
    """Nanoseconds one ``recorder.enabled`` guard costs when disabled."""
    from repro.obs.ledger import NULL_RECORDER

    recorder = NULL_RECORDER

    def baseline() -> None:
        for _ in range(calls):
            pass

    def guarded() -> None:
        for _ in range(calls):
            if recorder.enabled:  # pragma: no cover - class attr is False
                raise AssertionError("NullRecorder reported enabled")

    t_base = _best_of(baseline, repeat)
    t_guarded = _best_of(guarded, repeat)
    return max(t_guarded - t_base, 0.0) / calls * 1e9


#: Deliberate overcount of ``recorder.enabled`` guard sites one message
#: crosses end to end (sender open, wire transmit, staging, CQ push,
#: receiver submit, engine consume/UMQ, completion, receive open/close,
#: plus pressure/recovery detours) — the dispatch bound stays
#: conservative even as instrumentation points are added.
LEDGER_GUARDS_PER_MESSAGE = 16


def run_ledger_overhead_bench(*, rounds: int = 6, repeat: int = 5) -> dict:
    """Measure the disabled flight-recorder overhead bound.

    ``overhead_fraction`` is the asserted number: guard dispatch cost
    x guard sites per message, as a fraction of the measured
    per-message pipeline time with the recorder disabled.
    """
    from repro.chaos.harness import ChaosConfig, run_chaos
    from repro.obs.ledger import FlightRecorder

    config = ChaosConfig(seed=3, rounds=rounds)
    report = run_chaos(config)  # warm-up; also counts the messages
    t_disabled = _best_of(lambda: run_chaos(config), repeat)
    t_enabled = _best_of(
        lambda: run_chaos(config, recorder=FlightRecorder()), repeat
    )
    guard_ns = _ledger_guard_ns(repeat)
    per_message = t_disabled / max(report.sent, 1)
    bound = guard_ns * 1e-9 * LEDGER_GUARDS_PER_MESSAGE / per_message
    return {
        "benchmark": "obs-ledger-disabled-overhead",
        "workload": {
            "rounds": rounds,
            "repeat": repeat,
            "messages_per_run": report.sent,
        },
        "disabled_seconds": t_disabled,
        "enabled_seconds": t_enabled,
        "enabled_overhead_fraction": t_enabled / t_disabled - 1.0,
        "guard_dispatch_ns": guard_ns,
        "guards_per_message": LEDGER_GUARDS_PER_MESSAGE,
        "per_message_seconds": per_message,
        "overhead_fraction": bound,
    }


def _sampler_guard_ns(repeat: int, calls: int = 200_000) -> float:
    """Nanoseconds one ``sampler.enabled`` guard costs when disabled."""
    from repro.obs.timeline import NULL_SAMPLER

    sampler = NULL_SAMPLER

    def baseline() -> None:
        for _ in range(calls):
            pass

    def guarded() -> None:
        for _ in range(calls):
            if sampler.enabled:  # pragma: no cover - class attr is False
                raise AssertionError("NullSampler reported enabled")

    t_base = _best_of(baseline, repeat)
    t_guarded = _best_of(guarded, repeat)
    return max(t_guarded - t_base, 0.0) / calls * 1e9


#: Deliberate overcount of ``sampler.enabled`` guard sites one pipeline
#: round crosses (harness install + per-round poll, cluster per-round
#: poll, final sample) — unlike the ledger, sampling guards are
#: per-*round*, not per-message, so the disabled cost amortizes over
#: every message in the round.
SAMPLER_GUARDS_PER_ROUND = 4


def run_sampler_overhead_bench(*, rounds: int = 6, repeat: int = 5) -> dict:
    """Measure the disabled timeline-sampler overhead bound.

    ``overhead_fraction`` is the asserted number: guard dispatch cost
    x guard sites per round, as a fraction of the measured per-round
    pipeline time with the sampler disabled (``NULL_SAMPLER``, the
    default). The disabled path holds no ring buffers and appends no
    samples — the guard read is its entire footprint.
    """
    from repro.chaos.harness import ChaosConfig, run_chaos
    from repro.obs.timeline import TimelineSampler

    config = ChaosConfig(seed=3, rounds=rounds)
    run_chaos(config)  # warm-up
    t_disabled = _best_of(lambda: run_chaos(config), repeat)
    t_enabled = _best_of(
        lambda: run_chaos(config, sampler=TimelineSampler(interval=0.0)), repeat
    )
    guard_ns = _sampler_guard_ns(repeat)
    per_round = t_disabled / max(rounds, 1)
    bound = guard_ns * 1e-9 * SAMPLER_GUARDS_PER_ROUND / per_round
    return {
        "benchmark": "obs-sampler-disabled-overhead",
        "workload": {"rounds": rounds, "repeat": repeat},
        "disabled_seconds": t_disabled,
        "enabled_seconds": t_enabled,
        "enabled_overhead_fraction": t_enabled / t_disabled - 1.0,
        "guard_dispatch_ns": guard_ns,
        "guards_per_round": SAMPLER_GUARDS_PER_ROUND,
        "per_round_seconds": per_round,
        "overhead_fraction": bound,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=8, help="engine runs per timing")
    parser.add_argument("--repeat", type=int, default=5, help="timings (best-of)")
    parser.add_argument(
        "--assert-max-overhead",
        type=float,
        default=None,
        metavar="FRACTION",
        help="exit nonzero if probed/bare - 1 exceeds this",
    )
    parser.add_argument("--json", action="store_true", help="emit the result as JSON")
    parser.add_argument(
        "--ledger",
        action="store_true",
        help="measure the disabled flight-recorder (NullRecorder) "
        "dispatch bound over the chaos pipeline instead of the probe "
        "overhead",
    )
    parser.add_argument(
        "--sampler",
        action="store_true",
        help="measure the disabled timeline-sampler (NullSampler) "
        "dispatch bound over the chaos pipeline instead of the probe "
        "overhead",
    )
    args = parser.parse_args(argv)
    if args.ledger and args.sampler:
        print("--ledger and --sampler are mutually exclusive", file=sys.stderr)
        return 2
    if args.ledger:
        result = run_ledger_overhead_bench(
            rounds=min(args.rounds, 8), repeat=args.repeat
        )
    elif args.sampler:
        result = run_sampler_overhead_bench(
            rounds=min(args.rounds, 8), repeat=args.repeat
        )
    else:
        result = run_overhead_bench(rounds=args.rounds, repeat=args.repeat)
    if args.json:
        print(json.dumps(result, indent=2))
    elif args.sampler:
        print(
            f"disabled: {result['disabled_seconds'] * 1e3:.1f} ms | "
            f"enabled: {result['enabled_seconds'] * 1e3:.1f} ms "
            f"({result['enabled_overhead_fraction'] * 100:+.1f}%) | "
            f"guard: {result['guard_dispatch_ns']:.0f} ns x "
            f"{result['guards_per_round']}/round | "
            f"disabled bound: {result['overhead_fraction'] * 100:.4f}%"
        )
    elif args.ledger:
        print(
            f"disabled: {result['disabled_seconds'] * 1e3:.1f} ms | "
            f"enabled: {result['enabled_seconds'] * 1e3:.1f} ms "
            f"({result['enabled_overhead_fraction'] * 100:+.1f}%) | "
            f"guard: {result['guard_dispatch_ns']:.0f} ns x "
            f"{result['guards_per_message']}/msg | "
            f"disabled bound: {result['overhead_fraction'] * 100:.4f}%"
        )
    else:
        print(
            f"bare: {result['bare_seconds'] * 1e3:.1f} ms | "
            f"probed (disabled): {result['probed_seconds'] * 1e3:.1f} ms | "
            f"overhead: {result['overhead_fraction'] * 100:+.2f}% | "
            f"probe dispatch: {result['probe_dispatch_ns']:.0f} ns/call"
        )
    if (
        args.assert_max_overhead is not None
        and result["overhead_fraction"] > args.assert_max_overhead
    ):
        what = (
            "flight-recorder"
            if args.ledger
            else "timeline-sampler" if args.sampler else "disabled-tracer"
        )
        print(
            f"FAIL: {what} overhead {result['overhead_fraction']:.3f} "
            f"exceeds budget {args.assert_max_overhead:.3f}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

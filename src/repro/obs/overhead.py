"""Null-sink overhead micro-benchmark (CI-enforced).

The observability layer's contract is that *disabled* tracing is near
free. Two measurements back the claim, both over the engine micro
workload from ``benchmarks/test_engine_micro.py``:

* **probed vs bare** — the stock :class:`OptimisticMatcher` (whose
  ``post_receive``/``process_block`` carry ``@probe`` hook points,
  disabled by default) against a variant calling the undecorated
  originals (``__wrapped__``). The ratio is the full disabled-probe
  dispatch cost on the hot path.
* **dispatch cost** — nanoseconds per disabled probed call of a no-op
  function, for context.

CI runs ``python -m repro.obs.overhead --assert-max-overhead 0.05``:
the probed/bare ratio must stay under 1.05. Timings take the best of
``--repeat`` runs to shed scheduler noise; the workload is pure
simulated matching, so best-of is stable.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.config import EngineConfig
from repro.core.engine import OptimisticMatcher
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.obs.probe import active as probes_active
from repro.obs.probe import probe as probe_decorator

__all__ = ["run_overhead_bench", "main"]

N_MESSAGES = 256


class _BareMatcher(OptimisticMatcher):
    """The engine with its probe wrappers stripped — the pre-obs code."""

    post_receive = OptimisticMatcher.post_receive.__wrapped__  # type: ignore[attr-defined]
    process_block = OptimisticMatcher.process_block.__wrapped__  # type: ignore[attr-defined]


def _drive(cls, rounds: int) -> None:
    for _ in range(rounds):
        engine = cls(EngineConfig(bins=64, block_threads=8, max_receives=2 * N_MESSAGES))
        for i in range(N_MESSAGES):
            engine.post_receive(ReceiveRequest(source=0, tag=i))
        for i in range(N_MESSAGES):
            engine.submit_message(MessageEnvelope(source=0, tag=i, send_seq=i))
        engine.process_all()


def _best_of(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _probe_dispatch_ns(repeat: int, calls: int = 200_000) -> float:
    """Extra nanoseconds a disabled probe adds to one no-op call."""

    def raw() -> None:
        pass

    probed = probe_decorator("obs.overhead.noop")(raw)

    def loop(fn):
        def run() -> None:
            for _ in range(calls):
                fn()

        return run

    t_raw = _best_of(loop(raw), repeat)
    t_probed = _best_of(loop(probed), repeat)
    return max(t_probed - t_raw, 0.0) / calls * 1e9


def run_overhead_bench(*, rounds: int = 8, repeat: int = 5) -> dict:
    """Measure the disabled-tracer overhead; returns a JSON-able dict."""
    if probes_active():
        raise RuntimeError("overhead bench requires probes to be disabled")
    # Interleave measurement order (bare first, then probed, repeated by
    # _best_of) so cache warm-up doesn't systematically favour one side.
    _drive(_BareMatcher, 1)
    _drive(OptimisticMatcher, 1)
    t_bare = _best_of(lambda: _drive(_BareMatcher, rounds), repeat)
    t_probed = _best_of(lambda: _drive(OptimisticMatcher, rounds), repeat)
    return {
        "benchmark": "obs-disabled-overhead",
        "workload": {"messages": N_MESSAGES, "rounds": rounds, "repeat": repeat},
        "bare_seconds": t_bare,
        "probed_seconds": t_probed,
        "overhead_fraction": t_probed / t_bare - 1.0,
        "probe_dispatch_ns": _probe_dispatch_ns(repeat),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=8, help="engine runs per timing")
    parser.add_argument("--repeat", type=int, default=5, help="timings (best-of)")
    parser.add_argument(
        "--assert-max-overhead",
        type=float,
        default=None,
        metavar="FRACTION",
        help="exit nonzero if probed/bare - 1 exceeds this",
    )
    parser.add_argument("--json", action="store_true", help="emit the result as JSON")
    args = parser.parse_args(argv)
    result = run_overhead_bench(rounds=args.rounds, repeat=args.repeat)
    if args.json:
        print(json.dumps(result, indent=2))
    else:
        print(
            f"bare: {result['bare_seconds'] * 1e3:.1f} ms | "
            f"probed (disabled): {result['probed_seconds'] * 1e3:.1f} ms | "
            f"overhead: {result['overhead_fraction'] * 100:+.2f}% | "
            f"probe dispatch: {result['probe_dispatch_ns']:.0f} ns/call"
        )
    if (
        args.assert_max_overhead is not None
        and result["overhead_fraction"] > args.assert_max_overhead
    ):
        print(
            f"FAIL: disabled-tracer overhead {result['overhead_fraction']:.3f} "
            f"exceeds budget {args.assert_max_overhead:.3f}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Critical-path analysis over a finished run's ledger.

A run's *makespan* is the span from the first record opening to the
last record completing. The analyzer reconstructs, for each of the
top-k latest-completing messages, a **contiguous causal chain** of
segments covering ``[earliest open, that completion]``:

* inside a record, the chain follows its own phase segments (the
  message was *doing* something — in a bounce buffer, in the UMQ,
  being retransmitted);
* at a record's opening it jumps to the **program-order predecessor**
  — the record with the latest opening at or before that instant
  (ties by mid). This is the serialization edge of the simulated
  world: what the pipeline was occupied with while this message did
  not yet exist;
* if the predecessor completed before the jump instant, the gap is a
  ``via="program-order"`` segment (scheduling idle between bursts).

Because each step covers a contiguous earlier interval and the walk
terminates at the globally earliest opening, segment durations sum to
**exactly** the chain's span — the top chain's length equals the
makespan by construction.

Causal annotations recorded by the layers (``retransmit``, ``rnr``,
``timeout``, ``credit_stall``, ``rollback``, ``evicted`` …) are
attached to the segment containing their timestamp, so the rendered
chain explains *why* each hop was slow, not just where time went.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field

from repro.obs.ledger import LedgerDump, MessageRecord

__all__ = ["ChainSegment", "CriticalChain", "critical_path", "render_chains"]


@dataclass(slots=True)
class ChainSegment:
    """One hop of a causal chain: ``[t0, t1)`` attributed to a phase."""

    t0: float
    t1: float
    mid: int
    phase: str
    label: str = ""
    #: "program-order" for predecessor-gap hops, "" for own segments.
    via: str = ""
    #: annotation names (with counts folded in) inside this window.
    events: list[str] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass(slots=True)
class CriticalChain:
    """A contiguous causal chain ending at one completion."""

    scenario: str
    end_mid: int
    start: float
    end: float
    segments: list[ChainSegment] = field(default_factory=list)

    @property
    def total(self) -> float:
        return self.end - self.start

    def conserved(self) -> bool:
        """Segment durations span the chain exactly (float-rounding slack
        only — the walk covers a contiguous interval by construction)."""
        total = math.fsum(s.duration for s in self.segments)
        return math.isclose(total, self.total, rel_tol=1e-12, abs_tol=1e-12)


def _events_in(rec: MessageRecord, t0: float, t1: float) -> list[str]:
    names: dict[str, int] = {}
    for ts, name, _ in rec.events:
        if t0 <= ts <= t1:
            names[name] = names.get(name, 0) + 1
    return [n if c == 1 else f"{n}x{c}" for n, c in names.items()]


def _clipped_segments(
    rec: MessageRecord, lo: float, hi: float, via: str = ""
) -> list[ChainSegment]:
    """Record segments clipped to ``[lo, hi]`` (zero-length dropped)."""
    out: list[ChainSegment] = []
    for t0, t1, phase in rec.segments():
        a, b = max(t0, lo), min(t1, hi)
        if b > a:
            out.append(
                ChainSegment(
                    t0=a,
                    t1=b,
                    mid=rec.mid,
                    phase=phase,
                    label=rec.label,
                    via=via,
                    events=_events_in(rec, a, b),
                )
            )
    return out


def _build_chain(
    scenario: str,
    ordered: list[MessageRecord],
    opens: list[tuple[float, int]],
    target: MessageRecord,
) -> CriticalChain:
    """Walk backward from ``target``'s completion to the earliest open."""
    global_min = opens[0][0]
    segments: list[ChainSegment] = []
    cur = target
    hi = cur.end_ts
    while True:
        lo = cur.open_ts
        segments.extend(reversed(_clipped_segments(cur, lo, hi)))
        # Program-order predecessor: latest (open, mid) strictly below
        # ours. Strict lexicographic decrease guarantees termination.
        idx = bisect_right(opens, (cur.open_ts, cur.mid)) - 2
        if idx < 0:
            break
        pred = ordered[idx]
        if pred.end_ts < lo:
            # The pipeline was idle between pred's completion and this
            # record's birth: a scheduling gap on the program-order edge.
            segments.append(
                ChainSegment(
                    t0=pred.end_ts,
                    t1=lo,
                    mid=pred.mid,
                    phase="idle",
                    label=pred.label,
                    via="program-order",
                )
            )
        hi = min(pred.end_ts, lo)
        cur = pred
    segments.reverse()
    return CriticalChain(
        scenario=scenario,
        end_mid=target.mid,
        start=global_min,
        end=target.end_ts,
        segments=segments,
    )


def critical_path(
    dump: LedgerDump, *, scenario: str | None = None, k: int = 3
) -> list[CriticalChain]:
    """Top-k causal chains per scenario, longest (latest-ending) first.

    The first chain of each scenario spans the scenario's full
    makespan exactly (``chain.total == max end - min open``).
    """
    chains: list[CriticalChain] = []
    for name in sorted(dump.scenarios):
        if scenario is not None and name != scenario:
            continue
        records = [rec for _, rec in dump.iter_records(name) if rec.transitions]
        if not records:
            continue
        ordered = sorted(records, key=lambda r: (r.open_ts, r.mid))
        opens = [(r.open_ts, r.mid) for r in ordered]
        enders = sorted(records, key=lambda r: (r.end_ts, r.mid), reverse=True)
        for target in enders[: max(1, k)]:
            chains.append(_build_chain(name, ordered, opens, target))
    return chains


def render_chains(chains: list[CriticalChain], *, width: int = 8) -> str:
    lines: list[str] = []
    for chain in chains:
        label = _end_label(chain)
        ident = f" ({label})" if label else ""
        conserved = "conserved" if chain.conserved() else "NOT CONSERVED"
        lines.append(
            f"scenario {chain.scenario}: chain -> mid {chain.end_mid}{ident} "
            f"span [{chain.start:g}, {chain.end:g}] total {chain.total:g} "
            f"({len(chain.segments)} segments, {conserved})"
        )
        for seg in chain.segments:
            who = seg.label or f"mid{seg.mid}"
            via = f" via={seg.via}" if seg.via else ""
            notes = f"  [{', '.join(seg.events)}]" if seg.events else ""
            lines.append(
                f"  {seg.t0:>{width}g} +{seg.duration:<{width}g} "
                f"{seg.phase:>10} {who}{via}{notes}"
            )
    return "\n".join(lines)


def _end_label(chain: CriticalChain) -> str:
    for seg in reversed(chain.segments):
        if seg.mid == chain.end_mid and seg.label:
            return seg.label
    return ""

"""Per-message flight recorder: the lifecycle ledger (tentpole of the
observability layer's second act).

Every message that enters the offload pipeline is assigned a globally
unique ``mid`` and a :class:`MessageRecord` — an append-only list of
simulated-time *phase transitions* stamped at each layer the message
crosses::

    send -> wire -> staged -> cq -> engine -> matched -> complete
                                  \\-> umq [-> parked -> umq] -> matched
                                               matched -> rdma_read -> complete

Transitions are the conserved currency: a phase's duration is the gap
to the *next* transition, so per-phase durations telescope to exactly
``end - start`` — attribution is conserved by construction, not by
bookkeeping (see :mod:`repro.obs.attribution`). Layers that want to
explain *why* a phase was slow attach :meth:`FlightRecorder.note`
annotations (retransmit rounds, RNR stalls, credit stalls, block
rollbacks, evictions); annotations are side-band events and never
perturb the waterfall.

The recorder owns the run's simulated clock (:meth:`set_clock`): the
chaos harness points it at the reliable wire's tick counter, the DPA
machine at its cycle-derived microsecond clock. Layers below never
need a clock of their own.

:class:`NullRecorder` mirrors the :class:`repro.obs.trace.NullTracer`
contract — ``enabled`` is a class attribute, every method is a no-op,
and the shared :data:`NULL_RECORDER` keeps the disabled path
allocation-free. Hot paths guard with ``if recorder.enabled:``.

A finished run exports a :class:`LedgerDump` (schema
``repro.obs.ledger/v1``) — scenario-keyed, JSON round-trippable, and
registered with the fleet result codec so ledgers flow through the
content-addressed cache like any other result.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "PHASES",
    "FlightRecorder",
    "LedgerDump",
    "MessageRecord",
    "NULL_RECORDER",
    "NullRecorder",
]

SCHEMA = "repro.obs.ledger/v1"

#: Canonical phase vocabulary (a transition *into* phase ``p`` opens
#: ``p``; its duration runs until the next transition). ``staged``
#: detail says bounce vs host; ``matched`` detail carries the
#: resolution path (optimistic/fast/slow/serial/host).
PHASES: tuple[str, ...] = (
    "send",  # posted at the sender (record opens here)
    "wire",  # sequenced onto the reliable wire (PSN assigned)
    "staged",  # landed in a bounce buffer / host spill staging
    "cq",  # completion queue entry pushed
    "engine",  # submitted to the matching engine
    "umq",  # stored unexpected (UMQ residency)
    "parked",  # evicted to host under memory pressure
    "matched",  # paired with a receive (detail: resolution path)
    "rdma_read",  # rendezvous one-sided read in flight
    "complete",  # delivery observable by the application
)


class MessageRecord:
    """One message's flight record: monotone phase transitions plus
    side-band annotation events."""

    __slots__ = ("mid", "source", "tag", "size", "protocol", "label",
                 "transitions", "events")

    def __init__(
        self,
        mid: int,
        *,
        source: int = -1,
        tag: int = -1,
        size: int = 0,
        protocol: str = "eager",
        label: str = "",
    ) -> None:
        self.mid = mid
        self.source = source
        self.tag = tag
        self.size = size
        self.protocol = protocol
        self.label = label
        #: [(ts, phase, detail-dict-or-None), ...] — ts non-decreasing.
        self.transitions: list[tuple[float, str, dict | None]] = []
        #: [(ts, name, detail-dict-or-None), ...] — annotations only.
        self.events: list[tuple[float, str, dict | None]] = []

    # -- derived views ---------------------------------------------------

    @property
    def open_ts(self) -> float:
        return self.transitions[0][0]

    @property
    def end_ts(self) -> float:
        return self.transitions[-1][0]

    @property
    def latency(self) -> float:
        return self.end_ts - self.open_ts

    @property
    def completed(self) -> bool:
        return bool(self.transitions) and self.transitions[-1][1] == "complete"

    def segments(self) -> list[tuple[float, float, str]]:
        """Phase occupancy intervals ``(t0, t1, phase)``.

        Consecutive-transition gaps: segment *i* runs from transition
        *i* to transition *i+1* and is attributed to the phase entered
        at *i*. Durations telescope to exactly ``latency``.
        """
        tr = self.transitions
        return [
            (tr[i][0], tr[i + 1][0], tr[i][1]) for i in range(len(tr) - 1)
        ]

    def phase_durations(self) -> dict[str, float]:
        """Total time attributed to each phase (conserved waterfall)."""
        out: dict[str, float] = {}
        for t0, t1, phase in self.segments():
            out[phase] = out.get(phase, 0.0) + (t1 - t0)
        return out

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "mid": self.mid,
            "source": self.source,
            "tag": self.tag,
            "size": self.size,
            "protocol": self.protocol,
            "label": self.label,
            "transitions": [
                [ts, phase, detail or {}] for ts, phase, detail in self.transitions
            ],
            "events": [
                [ts, name, detail or {}] for ts, name, detail in self.events
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MessageRecord":
        rec = cls(
            int(payload["mid"]),
            source=int(payload.get("source", -1)),
            tag=int(payload.get("tag", -1)),
            size=int(payload.get("size", 0)),
            protocol=str(payload.get("protocol", "eager")),
            label=str(payload.get("label", "")),
        )
        rec.transitions = [
            (float(ts), str(phase), dict(detail) or None)
            for ts, phase, detail in payload.get("transitions", ())
        ]
        rec.events = [
            (float(ts), str(name), dict(detail) or None)
            for ts, name, detail in payload.get("events", ())
        ]
        return rec


class FlightRecorder:
    """Assigns mids, stamps transitions, exports the ledger.

    The recorder is the single source of simulated time for every
    layer it instruments: attach the run's clock with
    :meth:`set_clock` before traffic starts. Without a clock all
    stamps read 0.0 (records still order correctly by insertion).
    """

    #: Class attribute so the disabled check never costs an instance
    #: dict lookup (mirrors ``NullTracer.enabled``).
    enabled = True

    def __init__(self) -> None:
        self._clock: Callable[[], float] | None = None
        self._next_mid = 0
        self.records: dict[int, MessageRecord] = {}
        #: Run-level events (host takeover, re-offload, recovery
        #: epochs) that belong to no single message.
        self.events: list[tuple[float, str, dict | None]] = []
        #: Receive-posting ledger rows (the ReceiveRequest side).
        self.receives: list[dict] = []
        self._labels: dict[str, int] = {}
        self._open_receives: dict[int, list[int]] = {}

    # -- clock -----------------------------------------------------------

    def set_clock(self, clock: Callable[[], float] | None) -> None:
        """Point the recorder at the run's simulated clock."""
        self._clock = clock

    def now(self) -> float:
        clock = self._clock
        return float(clock()) if clock is not None else 0.0

    # -- message lifecycle ----------------------------------------------

    def new_mid(self) -> int:
        mid = self._next_mid
        self._next_mid += 1
        return mid

    def open(
        self,
        *,
        source: int,
        tag: int,
        size: int = 0,
        protocol: str = "eager",
    ) -> int:
        """Open a record (stamps the ``send`` transition); returns mid."""
        mid = self.new_mid()
        rec = MessageRecord(
            mid, source=source, tag=tag, size=size, protocol=protocol
        )
        rec.transitions.append((self.now(), "send", None))
        self.records[mid] = rec
        return mid

    def stamp(self, mid: int, phase: str, **detail: Any) -> None:
        """Record a phase transition.

        Unknown mids are ignored (a layer may see foreign traffic);
        consecutive identical phases dedupe (double-stamping ``umq``
        from two layers is safe); timestamps are clamped monotone
        within a record so attribution segments never go negative.
        """
        self.stamp_at(mid, phase, self.now(), **detail)

    def stamp_at(self, mid: int, phase: str, ts: float, **detail: Any) -> None:
        """Record a phase transition at an explicit timestamp.

        The fabric layer uses this to close a message's wire phase at
        its *true* arrival tick rather than at the (possibly later)
        tick the delivery was polled — the hook that makes per-hop
        wire attribution telescope exactly. Same dedupe / monotone /
        post-complete rules as :meth:`stamp`.
        """
        rec = self.records.get(mid)
        if rec is None:
            return
        ts = float(ts)
        tr = rec.transitions
        if tr:
            last_ts, last_phase, _ = tr[-1]
            if last_phase == phase:
                return
            if last_phase == "complete":
                return
            if ts < last_ts:
                ts = last_ts
        tr.append((ts, phase, detail or None))

    def phase_of(self, mid: int) -> str:
        """The phase ``mid`` currently occupies ("" when unknown)."""
        rec = self.records.get(mid)
        if rec is None or not rec.transitions:
            return ""
        return rec.transitions[-1][1]

    def complete(self, mid: int) -> None:
        self.stamp(mid, "complete")

    def note(self, mid: int, name: str, **detail: Any) -> None:
        """Attach a side-band annotation (never alters the waterfall)."""
        rec = self.records.get(mid)
        if rec is None:
            return
        rec.events.append((self.now(), name, detail or None))

    def mark(self, mid: int) -> int:
        """Transition high-water mark, for speculative block attempts."""
        rec = self.records.get(mid)
        return len(rec.transitions) if rec is not None else 0

    def rewind(self, mid: int, mark: int) -> None:
        """Discard transitions stamped after ``mark`` (a rolled-back
        block attempt's stamps must not pollute the waterfall — the
        replay's stamps are authoritative; the rollback itself is
        recorded as a :meth:`note`)."""
        rec = self.records.get(mid)
        if rec is not None and len(rec.transitions) > mark:
            del rec.transitions[mark:]

    def label(self, mid: int, ident: str) -> None:
        """Bind a human-readable identity (e.g. ``"rank:seq"``)."""
        rec = self.records.get(mid)
        if rec is None:
            return
        rec.label = ident
        self._labels[ident] = mid

    def passport(self, ident: str) -> dict | None:
        """The full lifecycle of the message labeled ``ident``."""
        mid = self._labels.get(ident)
        if mid is None:
            return None
        return self.records[mid].to_dict()

    # -- receive lifecycle ----------------------------------------------

    def open_receive(self, handle: int, *, source: int, tag: int) -> None:
        row = {
            "handle": handle,
            "source": source,
            "tag": tag,
            "posted": self.now(),
            "completed": None,
            "mid": -1,
        }
        self._open_receives.setdefault(handle, []).append(len(self.receives))
        self.receives.append(row)

    def close_receive(self, handle: int, mid: int = -1) -> None:
        stack = self._open_receives.get(handle)
        if not stack:
            return
        row = self.receives[stack.pop(0)]
        row["completed"] = self.now()
        row["mid"] = mid

    # -- run-level events ------------------------------------------------

    def event(self, name: str, **detail: Any) -> None:
        self.events.append((self.now(), name, detail or None))

    # -- export ----------------------------------------------------------

    def export(self, scenario: str = "run") -> "LedgerDump":
        return LedgerDump(
            scenarios={
                scenario: {
                    "records": [r.to_dict() for r in self.records.values()],
                    "events": [
                        [ts, name, detail or {}]
                        for ts, name, detail in self.events
                    ],
                    "receives": list(self.receives),
                }
            }
        )


class NullRecorder(FlightRecorder):
    """Disabled recorder: every operation is an allocation-free no-op."""

    enabled = False

    def __init__(self) -> None:  # no per-instance state at all
        pass

    def set_clock(self, clock) -> None:
        pass

    def now(self) -> float:
        return 0.0

    def new_mid(self) -> int:
        return -1

    def open(self, **kwargs: Any) -> int:
        return -1

    def stamp(self, mid: int, phase: str, **detail: Any) -> None:
        pass

    def stamp_at(self, mid: int, phase: str, ts: float, **detail: Any) -> None:
        pass

    def phase_of(self, mid: int) -> str:
        return ""

    def complete(self, mid: int) -> None:
        pass

    def note(self, mid: int, name: str, **detail: Any) -> None:
        pass

    def mark(self, mid: int) -> int:
        return 0

    def rewind(self, mid: int, mark: int) -> None:
        pass

    def label(self, mid: int, ident: str) -> None:
        pass

    def passport(self, ident: str) -> dict | None:
        return None

    def open_receive(self, handle: int, *, source: int, tag: int) -> None:
        pass

    def close_receive(self, handle: int, mid: int = -1) -> None:
        pass

    def event(self, name: str, **detail: Any) -> None:
        pass

    def export(self, scenario: str = "run") -> "LedgerDump":
        return LedgerDump()


#: Shared no-op instance: the default for every ``recorder=`` keyword.
NULL_RECORDER = NullRecorder()


@dataclass(slots=True)
class LedgerDump:
    """Scenario-keyed ledger export (fleet-codec round-trippable)."""

    scenarios: dict[str, dict] = field(default_factory=dict)

    def merge(self, other: "LedgerDump") -> "LedgerDump":
        """Union of scenarios; duplicate keys are suffixed, not lost."""
        merged = dict(self.scenarios)
        for name, payload in other.scenarios.items():
            key = name
            n = 2
            while key in merged:
                key = f"{name}#{n}"
                n += 1
            merged[key] = payload
        return LedgerDump(scenarios=merged)

    def iter_records(
        self, scenario: str | None = None
    ) -> Iterator[tuple[str, MessageRecord]]:
        """Yield ``(scenario, record)`` over (a subset of) the dump."""
        for name, payload in self.scenarios.items():
            if scenario is not None and name != scenario:
                continue
            for rec in payload.get("records", ()):
                yield name, MessageRecord.from_dict(rec)

    def to_dict(self) -> dict:
        return {"schema": SCHEMA, "scenarios": self.scenarios}

    @classmethod
    def from_dict(cls, payload: dict) -> "LedgerDump":
        schema = payload.get("schema")
        if schema != SCHEMA:
            raise ValueError(f"expected {SCHEMA}, got {schema!r}")
        return cls(scenarios=dict(payload["scenarios"]))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "LedgerDump":
        return cls.from_dict(json.loads(text))

"""Chrome ``trace_event`` schema validation for emitted traces.

CI runs this against every trace the soak/benchmarks emit so that a
refactor cannot silently produce files Perfetto rejects. Checks are
structural, not semantic:

* top level is ``{"traceEvents": [...]}`` (or a bare event array);
* every event has ``name``/``ph``/``pid``/``tid`` and, for non-M
  phases, a numeric non-negative ``ts``;
* per (pid, tid) track, timestamps are monotonically non-decreasing
  in emission order (simulated clocks may repeat an instant, never
  rewind);
* ``B``/``E`` begin/end events are balanced per track;
* flow events (``s``/``t``/``f``) and async spans (``b``/``n``/``e``)
  carry an ``id``, and every flow step/finish follows a start for its
  (cat, id) — the ledger's per-message flow exports are first-class
  citizens, not "unknown events".

Usage::

    PYTHONPATH=src python -m repro.obs.validate trace.json [more.json ...]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["validate_chrome_trace", "main"]

_PHASES = frozenset("XBEiICMstfbenOPSTFpRcv(")
#: Phases that must carry an ``id`` (flow events + modern async spans).
_ID_PHASES = frozenset("stfbne")


def validate_chrome_trace(payload) -> list[str]:
    """All structural violations in one parsed trace (empty = valid)."""
    errors: list[str] = []
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object has no 'traceEvents' list"]
    elif isinstance(payload, list):
        events = payload
    else:
        return [f"trace must be an object or array, got {type(payload).__name__}"]

    last_ts: dict[tuple, float] = {}
    open_depth: dict[tuple, int] = {}
    open_flows: set[tuple] = set()
    for i, event in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                errors.append(f"{where}: missing required key {key!r}")
        ph = event.get("ph")
        if not isinstance(ph, str) or ph not in _PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue  # metadata events carry no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            errors.append(f"{where}: 'ts' must be a non-negative number, got {ts!r}")
            continue
        track = (event.get("pid"), event.get("tid"))
        previous = last_ts.get(track)
        if previous is not None and ts < previous:
            errors.append(
                f"{where}: ts {ts} goes backwards on track pid={track[0]} "
                f"tid={track[1]} (previous {previous})"
            )
        last_ts[track] = float(ts)
        if ph in _ID_PHASES:
            if "id" not in event:
                errors.append(f"{where}: {ph!r} event needs an 'id'")
            elif ph in "stf":
                flow = (event.get("cat"), event["id"])
                if ph == "s":
                    open_flows.add(flow)
                elif flow not in open_flows:
                    errors.append(
                        f"{where}: flow {ph!r} for cat={flow[0]!r} id={flow[1]!r} "
                        "has no preceding 's' start"
                    )
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                errors.append(f"{where}: complete event needs non-negative 'dur'")
        elif ph == "B":
            open_depth[track] = open_depth.get(track, 0) + 1
        elif ph == "E":
            depth = open_depth.get(track, 0)
            if depth <= 0:
                errors.append(
                    f"{where}: 'E' with no open 'B' on track pid={track[0]} "
                    f"tid={track[1]}"
                )
            else:
                open_depth[track] = depth - 1
    for track, depth in sorted(open_depth.items(), key=str):
        if depth:
            errors.append(
                f"track pid={track[0]} tid={track[1]}: {depth} unclosed 'B' span(s)"
            )
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="+", type=Path, help="trace JSON files")
    args = parser.parse_args(argv)
    failed = 0
    for path in args.paths:
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable ({exc})", file=sys.stderr)
            failed += 1
            continue
        errors = validate_chrome_trace(payload)
        if errors:
            failed += 1
            for error in errors[:20]:
                print(f"{path}: {error}", file=sys.stderr)
            if len(errors) > 20:
                print(f"{path}: ... and {len(errors) - 20} more", file=sys.stderr)
        else:
            events = payload["traceEvents"] if isinstance(payload, dict) else payload
            print(f"{path}: ok ({len(events)} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())

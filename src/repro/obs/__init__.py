"""``repro.obs`` — unified simulated-time observability.

One layer, three concerns:

* :mod:`repro.obs.registry` — metrics (Counter / Gauge / Histogram
  with labels; associative snapshot merge; JSON export);
* :mod:`repro.obs.trace` — span tracing stamped in *simulated* clocks
  (DPA cycles, reliability ticks, virtual walltime), exported as
  Chrome ``trace_event`` JSON for Perfetto;
* :mod:`repro.obs.probe` — ``@probe`` hook points with a null-sink
  fast path (disabled tracing is near free; CI enforces the bound via
  :mod:`repro.obs.overhead`);
* :mod:`repro.obs.ledger` — the per-message flight recorder: every
  message gets a lifecycle record of simulated-time phase transitions
  across the whole offload stack, analyzed by
  :mod:`repro.obs.attribution` (conserved latency waterfall),
  :mod:`repro.obs.critpath` (critical-path chains), and
  :mod:`repro.obs.flows` (Perfetto flow-event export) — all reachable
  via the ``repro-obs`` CLI (:mod:`repro.obs.cli`).

* :mod:`repro.obs.timeline` — the simulated-clock time-series sampler:
  registered gauges polled into bounded rings, rendered as terminal
  sparklines or exported as Perfetto counter tracks;
* :mod:`repro.obs.health` — the streaming rules engine over sampled
  series (threshold with hysteresis, rate-of-change, EWMA drift)
  emitting typed :class:`~repro.obs.health.HealthEvent` alarms.

Adapters for the existing stack live in :mod:`repro.obs.hooks`;
``python -m repro.obs.report`` renders metric snapshots in the
terminal and ``python -m repro.obs.validate`` checks emitted traces.
"""

from repro.obs.hooks import (
    DegradedWindowWatcher,
    EngineTraceObserver,
    attach_engine_observer,
    register_stack_metrics,
)
from repro.obs.health import (
    DriftRule,
    HealthEvent,
    HealthMonitor,
    HealthReport,
    HealthRule,
    RateRule,
    Severity,
    ThresholdRule,
    default_rules,
)
from repro.obs.ledger import (
    NULL_RECORDER,
    FlightRecorder,
    LedgerDump,
    MessageRecord,
    NullRecorder,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
# NOTE: the ``probe`` decorator is deliberately *not* re-exported here —
# the package attribute must keep naming the ``repro.obs.probe`` submodule
# (``from repro.obs import probe``); import the decorator from there.
from repro.obs.probe import subscribe, subscribed
from repro.obs.timeline import (
    NULL_SAMPLER,
    NullSampler,
    Timeline,
    TimelineSampler,
    TimeSeries,
    install_stack_probes,
    timeline_to_chrome,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    ScopedTracer,
    SpanTracer,
    mpi_trace_to_chrome,
)
from repro.obs.validate import validate_chrome_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "SpanTracer",
    "NullTracer",
    "NULL_TRACER",
    "ScopedTracer",
    "mpi_trace_to_chrome",
    "subscribe",
    "subscribed",
    "validate_chrome_trace",
    "EngineTraceObserver",
    "attach_engine_observer",
    "DegradedWindowWatcher",
    "register_stack_metrics",
    "FlightRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "MessageRecord",
    "LedgerDump",
    "TimeSeries",
    "Timeline",
    "TimelineSampler",
    "NullSampler",
    "NULL_SAMPLER",
    "install_stack_probes",
    "timeline_to_chrome",
    "HealthEvent",
    "HealthMonitor",
    "HealthReport",
    "HealthRule",
    "ThresholdRule",
    "RateRule",
    "DriftRule",
    "Severity",
    "default_rules",
]

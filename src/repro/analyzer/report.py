"""Result formatting: the rows and series behind Figures 6-7 and
Table II.

Every figure/table the evaluation section reports has a ``format_*``
function here producing the same rows as plain text, so benchmark runs
regenerate the paper elements directly on stdout.
"""

from __future__ import annotations

import math

from repro.analyzer.statistics import AppAnalysis
from repro.dpa.memory import KIB, MemoryModel
from repro.traces.model import OpGroup
from repro.traces.synthetic import APPLICATIONS

__all__ = [
    "figure6_rows",
    "format_figure6",
    "figure7_rows",
    "format_figure7",
    "table2_rows",
    "format_table2",
    "depth_reduction_summary",
    "memory_rows",
    "format_memory",
]


def figure6_rows(analyses: dict[str, AppAnalysis]) -> list[tuple[str, float, float, float]]:
    """(app, p2p%, collective%, one-sided%) per application."""
    rows = []
    for name, analysis in analyses.items():
        mix = analysis.call_mix
        rows.append(
            (
                name,
                100.0 * mix.get(OpGroup.P2P, 0.0),
                100.0 * mix.get(OpGroup.COLLECTIVE, 0.0),
                100.0 * mix.get(OpGroup.ONE_SIDED, 0.0),
            )
        )
    return rows


def format_figure6(analyses: dict[str, AppAnalysis]) -> str:
    lines = [f"{'Application':18s} {'p2p%':>7s} {'coll%':>7s} {'1sided%':>8s}"]
    for name, p2p, coll, one_sided in figure6_rows(analyses):
        lines.append(f"{name:18s} {p2p:7.1f} {coll:7.1f} {one_sided:8.1f}")
    return "\n".join(lines)


def figure7_rows(
    results: dict[str, dict[int, AppAnalysis]]
) -> list[tuple[str, dict[int, float], dict[int, int]]]:
    """(app, mean depth per bins, max depth per bins), sorted by
    descending 1-bin depth — the paper arranges the plots "in
    descending order of queue depth, not by application name"."""
    rows = []
    for name, per_bins in results.items():
        mean = {bins: analysis.depth.mean_depth for bins, analysis in per_bins.items()}
        peak = {bins: analysis.depth.max_depth for bins, analysis in per_bins.items()}
        rows.append((name, mean, peak))
    reference_bins = min(next(iter(results.values())).keys()) if results else 1
    rows.sort(key=lambda row: row[1].get(reference_bins, 0.0), reverse=True)
    return rows


def format_figure7(results: dict[str, dict[int, AppAnalysis]]) -> str:
    bins_list = sorted(next(iter(results.values())).keys()) if results else []
    header = f"{'Application':18s}" + "".join(
        f"  mean@{b:<4d} max@{b:<4d}" for b in bins_list
    )
    lines = [header]
    for name, mean, peak in figure7_rows(results):
        cells = "".join(f"  {mean[b]:8.2f} {peak[b]:7d} " for b in bins_list)
        lines.append(f"{name:18s}{cells}")
    summary = depth_reduction_summary(results)
    lines.append("")
    for bins, (avg, reduction) in sorted(summary.items()):
        lines.append(
            f"average queue depth @ {bins:3d} bins: {avg:6.2f}"
            + (f"  (reduction {reduction:5.1f}%)" if reduction is not None else "")
        )
    return "\n".join(lines)


def depth_reduction_summary(
    results: dict[str, dict[int, AppAnalysis]]
) -> dict[int, tuple[float, float | None]]:
    """Average depth across apps per bin count, plus the reduction
    relative to the 1-bin (traditional) configuration — the paper's
    "8.21 to 0.8 ... and further to 0.33" numbers."""
    if not results:
        return {}
    bins_list = sorted(next(iter(results.values())).keys())
    out: dict[int, tuple[float, float | None]] = {}
    base: float | None = None
    for bins in bins_list:
        avg = sum(results[name][bins].depth.mean_depth for name in results) / len(results)
        if bins == bins_list[0]:
            base = avg
            out[bins] = (avg, None)
        else:
            reduction = 100.0 * (1.0 - avg / base) if base else None
            out[bins] = (avg, reduction)
    return out


def table2_rows() -> list[tuple[str, str, int]]:
    """(application, description, processes) — Table II verbatim."""
    return [
        (spec.name, spec.description, spec.table_processes)
        for spec in APPLICATIONS.values()
    ]


def format_table2() -> str:
    lines = [f"{'Application':18s} {'Processes':>9s}  Description"]
    for name, description, processes in table2_rows():
        lines.append(f"{name:18s} {processes:9d}  {description}")
    return "\n".join(lines)


def _provision(mean_posted: float) -> int:
    """Receive descriptors to provision for an observed posted load:
    the next power of two, with §III-E-style slack (at least 2x the
    mean so bursts above it do not immediately overflow the table)."""
    demand = max(1, math.ceil(mean_posted * 2))
    return 1 << (demand - 1).bit_length()


def memory_rows(
    results: dict[str, dict[int, AppAnalysis]]
) -> list[tuple[str, int, float, int, float, bool, bool]]:
    """(app, bins, mean posted, provisioned receives, total KiB,
    fits_l2, fits_l3) per sweep cell — the §III-E footprint of a DPA
    sized for each Table-II application at each bin count."""
    rows = []
    for name, per_bins in results.items():
        for bins, analysis in sorted(per_bins.items()):
            provisioned = _provision(analysis.depth.mean_posted)
            model = MemoryModel(bins=bins, max_receives=provisioned)
            rows.append(
                (
                    name,
                    bins,
                    analysis.depth.mean_posted,
                    provisioned,
                    model.total_bytes() / KIB,
                    model.fits_l2(),
                    model.fits_l3(),
                )
            )
    return rows


def format_memory(results: dict[str, dict[int, AppAnalysis]]) -> str:
    """The §III-E memory report: per-app footprints plus the cache
    ceilings. Configurations that overflow L2 are flagged (descriptor
    walks leave cache-resident speeds) and configurations past L3 are
    marked FALLBACK — the paper's criterion for when offloaded
    matching must hand back to software."""
    lines = [
        f"{'Application':18s} {'bins':>5s} {'posted':>8s} {'prov':>8s} "
        f"{'KiB':>9s}  verdict"
    ]
    for name, bins, posted, provisioned, kib, l2, l3 in memory_rows(results):
        verdict = "fits L2" if l2 else ("L2 overflow" if l3 else "FALLBACK (>L3)")
        lines.append(
            f"{name:18s} {bins:5d} {posted:8.1f} {provisioned:8d} "
            f"{kib:9.1f}  {verdict}"
        )
    # Cache ceilings per bin count: the largest power-of-two receive
    # table that still fits each cache level.
    lines.append("")
    bins_list = sorted({bins for per in results.values() for bins in per})
    reference = MemoryModel(bins=1, max_receives=1)
    lines.append(
        f"BF3 ceilings (L2 {reference.l2_bytes // KIB} KiB, "
        f"L3 {reference.l3_bytes // KIB} KiB):"
    )
    for bins in bins_list:
        l2_cap = l3_cap = 0
        receives = 1
        while True:
            model = MemoryModel(bins=bins, max_receives=receives)
            if model.fits_l2():
                l2_cap = receives
            if not model.fits_l3():
                break
            l3_cap = receives
            receives <<= 1
        lines.append(
            f"  {bins:5d} bins: <= {l2_cap} receives in L2, "
            f"<= {l3_cap} in L3"
        )
    return "\n".join(lines)

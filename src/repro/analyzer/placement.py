"""Commgraph-driven rank placement recommendation.

Given an application trace and a cluster topology, pick where each
rank should live. Placement cost is the routed communication volume::

    cost(placement) = sum over commgraph edges (s, d, w) of
                      w * hops(node_of(s), node_of(d))

— messages times route length, the first-order driver of both latency
and link contention on a shared fabric.

The recommender scores the sweepable baselines (block, round-robin)
plus a greedy commgraph layout — ranks placed in order of attachment
to already-placed ranks, each on the free host closest to its
heaviest placed neighbor — and returns the argmin. Because the
baselines are always in the candidate set, the recommendation is
*never worse than block placement* by construction; the greedy layout
exists to win on traces whose structure the baselines miss (e.g. halo
neighborhoods scattered by round-robin, or hotspot roots placed far
from their senders).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyzer.commgraph import build_comm_graph
from repro.net.placement import Placement
from repro.net.routing import RouteTable
from repro.net.topology import Topology
from repro.traces.model import Trace

__all__ = ["PlacementRecommendation", "placement_cost", "recommend_placement"]


@dataclass(frozen=True, slots=True)
class PlacementRecommendation:
    """The chosen placement plus every candidate's score."""

    placement: Placement
    scheme: str
    #: scheme -> routed communication cost (message-hops).
    costs: dict[str, float]

    @property
    def improvement_over_block(self) -> float:
        """Fractional cost saved vs block placement (>= 0.0)."""
        block = self.costs.get("block", 0.0)
        if block <= 0:
            return 0.0
        return 1.0 - self.costs[self.scheme] / block


def placement_cost(graph, placement: Placement, routes: RouteTable) -> float:
    """Routed message volume of ``placement`` (lower is better)."""
    total = 0.0
    for src, dst, weight in graph.edges(data="weight", default=1):
        total += weight * routes.hops(
            placement.node_of(src), placement.node_of(dst)
        )
    return total


def _greedy(graph, hosts: list[str], routes: RouteTable, ranks: int) -> Placement:
    """Attachment-greedy layout over the (undirected) commgraph."""
    weight: dict[tuple[int, int], float] = {}
    totals = [0.0] * ranks
    for src, dst, w in graph.edges(data="weight", default=1):
        if src == dst or not (0 <= src < ranks and 0 <= dst < ranks):
            continue
        key = (min(src, dst), max(src, dst))
        weight[key] = weight.get(key, 0.0) + w
        totals[src] += w
        totals[dst] += w
    neighbors: dict[int, list[tuple[int, float]]] = {r: [] for r in range(ranks)}
    for (a, b), w in weight.items():
        neighbors[a].append((b, w))
        neighbors[b].append((a, w))

    per_host = -(-ranks // len(hosts))
    load: dict[str, int] = {host: 0 for host in hosts}
    assigned: dict[int, str] = {}
    placed: list[int] = []
    unplaced = set(range(ranks))

    def free_hosts() -> list[str]:
        return [host for host in hosts if load[host] < per_host]

    while unplaced:
        if placed:
            # Next rank: strongest attachment to the placed set.
            best_rank, best_att = -1, -1.0
            for rank in sorted(unplaced):
                att = sum(w for peer, w in neighbors[rank] if peer in assigned)
                if att > best_att:
                    best_rank, best_att = rank, att
            rank = best_rank
            # Host: minimize routed volume to placed neighbors.
            best_host, best_cost = None, None
            for host in free_hosts():
                cost = sum(
                    w * routes.hops(host, assigned[peer])
                    for peer, w in neighbors[rank]
                    if peer in assigned
                )
                if best_cost is None or cost < best_cost:
                    best_host, best_cost = host, cost
        else:
            # Seed: the heaviest communicator, on the first host.
            rank = max(sorted(unplaced), key=lambda r: totals[r])
            best_host = free_hosts()[0]
        assert best_host is not None
        assigned[rank] = best_host
        load[best_host] += 1
        placed.append(rank)
        unplaced.discard(rank)
    return Placement.custom(assigned, scheme="greedy")


def recommend_placement(trace: Trace, topology: Topology) -> PlacementRecommendation:
    """Score block / round-robin / greedy for ``trace`` on
    ``topology`` and return the cheapest (ties prefer block)."""
    graph = build_comm_graph(trace)
    routes = RouteTable(topology)
    hosts = topology.hosts
    ranks = trace.nprocs
    candidates = {
        "block": Placement.block(ranks, hosts),
        "round_robin": Placement.round_robin(ranks, hosts),
        "greedy": _greedy(graph, hosts, routes, ranks),
    }
    costs = {
        scheme: placement_cost(graph, placement, routes)
        for scheme, placement in candidates.items()
    }
    # Stable argmin: dict order puts block first, so ties keep block.
    scheme = min(costs, key=costs.get)
    return PlacementRecommendation(
        placement=candidates[scheme], scheme=scheme, costs=costs
    )

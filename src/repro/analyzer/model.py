"""Analytic balls-in-bins model of the binned indexes.

Flajslik et al. give the expected O(n/b) search cost for *b* bins; the
precise distributional statements follow from the classic balls-in-
bins occupancy model: hashing *n* distinct keys into *b* bins makes
each bin's load approximately Poisson(n/b). This module computes the
closed-form predictions —

* expected fraction of empty bins,
* expected number of colliding insertions,
* the expected maximum bin load (via a union-bound quantile),

so the measured Fig. 7 statistics can be checked against theory, not
just against the paper's numbers. Agreement here is evidence the hash
family spreads MPI's clustered key domains like an ideal random
function (the property the design assumes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["BinsPrediction", "predict", "compare_with_measurement"]


@dataclass(frozen=True, slots=True)
class BinsPrediction:
    """Closed-form occupancy predictions for n keys in b bins."""

    keys: int
    bins: int
    load: float  #: n / b
    expected_empty_fraction: float
    expected_collisions: float
    expected_max_load: float


def predict(keys: int, bins: int) -> BinsPrediction:
    """Poisson-approximation occupancy predictions."""
    if keys < 0 or bins <= 0:
        raise ValueError(f"need keys >= 0 and bins > 0, got {keys}, {bins}")
    load = keys / bins
    # P(bin empty) = (1 - 1/b)^n ~ e^{-n/b}.
    empty = float(np.exp(-load)) if bins > 1 else (1.0 if keys == 0 else 0.0)
    # A key collides iff its bin already holds >= 1 key. Expected
    # colliding insertions = n - b * (1 - e^{-n/b}) (occupied bins
    # each absorbed exactly one collision-free key).
    occupied = bins * (1.0 - empty)
    collisions = max(keys - occupied, 0.0)
    # Max load: smallest m with b * P(Poisson(load) >= m) <= 1
    # (union-bound / first-moment threshold).
    if keys == 0:
        max_load = 0.0
    elif bins == 1:
        max_load = float(keys)
    else:
        m = int(np.ceil(load))
        while bins * stats.poisson.sf(m - 1, load) > 1.0:
            m += 1
        max_load = float(m)
    return BinsPrediction(
        keys=keys,
        bins=bins,
        load=load,
        expected_empty_fraction=empty,
        expected_collisions=collisions,
        expected_max_load=max_load,
    )


def compare_with_measurement(
    keys: int,
    bins: int,
    *,
    measured_max_depth: int,
    measured_collisions: int | None = None,
    tolerance: float = 2.0,
) -> dict[str, float | bool]:
    """Check measured occupancy against the analytic prediction.

    ``tolerance`` is multiplicative slack on the max-load prediction
    (the union bound is loose by a small constant). Returns the
    prediction and pass/fail flags for reporting.
    """
    prediction = predict(keys, bins)
    max_ok = measured_max_depth <= tolerance * max(prediction.expected_max_load, 1.0)
    out: dict[str, float | bool] = {
        "expected_max_load": prediction.expected_max_load,
        "measured_max_depth": float(measured_max_depth),
        "max_within_tolerance": max_ok,
    }
    if measured_collisions is not None:
        expected = prediction.expected_collisions
        slack = tolerance * max(expected, 1.0)
        out["expected_collisions"] = expected
        out["measured_collisions"] = float(measured_collisions)
        out["collisions_within_tolerance"] = measured_collisions <= slack
    return out

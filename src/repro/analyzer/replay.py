"""Trace replay through the *actual* optimistic engine.

The analyzer (:mod:`repro.analyzer.processing`) emulates only the data
structures — that is what the paper's C2 artifact does. This module
goes one step further, closing the loop between the two
contributions: it replays a trace's p2p traffic through real
:class:`repro.core.engine.OptimisticMatcher` instances (one per rank),
with block-parallel matching, conflicts, and resolution paths, and
reports the *engine-level* statistics per application — conflict
rate, path mix, early-skip effectiveness.

This is the quantitative backing for the paper's central claim that
"most of them present a matching behavior suitable for offloading":
suitable means low conflict rates and an optimistic-path-dominated
mix, which the replay measures directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import EngineConfig
from repro.core.engine import OptimisticMatcher
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.traces.model import OpGroup, OpKind, Trace

__all__ = ["ReplayResult", "replay_trace"]


@dataclass(frozen=True, slots=True)
class ReplayResult:
    """Engine-level behaviour of one application trace."""

    name: str
    nprocs: int
    messages: int
    conflicts: int
    optimistic: int
    fast_path: int
    slow_path: int
    unexpected: int
    early_skips: int
    probes_walked: int

    @property
    def conflict_rate(self) -> float:
        return self.conflicts / self.messages if self.messages else 0.0

    @property
    def optimistic_fraction(self) -> float:
        matched = self.optimistic + self.fast_path + self.slow_path
        return self.optimistic / matched if matched else 1.0

    def offload_friendly(self, threshold: float = 0.10) -> bool:
        """The paper's suitability criterion: few conflicts."""
        return self.conflict_rate <= threshold


def replay_trace(trace: Trace, config: EngineConfig | None = None) -> ReplayResult:
    """Replay a trace's p2p ops through per-rank optimistic engines.

    Ops are merged in walltime order (the same global order the
    analyzer uses); receives post to the destination rank's engine,
    sends submit messages which are processed in blocks whenever a
    rank's pending stream reaches the block width (or before that rank
    posts — the QP serialization of §IV).
    """
    if config is None:
        config = EngineConfig(bins=128, block_threads=32, max_receives=1 << 14)
    engines = [OptimisticMatcher(config) for _ in range(trace.nprocs)]

    ops = []
    for rank_trace in trace.ranks:
        for position, op in enumerate(rank_trace.ops):
            ops.append((op.walltime, rank_trace.rank, position, op))
    ops.sort(key=lambda item: (item[0], item[1], item[2]))

    send_seq: dict[int, int] = {}
    for _, rank, _, op in ops:
        if op.group is not OpGroup.P2P:
            continue
        if op.kind in (OpKind.IRECV, OpKind.RECV):
            engine = engines[rank]
            # A post command drains the completion stream first (§IV).
            engine.process_all()
            engine.post_receive(
                ReceiveRequest(source=op.peer, tag=op.tag, size=op.size)
            )
        else:
            seq = send_seq.get(rank, 0)
            send_seq[rank] = seq + 1
            dest = engines[op.peer]
            dest.submit_message(
                MessageEnvelope(source=rank, tag=op.tag, size=op.size, send_seq=seq)
            )
            if dest.pending_messages >= config.block_threads:
                dest.process_block()
    for engine in engines:
        engine.process_all()

    return ReplayResult(
        name=trace.name,
        nprocs=trace.nprocs,
        messages=sum(e.stats.messages for e in engines),
        conflicts=sum(e.stats.conflicts for e in engines),
        optimistic=sum(e.stats.optimistic_hits for e in engines),
        fast_path=sum(e.stats.fast_path for e in engines),
        slow_path=sum(e.stats.slow_path for e in engines),
        unexpected=sum(e.stats.unexpected_stored for e in engines),
        early_skips=sum(e.stats.early_skips for e in engines),
        probes_walked=sum(e.stats.probes_walked for e in engines),
    )

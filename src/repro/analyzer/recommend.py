"""Bin-count recommendation.

Fig. 7 shows diminishing returns as bins grow while the §III-E memory
model charges 20 B per bin per table. This utility closes the loop:
given a trace (or its sweep), find the smallest bin count whose mean
experienced queue depth meets a target, and report the DPA memory it
costs — the sizing decision an MPI implementation would make at
communicator creation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyzer.processing import analyze
from repro.analyzer.statistics import AppAnalysis
from repro.dpa.memory import MemoryModel
from repro.traces.model import Trace

__all__ = ["Recommendation", "recommend_bins"]

#: Candidate bin counts (powers of two, the artifact's sweep domain).
_CANDIDATES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


@dataclass(frozen=True, slots=True)
class Recommendation:
    """The sizing decision for one application trace."""

    bins: int
    mean_depth: float
    max_depth: int
    target_depth: float
    #: DPA bytes for the bin tables at this count (per §III-E).
    bin_table_bytes: int
    #: True when even the largest candidate missed the target.
    saturated: bool
    #: The full sweep behind the decision (bins -> analysis).
    sweep: dict[int, AppAnalysis]

    def meets_target(self) -> bool:
        return self.mean_depth <= self.target_depth


def recommend_bins(
    trace: Trace,
    *,
    target_depth: float = 1.0,
    max_receives: int = 8192,
    candidates: tuple[int, ...] = _CANDIDATES,
) -> Recommendation:
    """Smallest bin count meeting ``target_depth`` mean queue depth.

    The search is monotone in expectation but measured, not assumed:
    every candidate is analyzed until one meets the target (depths are
    not strictly monotone sample-to-sample because hashing moves keys
    between bins as the count changes).
    """
    if target_depth < 0:
        raise ValueError(f"target depth must be non-negative, got {target_depth}")
    if not candidates:
        raise ValueError("candidate list must not be empty")
    sweep: dict[int, AppAnalysis] = {}
    chosen: AppAnalysis | None = None
    for bins in sorted(candidates):
        analysis = analyze(trace, bins)
        sweep[bins] = analysis
        if analysis.depth.mean_depth <= target_depth:
            chosen = analysis
            break
    saturated = chosen is None
    if chosen is None:
        chosen = sweep[max(sweep)]
    memory = MemoryModel(bins=chosen.bins, max_receives=max_receives)
    return Recommendation(
        bins=chosen.bins,
        mean_depth=chosen.depth.mean_depth,
        max_depth=chosen.depth.max_depth,
        target_depth=target_depth,
        bin_table_bytes=memory.bin_table_bytes(),
        saturated=saturated,
        sweep=sweep,
    )

"""Bin-count sweeps over applications (Fig. 7 and the artifact's
1..256 powers-of-two output layout)."""

from __future__ import annotations

from repro.analyzer.processing import analyze
from repro.analyzer.statistics import AppAnalysis
from repro.traces.model import Trace
from repro.traces.synthetic import app_names, generate

__all__ = ["BIN_SWEEP", "FIGURE7_BINS", "sweep_trace", "sweep_applications"]

#: The artifact's sweep: "6 folders representing the number of bins
#: used (from 1 to 256, in powers of 2)" — i.e. 1..256 stepping x2
#: over six configurations spanning the Fig. 7 points.
BIN_SWEEP: tuple[int, ...] = (1, 8, 32, 64, 128, 256)
#: The three configurations Figure 7 plots.
FIGURE7_BINS: tuple[int, ...] = (1, 32, 128)


def sweep_trace(trace: Trace, bins_list: tuple[int, ...] = BIN_SWEEP) -> dict[int, AppAnalysis]:
    """Analyze one trace at every bin count."""
    return {bins: analyze(trace, bins) for bins in bins_list}


def sweep_applications(
    *,
    bins_list: tuple[int, ...] = FIGURE7_BINS,
    processes: int | None = None,
    rounds: int = 6,
    names: list[str] | None = None,
) -> dict[str, dict[int, AppAnalysis]]:
    """Generate and analyze every registered application.

    ``processes=None`` uses each app's default scale. Returns
    ``results[app][bins]``.
    """
    results: dict[str, dict[int, AppAnalysis]] = {}
    for name in names if names is not None else app_names():
        trace = generate(name, processes=processes, rounds=rounds)
        results[name] = sweep_trace(trace, bins_list)
    return results

"""Bin-count sweeps over applications (Fig. 7 and the artifact's
1..256 powers-of-two output layout).

The application grid is embarrassingly parallel — every (app, bins)
cell is one deterministic :func:`repro.analyzer.processing.analyze`
run — so :func:`sweep_applications` schedules cells through
:mod:`repro.fleet`: ``jobs=N`` fans out over a worker pool and
``cache_dir`` memoizes cells content-addressed, so re-running a sweep
only executes the changed cells. Results are merged in job order and
every cell passes through the fleet codec, which makes parallel output
byte-identical to serial output.
"""

from __future__ import annotations

from typing import Iterator

from repro.analyzer.statistics import AppAnalysis
from repro.fleet import FleetReport, JobSpec, RetryPolicy, run_jobs
from repro.traces.model import Trace
from repro.traces.synthetic import app_names

__all__ = [
    "BIN_SWEEP",
    "FIGURE7_BINS",
    "iter_sweep_jobs",
    "sweep_trace",
    "sweep_applications",
    "sweep_report",
]

#: The artifact's sweep: "6 folders representing the number of bins
#: used (from 1 to 256, in powers of 2)" — i.e. 1..256 stepping x2
#: over six configurations spanning the Fig. 7 points.
BIN_SWEEP: tuple[int, ...] = (1, 8, 32, 64, 128, 256)
#: The three configurations Figure 7 plots.
FIGURE7_BINS: tuple[int, ...] = (1, 32, 128)


def sweep_trace(trace: Trace, bins_list: tuple[int, ...] = BIN_SWEEP) -> dict[int, AppAnalysis]:
    """Analyze one trace at every bin count."""
    from repro.analyzer.processing import analyze

    return {bins: analyze(trace, bins) for bins in bins_list}


def iter_sweep_jobs(
    names: list[str],
    bins_list: tuple[int, ...],
    *,
    rounds: int = 6,
    processes: int | None = None,
) -> Iterator[JobSpec]:
    """Lazily enumerate the (app, bins) grid as fleet jobs.

    Enumeration order (app-major, bins-minor) fixes the job indices
    and therefore the merge order of any run over this grid.
    """
    for name in names:
        for bins in bins_list:
            params = {"app": name, "bins": bins, "rounds": rounds}
            if processes is not None:
                params["processes"] = processes
            yield JobSpec(kind="analyze_app", params=params)


def sweep_applications(
    *,
    bins_list: tuple[int, ...] = FIGURE7_BINS,
    processes: int | None = None,
    rounds: int = 6,
    names: list[str] | None = None,
    jobs: int = 1,
    cache_dir: str | None = None,
    policy: RetryPolicy | None = None,
    registry=None,
    tracer=None,
    fault_hook=None,
    with_report: bool = False,
    strict: bool = True,
):
    """Generate and analyze every registered application.

    ``processes=None`` uses each app's default scale. Returns
    ``results[app][bins]`` — and, with ``with_report=True``, a
    ``(results, FleetReport)`` tuple.

    ``jobs``/``cache_dir`` route the grid through the fleet scheduler;
    the default (``jobs=1``, no cache) runs the cells inline, through
    the same codec, so parallel and serial results are byte-identical.
    Quarantined cells raise :class:`repro.fleet.FleetError` under
    ``strict`` (the default); ``strict=False`` instead omits them from
    the results and leaves the diagnosis to the returned report
    (``report.ok`` / ``report.quarantined_ids``), so callers like the
    CLI can render the surviving grid and still exit nonzero.
    """
    names = list(names) if names is not None else app_names()
    run = run_jobs(
        iter_sweep_jobs(names, bins_list, rounds=rounds, processes=processes),
        jobs=jobs,
        cache_dir=cache_dir,
        policy=policy,
        registry=registry,
        tracer=tracer,
        fault_hook=fault_hook,
    )
    if strict:
        run.require_ok()
    results: dict[str, dict[int, AppAnalysis]] = {name: {} for name in names}
    for outcome in run.outcomes:
        if not outcome.ok:
            continue
        results[outcome.spec.params["app"]][outcome.spec.params["bins"]] = outcome.result
    if with_report:
        return results, run.report
    return results


def sweep_report(**kwargs) -> tuple[dict, FleetReport]:
    """:func:`sweep_applications` with the fleet report attached."""
    return sweep_applications(with_report=True, **kwargs)

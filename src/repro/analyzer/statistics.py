"""Statistics gathered during trace processing (§V-A.b).

Per progress operation the analyzer forms a *datapoint*
"encapsulating all progress achieved since the last recorded entry";
per application it aggregates queue depths, collision counts,
empty-bin fractions, tag usage, wildcard usage, and the p2p/collective
/one-sided call mix.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.traces.model import OpGroup

__all__ = ["Datapoint", "QueueDepthStats", "AppAnalysis"]


@dataclass(frozen=True, slots=True)
class Datapoint:
    """One progress-op snapshot on one rank."""

    rank: int
    walltime: float
    max_depth: int
    total_posted: int
    unexpected: int
    empty_fraction: float


@dataclass(slots=True)
class QueueDepthStats:
    """Aggregate queue-depth behaviour for one (app, bins) pair."""

    bins: int
    datapoints: int = 0
    mean_depth: float = 0.0
    max_depth: int = 0
    #: Distribution quantiles of per-datapoint depth (Fig. 7 plots a
    #: distribution per app, not just the mean).
    p50_depth: float = 0.0
    p95_depth: float = 0.0
    mean_posted: float = 0.0
    mean_empty_fraction: float = 0.0
    collisions: int = 0
    unexpected_total: int = 0
    drained_total: int = 0

    @classmethod
    def from_datapoints(
        cls,
        bins: int,
        points: list[Datapoint],
        *,
        collisions: int = 0,
        unexpected_total: int = 0,
        drained_total: int = 0,
    ) -> "QueueDepthStats":
        if not points:
            return cls(bins=bins)
        import numpy as np

        depths = np.fromiter((p.max_depth for p in points), dtype=float, count=len(points))
        return cls(
            bins=bins,
            datapoints=len(points),
            mean_depth=float(depths.mean()),
            max_depth=int(depths.max()),
            p50_depth=float(np.percentile(depths, 50)),
            p95_depth=float(np.percentile(depths, 95)),
            mean_posted=sum(p.total_posted for p in points) / len(points),
            mean_empty_fraction=sum(p.empty_fraction for p in points) / len(points),
            collisions=collisions,
            unexpected_total=unexpected_total,
            drained_total=drained_total,
        )


@dataclass(slots=True)
class AppAnalysis:
    """Full analysis of one application trace at one bin count."""

    name: str
    nprocs: int
    bins: int
    depth: QueueDepthStats = field(default_factory=lambda: QueueDepthStats(bins=1))
    #: Fractions of p2p / collective / one-sided ops (Fig. 6).
    call_mix: dict[OpGroup, float] = field(default_factory=dict)
    #: How many receives used which wildcard combination.
    wildcard_usage: Counter = field(default_factory=Counter)
    #: tag -> number of p2p ops using it ("usage of tags", §V-A.b).
    tag_usage: Counter = field(default_factory=Counter)
    #: Count of each p2p op kind ("percentage of p2p operations of
    #: each kind").
    p2p_kinds: Counter = field(default_factory=Counter)
    #: Distinct (source, tag) pairs over posted receives — the paper's
    #: conclusion hinges on this being low ("the number of unique
    #: source/tag posted receives is low").
    unique_pairs: int = 0
    total_ops: int = 0
    #: Raw per-progress-op datapoints (kept when the caller asks).
    datapoints: list[Datapoint] = field(default_factory=list)

    def unique_tags(self) -> int:
        return len(self.tag_usage)

    def p2p_fraction(self) -> float:
        return self.call_mix.get(OpGroup.P2P, 0.0)

"""Statistics gathered during trace processing (§V-A.b).

Per progress operation the analyzer forms a *datapoint*
"encapsulating all progress achieved since the last recorded entry";
per application it aggregates queue depths, collision counts,
empty-bin fractions, tag usage, wildcard usage, and the p2p/collective
/one-sided call mix.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping

from repro.core.constants import WildcardClass
from repro.traces.model import OpGroup, OpKind

__all__ = ["Datapoint", "QueueDepthStats", "AppAnalysis"]


def _check_schema(payload: Mapping[str, Any], expected: str) -> None:
    schema = payload.get("schema", expected)
    if schema != expected:
        raise ValueError(f"unsupported schema {schema!r}, expected {expected!r}")


@dataclass(frozen=True, slots=True)
class Datapoint:
    """One progress-op snapshot on one rank."""

    SCHEMA = "repro.analyzer.datapoint/v1"

    rank: int
    walltime: float
    max_depth: int
    total_posted: int
    unexpected: int
    empty_fraction: float

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Datapoint":
        return cls(**{k: payload[k] for k in cls.__dataclass_fields__})


@dataclass(slots=True)
class QueueDepthStats:
    """Aggregate queue-depth behaviour for one (app, bins) pair."""

    SCHEMA = "repro.analyzer.queue_depth_stats/v1"

    bins: int
    datapoints: int = 0
    mean_depth: float = 0.0
    max_depth: int = 0
    #: Distribution quantiles of per-datapoint depth (Fig. 7 plots a
    #: distribution per app, not just the mean).
    p50_depth: float = 0.0
    p95_depth: float = 0.0
    mean_posted: float = 0.0
    mean_empty_fraction: float = 0.0
    collisions: int = 0
    unexpected_total: int = 0
    drained_total: int = 0

    @classmethod
    def from_datapoints(
        cls,
        bins: int,
        points: list[Datapoint],
        *,
        collisions: int = 0,
        unexpected_total: int = 0,
        drained_total: int = 0,
    ) -> "QueueDepthStats":
        if not points:
            return cls(bins=bins)
        import numpy as np

        depths = np.fromiter((p.max_depth for p in points), dtype=float, count=len(points))
        return cls(
            bins=bins,
            datapoints=len(points),
            mean_depth=float(depths.mean()),
            max_depth=int(depths.max()),
            p50_depth=float(np.percentile(depths, 50)),
            p95_depth=float(np.percentile(depths, 95)),
            mean_posted=sum(p.total_posted for p in points) / len(points),
            mean_empty_fraction=sum(p.empty_fraction for p in points) / len(points),
            collisions=collisions,
            unexpected_total=unexpected_total,
            drained_total=drained_total,
        )

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QueueDepthStats":
        return cls(**{k: payload[k] for k in cls.__dataclass_fields__ if k in payload})


@dataclass(slots=True)
class AppAnalysis:
    """Full analysis of one application trace at one bin count."""

    SCHEMA = "repro.analyzer.app_analysis/v1"

    name: str
    nprocs: int
    bins: int
    depth: QueueDepthStats = field(default_factory=lambda: QueueDepthStats(bins=1))
    #: Fractions of p2p / collective / one-sided ops (Fig. 6).
    call_mix: dict[OpGroup, float] = field(default_factory=dict)
    #: How many receives used which wildcard combination.
    wildcard_usage: Counter = field(default_factory=Counter)
    #: tag -> number of p2p ops using it ("usage of tags", §V-A.b).
    tag_usage: Counter = field(default_factory=Counter)
    #: Count of each p2p op kind ("percentage of p2p operations of
    #: each kind").
    p2p_kinds: Counter = field(default_factory=Counter)
    #: Distinct (source, tag) pairs over posted receives — the paper's
    #: conclusion hinges on this being low ("the number of unique
    #: source/tag posted receives is low").
    unique_pairs: int = 0
    total_ops: int = 0
    #: Raw per-progress-op datapoints (kept when the caller asks).
    datapoints: list[Datapoint] = field(default_factory=list)

    def unique_tags(self) -> int:
        return len(self.tag_usage)

    def p2p_fraction(self) -> float:
        return self.call_mix.get(OpGroup.P2P, 0.0)

    # -- JSON round-trip (fleet cache / parallel workers) ---------------
    #
    # Enum keys are stored by value and tag keys as decimal strings;
    # ``from_dict`` restores the exact in-memory types, so a decoded
    # analysis is interchangeable with a freshly computed one.

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "nprocs": self.nprocs,
            "bins": self.bins,
            "depth": self.depth.to_dict(),
            "call_mix": {group.value: frac for group, frac in self.call_mix.items()},
            "wildcard_usage": {
                wc.value: count for wc, count in self.wildcard_usage.items()
            },
            "tag_usage": {str(tag): count for tag, count in self.tag_usage.items()},
            "p2p_kinds": {kind.value: count for kind, count in self.p2p_kinds.items()},
            "unique_pairs": self.unique_pairs,
            "total_ops": self.total_ops,
            "datapoints": [point.to_dict() for point in self.datapoints],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AppAnalysis":
        return cls(
            name=payload["name"],
            nprocs=payload["nprocs"],
            bins=payload["bins"],
            depth=QueueDepthStats.from_dict(payload["depth"]),
            call_mix={
                OpGroup(key): frac for key, frac in payload.get("call_mix", {}).items()
            },
            wildcard_usage=Counter(
                {
                    WildcardClass(key): count
                    for key, count in payload.get("wildcard_usage", {}).items()
                }
            ),
            tag_usage=Counter(
                {int(key): count for key, count in payload.get("tag_usage", {}).items()}
            ),
            p2p_kinds=Counter(
                {
                    OpKind(key): count
                    for key, count in payload.get("p2p_kinds", {}).items()
                }
            ),
            unique_pairs=payload.get("unique_pairs", 0),
            total_ops=payload.get("total_ops", 0),
            datapoints=[
                Datapoint.from_dict(point) for point in payload.get("datapoints", [])
            ],
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        payload = {"schema": self.SCHEMA, **self.to_dict()}
        return json.dumps(payload, indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "AppAnalysis":
        payload = json.loads(text)
        _check_schema(payload, cls.SCHEMA)
        return cls.from_dict(payload)

"""The trace-processing stage (§V-A.b).

Operations from every rank are merged into global walltime order and
replayed against per-rank emulated matching structures:

* a posted receive first searches the destination rank's unexpected
  store, then lands in the index its wildcards select;
* a send delivers a message envelope to the destination rank, where it
  either consumes the oldest matching posted receive or is stored
  unexpected;
* a progress operation (wait/waitall/test) snapshots the issuing
  rank's structure occupancy into a datapoint.

Collectives and one-sided operations are counted for the call mix but
not matched — exactly the paper's scope ("Only p2p and progress
operations are processed, ignoring collectives and one-sided").
"""

from __future__ import annotations

from collections import Counter

from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.traces.model import OpGroup, OpKind, Trace
from repro.analyzer.statistics import AppAnalysis, Datapoint, QueueDepthStats
from repro.analyzer.structures import EmulatedMatcher

__all__ = ["analyze"]


def _merged_ops(trace: Trace):
    """All (rank, op) pairs in global walltime order.

    Ties break by (walltime, rank, intra-rank position), which is
    deterministic and keeps each rank's program order intact.
    """
    ops = []
    for rank_trace in trace.ranks:
        for position, op in enumerate(rank_trace.ops):
            ops.append((op.walltime, rank_trace.rank, position, op))
    ops.sort(key=lambda item: (item[0], item[1], item[2]))
    return [(rank, op) for _, rank, _, op in ops]


def analyze(trace: Trace, bins: int, *, keep_datapoints: bool = False) -> AppAnalysis:
    """Process one trace with ``bins``-bin structures."""
    if bins <= 0:
        raise ValueError(f"bins must be positive, got {bins}")
    matchers = [EmulatedMatcher(bins) for _ in range(trace.nprocs)]
    datapoints: list[Datapoint] = []
    wildcard_usage: Counter = Counter()
    tag_usage: Counter = Counter()
    p2p_kinds: Counter = Counter()
    pairs: set[tuple[int, int]] = set()
    send_seq: dict[int, int] = {}

    for rank, op in _merged_ops(trace):
        group = op.group
        if group is OpGroup.P2P:
            p2p_kinds[op.kind] += 1
            if op.kind in (OpKind.IRECV, OpKind.RECV):
                request = ReceiveRequest(
                    source=op.peer, tag=op.tag, comm=op.comm, size=op.size
                )
                wildcard_usage[request.wildcard_class()] += 1
                pairs.add((op.peer, op.tag))
                if op.tag >= 0:
                    tag_usage[op.tag] += 1
                matchers[rank].post_receive(request)
            else:  # ISEND / SEND from `rank` to op.peer
                if op.tag >= 0:
                    tag_usage[op.tag] += 1
                seq = send_seq.get(rank, 0)
                send_seq[rank] = seq + 1
                matchers[op.peer].deliver(
                    MessageEnvelope(
                        source=rank,
                        tag=op.tag,
                        comm=op.comm,
                        size=op.size,
                        send_seq=seq,
                    )
                )
        elif group is OpGroup.PROGRESS:
            interval_max, _interval_mean, snap = matchers[rank].take_datapoint()
            datapoints.append(
                Datapoint(
                    rank=rank,
                    walltime=op.walltime,
                    max_depth=interval_max,
                    total_posted=snap.total_posted,
                    unexpected=snap.unexpected,
                    empty_fraction=snap.empty_fraction,
                )
            )
        # collectives / one-sided: counted via call_mix only

    depth = QueueDepthStats.from_datapoints(
        bins,
        datapoints,
        collisions=sum(m.collisions for m in matchers),
        unexpected_total=sum(m.unexpected_total for m in matchers),
        drained_total=sum(m.drained_total for m in matchers),
    )
    return AppAnalysis(
        name=trace.name,
        nprocs=trace.nprocs,
        bins=bins,
        depth=depth,
        datapoints=datapoints if keep_datapoints else [],
        call_mix=trace.call_mix(),
        wildcard_usage=wildcard_usage,
        tag_usage=tag_usage,
        p2p_kinds=p2p_kinds,
        unique_pairs=len(pairs),
        total_ops=trace.total_ops(),
    )

"""The MPI trace analyzer (contribution C2)."""

from repro.analyzer.artifact import export_artifact, export_trace_analysis, load_summary
from repro.analyzer.commgraph import CommGraphStats, build_comm_graph, graph_stats
from repro.analyzer.compare import ComparisonReport, MetricDelta, compare_analyses
from repro.analyzer.fullreport import format_app_report
from repro.analyzer.model import BinsPrediction, compare_with_measurement, predict
from repro.analyzer.processing import analyze
from repro.analyzer.recommend import Recommendation, recommend_bins
from repro.analyzer.report import (
    depth_reduction_summary,
    figure6_rows,
    figure7_rows,
    format_figure6,
    format_figure7,
    format_table2,
    table2_rows,
)
from repro.analyzer.statistics import AppAnalysis, Datapoint, QueueDepthStats
from repro.analyzer.structures import DepthSnapshot, EmulatedMatcher
from repro.analyzer.replay import ReplayResult, replay_trace
from repro.analyzer.sweep import BIN_SWEEP, FIGURE7_BINS, sweep_applications, sweep_trace

__all__ = [
    "AppAnalysis",
    "BIN_SWEEP",
    "Datapoint",
    "DepthSnapshot",
    "EmulatedMatcher",
    "FIGURE7_BINS",
    "QueueDepthStats",
    "BinsPrediction",
    "CommGraphStats",
    "ComparisonReport",
    "MetricDelta",
    "Recommendation",
    "ReplayResult",
    "analyze",
    "build_comm_graph",
    "compare_analyses",
    "compare_with_measurement",
    "graph_stats",
    "predict",
    "export_artifact",
    "export_trace_analysis",
    "load_summary",
    "recommend_bins",
    "replay_trace",
    "depth_reduction_summary",
    "figure6_rows",
    "figure7_rows",
    "format_app_report",
    "format_figure6",
    "format_figure7",
    "format_table2",
    "sweep_applications",
    "sweep_trace",
    "table2_rows",
]

"""Emulated matching structures for trace analysis.

The analyzer "emulat[es] the optimistic tag matching strategy and
gather[s] statistics" (§V): it maintains, per rank, exactly the data
structures of §III-B — the three binned hash tables and the
double-wildcard list for posted receives, mirrored for unexpected
messages — and matches serially (conflict behaviour is irrelevant to
queue-depth statistics; structure occupancy is what Fig. 7 measures).

Performance note: occupancy statistics are maintained *incrementally*
(a depth histogram updated on every bucket transition) rather than by
scanning all ``3 x bins`` buckets per operation — profiling showed the
scan dominating analysis time at high bin counts, and per-op work is
O(1) with the histogram.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.constants import WildcardClass
from repro.core.descriptor import DescriptorTable, ReceiveDescriptor
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.hashing import hash_src, hash_src_tag, hash_tag
from repro.core.indexes import (
    ReceiveIndexes,
    SearchProbeCount,
    UnexpectedIndexes,
    UnexpectedMessage,
)
from repro.util.counters import MonotonicCounter, SequenceLabeler
from repro.util.intrusive import IntrusiveList

__all__ = ["EmulatedMatcher", "DepthSnapshot"]


@dataclass(frozen=True, slots=True)
class DepthSnapshot:
    """Structure occupancy at one instant (a datapoint's raw input).

    ``max_depth`` is the deepest chain across the three PRQ hash
    tables plus the wildcard list — with 1 bin this is the classic
    posted-receive queue depth, which is how Fig. 7's "1 bin =
    traditional" correspondence holds.
    """

    max_depth: int
    total_posted: int
    unexpected: int
    empty_fraction: float
    wildcard_list_depth: int


class _OccupancyTracker:
    """Incremental depth histogram over the three PRQ hash tables."""

    __slots__ = ("_hist", "_max", "empty", "total_buckets")

    def __init__(self, total_buckets: int) -> None:
        self._hist: dict[int, int] = {}
        self._max = 0
        self.empty = total_buckets
        self.total_buckets = total_buckets

    def transition(self, old_depth: int, new_depth: int) -> None:
        if old_depth == new_depth:
            return
        if old_depth > 0:
            count = self._hist[old_depth] - 1
            if count:
                self._hist[old_depth] = count
            else:
                del self._hist[old_depth]
        else:
            self.empty -= 1
        if new_depth > 0:
            self._hist[new_depth] = self._hist.get(new_depth, 0) + 1
        else:
            self.empty += 1
        if new_depth > self._max:
            self._max = new_depth
        elif old_depth == self._max and old_depth not in self._hist:
            self._max = max(self._hist, default=0)

    @property
    def max_depth(self) -> int:
        return self._max

    @property
    def empty_fraction(self) -> float:
        return self.empty / self.total_buckets if self.total_buckets else 1.0


class EmulatedMatcher:
    """Serial matcher over the paper's four-index layout."""

    def __init__(self, bins: int, capacity: int = 1 << 14) -> None:
        self.bins = bins
        self.indexes = ReceiveIndexes(bins)
        self.unexpected = UnexpectedIndexes(bins)
        self._table = DescriptorTable(capacity, 1)
        self._labels = MonotonicCounter()
        self._sequencer = SequenceLabeler()
        self._arrivals = MonotonicCounter()
        self._occupancy = _OccupancyTracker(3 * bins)
        self._posted_live = 0
        #: receives whose bucket was non-empty at insertion (hash
        #: collisions in the §V-A statistics sense).
        self.collisions = 0
        self.posts = 0
        self.messages = 0
        self.unexpected_total = 0
        self.drained_total = 0
        # Interval statistics: the *queue depth experienced* by each
        # matching operation since the last datapoint — the number of
        # non-matching entries walked before the match was found. With
        # 1 bin this is the classic position-in-PRQ search depth; with
        # b bins it shrinks toward 0 as keys spread out, which is why
        # Fig. 7's per-bin averages can fall below 1. A datapoint
        # summarizes "all progress achieved since the last recorded
        # entry" (§V-A.b), so these accumulate between progress ops.
        self._interval_max = 0
        self._interval_sum = 0
        self._interval_samples = 0
        self._interval_min_empty = 1.0

    def _chain_for(self, descr: ReceiveDescriptor) -> IntrusiveList:
        wc = descr.wildcard_class
        if wc is WildcardClass.NONE:
            return self.indexes.no_wildcard.bucket(hash_src_tag(descr.source, descr.tag))
        if wc is WildcardClass.SOURCE:
            return self.indexes.source_wildcard.bucket(hash_tag(descr.tag))
        if wc is WildcardClass.TAG:
            return self.indexes.tag_wildcard.bucket(hash_src(descr.source))
        return self.indexes.both_wildcard

    def post_receive(self, request: ReceiveRequest) -> bool:
        """Post a receive; returns True when it drained an unexpected
        message (and was therefore never indexed)."""
        self.posts += 1
        probes = SearchProbeCount()
        stored = self.unexpected.search(request, probes)
        if stored is not None:
            self.unexpected.remove(stored)
            self.drained_total += 1
            self._labels.next()
            # Walk cost of the drain, excluding the matched entry.
            self._observe_walk(max(probes.walked - 1, 0))
            return True
        self._observe_walk(probes.walked)
        descr = self._table.allocate(
            request,
            post_label=self._labels.next(),
            sequence_id=self._sequencer.label(request.source, request.tag),
        )
        chain = self._chain_for(descr)
        before = len(chain)
        self.indexes.insert(descr)
        self._posted_live += 1
        # Collision statistic: the target bucket already held entries.
        if before > 0:
            self.collisions += 1
        if descr.wildcard_class is not WildcardClass.BOTH:
            self._occupancy.transition(before, before + 1)
        self._observe_occupancy()
        return False

    def _observe_walk(self, walked: int) -> None:
        """Record one operation's experienced search depth."""
        if walked > self._interval_max:
            self._interval_max = walked
        self._interval_sum += walked
        self._interval_samples += 1

    def _observe_occupancy(self) -> None:
        """Track the fullest moment of the interval (empty-bin stat)."""
        empty = self._occupancy.empty_fraction
        if empty < self._interval_min_empty:
            self._interval_min_empty = empty

    def deliver(self, msg: MessageEnvelope) -> bool:
        """Deliver a message; returns True when it matched a receive."""
        self.messages += 1
        msg = dataclasses.replace(msg, arrival=self._arrivals.next())
        self._observe_occupancy()
        best: ReceiveDescriptor | None = None
        visited = 0
        for _wc, chain, predicate in self.indexes.candidate_chains(msg):
            for node in chain.iter_nodes():
                visited += 1
                descr = node.payload
                if predicate(descr):
                    if best is None or descr.post_label < best.post_label:
                        best = descr
                    break
        # The experienced queue depth: entries inspected that were not
        # the match itself.
        self._observe_walk(visited - 1 if best is not None else visited)
        if best is not None:
            chain = best.node.owner
            before = len(chain)
            self.indexes.consume(best, lazy=False)
            self._posted_live -= 1
            if best.wildcard_class is not WildcardClass.BOTH:
                self._occupancy.transition(before, before - 1)
            self._table.release(best)
            return True
        self.unexpected.insert(UnexpectedMessage(envelope=msg))
        self.unexpected_total += 1
        return False

    def snapshot(self) -> DepthSnapshot:
        """Current structure occupancy (instantaneous, O(1))."""
        wildcard_depth = len(self.indexes.both_wildcard)
        return DepthSnapshot(
            max_depth=max(self._occupancy.max_depth, wildcard_depth),
            total_posted=self._posted_live,
            unexpected=len(self.unexpected),
            empty_fraction=self._occupancy.empty_fraction,
            wildcard_list_depth=wildcard_depth,
        )

    def take_datapoint(self) -> tuple[int, float, DepthSnapshot]:
        """Flush the interval statistics at a progress operation.

        Returns ``(interval_max_depth, interval_mean_depth, snapshot)``
        and resets the interval accumulators.
        """
        interval_max = self._interval_max
        interval_mean = (
            self._interval_sum / self._interval_samples if self._interval_samples else 0.0
        )
        snap = self.snapshot()
        snap = DepthSnapshot(
            max_depth=snap.max_depth,
            total_posted=snap.total_posted,
            unexpected=snap.unexpected,
            # Report the fullest moment of the interval, not the
            # (usually drained) instant of the progress call.
            empty_fraction=self._interval_min_empty,
            wildcard_list_depth=snap.wildcard_list_depth,
        )
        self._interval_max = 0
        self._interval_sum = 0
        self._interval_samples = 0
        self._interval_min_empty = 1.0
        return interval_max, interval_mean, snap

"""Command-line entry point: ``repro-analyze``.

Regenerates the paper's analysis outputs from synthetic traces (or a
DUMPI-text trace directory passed with ``--trace-dir``):

    repro-analyze --figure 6
    repro-analyze --figure 7 --bins 1,32,128
    repro-analyze --table 2
    repro-analyze --app "BoxLib CNS" --bins 1,32,128
    repro-analyze --trace-dir /path/to/dumpi --bins 32
    repro-analyze sweep --jobs 4 --cache-dir .fleet-cache

``sweep`` runs the full application x bins grid; with ``--jobs N`` it
fans out over a :mod:`repro.fleet` worker pool and with
``--cache-dir`` re-runs only the changed cells (results are
byte-identical to a serial run either way). The same two flags apply
to ``--figure 6``/``--figure 7``, which are grid sweeps too.
"""

from __future__ import annotations

import argparse
import sys

from repro.analyzer.processing import analyze
from repro.analyzer.report import (
    format_figure6,
    format_figure7,
    format_memory,
    format_table2,
)
from repro.analyzer.sweep import FIGURE7_BINS, sweep_applications, sweep_trace
from repro.traces.reader import load_trace
from repro.traces.synthetic import app_names, generate

__all__ = ["main"]


def _parse_bins(text: str) -> tuple[int, ...]:
    try:
        bins = tuple(int(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad bins list {text!r}") from None
    if not bins or any(b <= 0 for b in bins):
        raise argparse.ArgumentTypeError("bins must be positive integers")
    return bins


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="MPI trace analyzer (reproduction of the paper's C2 artifact)",
    )
    parser.add_argument(
        "command",
        nargs="?",
        choices=("sweep",),
        help="sweep: run the application x bins grid (honours --jobs/--cache-dir)",
    )
    parser.add_argument("--figure", type=int, choices=(6, 7), help="regenerate a figure")
    parser.add_argument("--table", type=int, choices=(2,), help="regenerate a table")
    parser.add_argument("--app", help="analyze one registered application")
    parser.add_argument("--trace-dir", help="analyze a DUMPI-text trace directory")
    parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("LEFT", "RIGHT"),
        help="compare two trace directories' matching behaviour",
    )
    parser.add_argument(
        "--bins", type=_parse_bins, default=FIGURE7_BINS, help="comma-separated bin counts"
    )
    parser.add_argument("--rounds", type=int, default=6, help="synthetic trace rounds")
    parser.add_argument(
        "--processes", type=int, default=None, help="override process count for generation"
    )
    parser.add_argument("--list", action="store_true", help="list registered applications")
    parser.add_argument(
        "--memory",
        action="store_true",
        help="print the §III-E memory-footprint report: per-application "
        "DPA footprints at each bin count, flagging configurations that "
        "overflow the BF3 L2/L3 caches (FALLBACK past L3)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="fleet worker processes for grid sweeps (1 = inline)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed result cache for grid sweeps",
    )
    parser.add_argument(
        "--plot", action="store_true", help="render figures as terminal bar charts"
    )
    parser.add_argument(
        "--full-report",
        action="store_true",
        help="with --app or --trace-dir: print the full matching profile",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="with --app or --trace-dir: write the trace as Perfetto-loadable "
        "Chrome trace_event JSON (virtual walltime)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="with --app or --trace-dir: write the per-bins analysis metrics "
        "as a repro.obs snapshot (JSON)",
    )
    return parser


def _write_obs(trace, results, args) -> None:
    """Emit observability artifacts for one analyzed trace.

    ``results`` may be a dict (bins -> AppAnalysis) or a zero-argument
    callable producing one, so call sites that already analyzed pass
    their dict and others only pay for analysis when asked.
    """
    if args.trace_out:
        from repro.obs.trace import mpi_trace_to_chrome

        mpi_trace_to_chrome(trace).write(args.trace_out)
        print(f"trace: {args.trace_out}", file=sys.stderr)
    if args.metrics_out:
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        for bins, analysis in (results() if callable(results) else results).items():
            prefix = f"analysis.bins{bins}"
            registry.register_stats(f"{prefix}.depth", analysis.depth)
            registry.add_collector(
                prefix,
                lambda a=analysis: {
                    "unique_pairs": float(a.unique_pairs),
                    "unique_tags": float(a.unique_tags()),
                    "total_ops": float(a.total_ops),
                    "p2p_fraction": a.p2p_fraction(),
                    "nprocs": float(a.nprocs),
                },
            )
        with open(args.metrics_out, "w", encoding="utf-8") as fp:
            fp.write(registry.snapshot().to_json())
        print(f"metrics: {args.metrics_out}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list:
        print("\n".join(app_names()))
        return 0
    if args.table == 2:
        print(format_table2())
        return 0
    if args.memory:
        if args.trace_dir:
            trace = load_trace(args.trace_dir)
            results = {trace.name: sweep_trace(trace, args.bins)}
        else:
            results = sweep_applications(
                bins_list=args.bins,
                rounds=args.rounds,
                processes=args.processes,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
            )
            if args.app:
                results = {args.app: results[args.app]}
        print(format_memory(results))
        return 0
    if args.command == "sweep":
        results, report = sweep_applications(
            bins_list=args.bins,
            rounds=args.rounds,
            processes=args.processes,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            with_report=True,
        )
        print(format_figure7(results))
        print(f"fleet: {report.summary()}", file=sys.stderr)
        return 0
    if args.figure == 6:
        results = sweep_applications(
            bins_list=(1,),
            rounds=args.rounds,
            processes=args.processes,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
        )
        analyses = {name: per_bins[1] for name, per_bins in results.items()}
        print(format_figure6(analyses))
        if args.plot:
            from repro.traces.model import OpGroup
            from repro.util.asciiplot import hbar_chart

            print("\np2p share per application:")
            print(
                hbar_chart(
                    {
                        name: 100.0 * analysis.call_mix.get(OpGroup.P2P, 0.0)
                        for name, analysis in analyses.items()
                    },
                    unit="%",
                    sort=True,
                )
            )
        return 0
    if args.figure == 7:
        results = sweep_applications(
            bins_list=args.bins,
            rounds=args.rounds,
            processes=args.processes,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
        )
        print(format_figure7(results))
        if args.plot:
            from repro.analyzer.report import figure7_rows
            from repro.util.asciiplot import depth_series

            rows = [(name, mean) for name, mean, _peak in figure7_rows(results)]
            print("\nmean experienced depth (bar scale shared):")
            print(depth_series(rows))
        return 0
    if args.compare:
        from repro.analyzer.compare import compare_analyses

        bins = args.bins[0]
        left = analyze(load_trace(args.compare[0]), bins)
        right = analyze(load_trace(args.compare[1]), bins)
        report = compare_analyses(left, right)
        print(report.format())
        return 0 if report.ok else 1
    if args.trace_dir:
        trace = load_trace(args.trace_dir)
        if args.full_report:
            from repro.analyzer.fullreport import format_app_report

            print(format_app_report(trace, bins_list=args.bins))
            _write_obs(trace, lambda: {b: analyze(trace, b) for b in args.bins}, args)
            return 0
        results = sweep_trace(trace, args.bins)
        print(format_figure7({trace.name: results}))
        _write_obs(trace, results, args)
        return 0
    if args.app:
        trace = generate(args.app, processes=args.processes, rounds=args.rounds)
        if args.full_report:
            from repro.analyzer.fullreport import format_app_report

            print(format_app_report(trace, bins_list=args.bins))
            _write_obs(trace, lambda: {b: analyze(trace, b) for b in args.bins}, args)
            return 0
        results = {bins: analyze(trace, bins) for bins in args.bins}
        print(format_figure7({args.app: results}))
        _write_obs(trace, results, args)
        return 0
    build_parser().print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

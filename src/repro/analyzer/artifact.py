"""Artifact-layout output (paper appendix, artifact A2).

"After executing the analysis for all applications, the artifact
generates a folder for each application in the analysis, and, for
each application, it generates 6 folders representing the number of
bins used (from 1 to 256, in powers of 2). Then, this data is fed
into the analysis script to generate the plots in the text."

:func:`export_artifact` reproduces that on-disk layout:

    <out>/<application>/<bins>/stats.json
    <out>/<application>/<bins>/datapoints.csv
    <out>/summary.json

so downstream plotting scripts (pandas/matplotlib, per the artifact's
requirements) consume it directly.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analyzer.statistics import AppAnalysis
from repro.analyzer.sweep import BIN_SWEEP
from repro.traces.model import Trace
from repro.traces.synthetic import app_names, generate

__all__ = ["export_artifact", "export_trace_analysis", "load_summary"]


def _analysis_record(analysis: AppAnalysis) -> dict:
    return {
        "name": analysis.name,
        "nprocs": analysis.nprocs,
        "bins": analysis.bins,
        "datapoints": analysis.depth.datapoints,
        "mean_depth": analysis.depth.mean_depth,
        "max_depth": analysis.depth.max_depth,
        "mean_posted": analysis.depth.mean_posted,
        "mean_empty_fraction": analysis.depth.mean_empty_fraction,
        "collisions": analysis.depth.collisions,
        "unexpected_total": analysis.depth.unexpected_total,
        "drained_total": analysis.depth.drained_total,
        "call_mix": {group.value: frac for group, frac in analysis.call_mix.items()},
        "wildcard_usage": {
            wc.value: count for wc, count in analysis.wildcard_usage.items()
        },
        "p2p_kinds": {kind.value: count for kind, count in analysis.p2p_kinds.items()},
        "unique_tags": analysis.unique_tags(),
        "unique_pairs": analysis.unique_pairs,
        "total_ops": analysis.total_ops,
    }


def export_trace_analysis(
    trace: Trace, out_dir: Path, bins_list: tuple[int, ...] = BIN_SWEEP
) -> dict[int, AppAnalysis]:
    """Analyze one trace at every bin count and write its folders."""
    from repro.analyzer.processing import analyze

    results = {bins: analyze(trace, bins, keep_datapoints=True) for bins in bins_list}
    app_dir = out_dir / trace.name.replace("/", "_")
    for bins, analysis in results.items():
        bins_dir = app_dir / str(bins)
        bins_dir.mkdir(parents=True, exist_ok=True)
        (bins_dir / "stats.json").write_text(
            json.dumps(_analysis_record(analysis), indent=2, sort_keys=True) + "\n"
        )
        # Raw datapoint timeline for the plotting scripts.
        lines = ["rank,walltime,max_depth,total_posted,unexpected,empty_fraction"]
        lines += [
            f"{p.rank},{p.walltime:.6f},{p.max_depth},{p.total_posted},"
            f"{p.unexpected},{p.empty_fraction:.4f}"
            for p in analysis.datapoints
        ]
        (bins_dir / "datapoints.csv").write_text("\n".join(lines) + "\n")
        # Tag histogram as CSV for the plotting scripts.
        lines = ["tag,count"]
        lines += [f"{tag},{count}" for tag, count in sorted(analysis.tag_usage.items())]
        (bins_dir / "tag_usage.csv").write_text("\n".join(lines) + "\n")
    return results


def export_artifact(
    out_dir: Path | str,
    *,
    bins_list: tuple[int, ...] = BIN_SWEEP,
    rounds: int = 6,
    processes: int | None = None,
    names: list[str] | None = None,
) -> Path:
    """Run the full A2 pipeline: every app x every bin count, on disk."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    summary: dict[str, dict[str, dict]] = {}
    for name in names if names is not None else app_names():
        trace = generate(name, processes=processes, rounds=rounds)
        results = export_trace_analysis(trace, out_dir, bins_list)
        summary[name] = {
            str(bins): _analysis_record(analysis) for bins, analysis in results.items()
        }
    (out_dir / "summary.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    return out_dir


def load_summary(out_dir: Path | str) -> dict:
    """Read back an exported artifact's summary."""
    return json.loads((Path(out_dir) / "summary.json").read_text())

"""Communication-graph analysis of traces.

The matching behaviour the paper analyzes is downstream of the
application's communication *topology*: how many peers a rank talks
to (its pre-posted window ≈ queue depth), how symmetric the exchange
is, and whether traffic concentrates on hot receivers (the many-to-one
pattern the introduction singles out). This module builds the directed
communication graph of a trace (nodes = ranks, edge weights = message
counts) and derives those structural statistics, connecting each
application's Fig. 7 queue depth to the topology that produces it.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.traces.model import OpKind, Trace

__all__ = ["CommGraphStats", "build_comm_graph", "graph_stats"]


@dataclass(frozen=True, slots=True)
class CommGraphStats:
    """Structural summary of an application's communication graph."""

    nodes: int
    edges: int
    messages: int
    #: Mean / max number of distinct senders per receiver — the
    #: direct driver of pre-posted queue depth.
    mean_in_degree: float
    max_in_degree: int
    #: Fraction of directed edges with a reverse edge (halo exchanges
    #: are symmetric; gathers are not).
    symmetry: float
    #: Messages on the busiest receiver / mean per receiver (hotspot
    #: factor; many-to-one patterns score high).
    hotspot_factor: float
    #: Weakly-connected communicating components.
    components: int

    def is_neighbor_exchange(self) -> bool:
        """Heuristic signature of a halo/stencil app: symmetric,
        bounded-degree, single component."""
        return self.symmetry > 0.9 and self.max_in_degree <= 32


def build_comm_graph(trace: Trace) -> nx.DiGraph:
    """Directed graph: edge (s, d) weighted by messages s -> d."""
    graph = nx.DiGraph()
    graph.add_nodes_from(range(trace.nprocs))
    for rank_trace in trace.ranks:
        for op in rank_trace.ops:
            if op.kind in (OpKind.ISEND, OpKind.SEND):
                if graph.has_edge(rank_trace.rank, op.peer):
                    graph[rank_trace.rank][op.peer]["weight"] += 1
                else:
                    graph.add_edge(rank_trace.rank, op.peer, weight=1)
    return graph


def graph_stats(trace: Trace) -> CommGraphStats:
    """Structural statistics of the trace's communication graph."""
    graph = build_comm_graph(trace)
    messages = sum(weight for _, _, weight in graph.edges(data="weight"))
    in_degrees = [degree for _, degree in graph.in_degree()]
    receivers = [node for node in graph.nodes if graph.in_degree(node) > 0]
    in_weights = {
        node: sum(data["weight"] for _, _, data in graph.in_edges(node, data=True))
        for node in receivers
    }
    if graph.number_of_edges():
        reciprocal = sum(
            1 for s, d in graph.edges if graph.has_edge(d, s)
        )
        symmetry = reciprocal / graph.number_of_edges()
    else:
        symmetry = 1.0
    if in_weights:
        mean_weight = sum(in_weights.values()) / len(in_weights)
        hotspot = max(in_weights.values()) / mean_weight if mean_weight else 0.0
    else:
        hotspot = 0.0
    return CommGraphStats(
        nodes=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        messages=messages,
        mean_in_degree=sum(in_degrees) / len(in_degrees) if in_degrees else 0.0,
        max_in_degree=max(in_degrees, default=0),
        symmetry=symmetry,
        hotspot_factor=hotspot,
        components=nx.number_weakly_connected_components(graph),
    )

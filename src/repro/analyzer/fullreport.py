"""Full per-application report: every analysis lens in one page.

Combines the analyzer's views of a single trace — call mix, queue
depth sweep, wildcard and tag usage, communication topology, engine
replay, occupancy theory, and the bin-count recommendation — into one
formatted report. Exposed on the CLI as
``repro-analyze --app <name> --full-report``.
"""

from __future__ import annotations

from repro.analyzer.commgraph import graph_stats
from repro.analyzer.model import predict
from repro.analyzer.processing import analyze
from repro.analyzer.recommend import recommend_bins
from repro.analyzer.replay import replay_trace
from repro.traces.model import OpGroup, Trace

__all__ = ["format_app_report"]


def format_app_report(trace: Trace, *, bins_list: tuple[int, ...] = (1, 32, 128)) -> str:
    """One-page matching profile of a trace."""
    lines: list[str] = []
    lines.append(f"=== {trace.name} — matching profile ===")
    lines.append(f"ranks: {trace.nprocs}   trace ops: {trace.total_ops()}")

    # Call mix (Fig. 6 lens).
    mix = trace.call_mix()
    lines.append(
        "call mix: "
        f"p2p {mix[OpGroup.P2P]:.1%}, "
        f"collectives {mix[OpGroup.COLLECTIVE]:.1%}, "
        f"one-sided {mix[OpGroup.ONE_SIDED]:.1%}"
    )

    # Topology lens.
    topo = graph_stats(trace)
    lines.append(
        f"topology: {topo.edges} edges, max in-degree {topo.max_in_degree}, "
        f"symmetry {topo.symmetry:.0%}, hotspot x{topo.hotspot_factor:.1f}"
        + (", neighbor-exchange signature" if topo.is_neighbor_exchange() else "")
    )

    # Queue-depth sweep (Fig. 7 lens).
    lines.append("")
    lines.append(f"{'bins':>6s} {'mean':>7s} {'p95':>7s} {'max':>5s} {'collisions':>11s}")
    reference = None
    for bins in bins_list:
        analysis = analyze(trace, bins)
        if reference is None:
            reference = analysis
        depth = analysis.depth
        lines.append(
            f"{bins:6d} {depth.mean_depth:7.2f} {depth.p95_depth:7.2f} "
            f"{depth.max_depth:5d} {depth.collisions:11d}"
        )

    # Key population and wildcard usage.
    assert reference is not None
    lines.append("")
    lines.append(
        f"keys: {reference.unique_pairs} unique (source, tag) pairs, "
        f"{reference.unique_tags()} tags"
    )
    if reference.wildcard_usage:
        usage = ", ".join(
            f"{wc.value}: {count}" for wc, count in sorted(
                reference.wildcard_usage.items(), key=lambda item: item[0].value
            )
        )
        lines.append(f"receive wildcard classes: {usage}")

    # Occupancy theory check at the largest sweep point.
    largest = bins_list[-1]
    theory = predict(reference.unique_pairs, 3 * largest)
    lines.append(
        f"theory @{largest} bins: expected max load "
        f"{theory.expected_max_load:.1f}, empty fraction "
        f"{theory.expected_empty_fraction:.2f}"
    )

    # Engine replay (offload suitability).
    replay = replay_trace(trace)
    if replay.messages:
        lines.append(
            f"engine replay: conflict rate {replay.conflict_rate:.1%}, "
            f"paths optimistic/fast/slow = "
            f"{replay.optimistic}/{replay.fast_path}/{replay.slow_path} "
            f"-> offload {'friendly' if replay.offload_friendly() else 'HOSTILE'}"
        )
    else:
        lines.append("engine replay: no p2p traffic")

    # Sizing recommendation.
    rec = recommend_bins(trace, target_depth=1.0)
    lines.append(
        f"sizing: {rec.bins} bins reach mean depth {rec.mean_depth:.2f} "
        f"({rec.bin_table_bytes / 1024:.1f} KiB of bin tables)"
    )
    return "\n".join(lines)

"""Analysis comparison: synthetic vs real traces, run vs run.

When a real DUMPI capture of one of the Table II applications is
available, the question is whether the synthetic stand-in reproduces
its matching behaviour. This module diffs two analyses of the same
bin count across the statistics that drive the paper's conclusions —
queue depth, collisions, call mix, wildcard usage — and classifies
each as matching (within tolerance) or divergent, producing the
validation table a referee would want.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyzer.statistics import AppAnalysis
from repro.traces.model import OpGroup

__all__ = ["MetricDelta", "ComparisonReport", "compare_analyses"]


@dataclass(frozen=True, slots=True)
class MetricDelta:
    """One compared statistic."""

    metric: str
    left: float
    right: float
    #: Relative difference |l - r| / max(|l|, |r|, eps).
    relative: float
    within_tolerance: bool


@dataclass(slots=True)
class ComparisonReport:
    left_name: str
    right_name: str
    bins: int
    deltas: list[MetricDelta]

    @property
    def ok(self) -> bool:
        return all(delta.within_tolerance for delta in self.deltas)

    def divergent(self) -> list[MetricDelta]:
        return [delta for delta in self.deltas if not delta.within_tolerance]

    def format(self) -> str:
        lines = [
            f"{self.left_name} vs {self.right_name} @ {self.bins} bins",
            f"{'metric':24s} {'left':>10s} {'right':>10s} {'rel diff':>9s}  ok",
        ]
        for delta in self.deltas:
            lines.append(
                f"{delta.metric:24s} {delta.left:10.3f} {delta.right:10.3f} "
                f"{delta.relative:9.1%}  {'yes' if delta.within_tolerance else 'NO'}"
            )
        return "\n".join(lines)


def _delta(metric: str, left: float, right: float, tolerance: float) -> MetricDelta:
    scale = max(abs(left), abs(right), 1e-9)
    relative = abs(left - right) / scale
    return MetricDelta(
        metric=metric,
        left=left,
        right=right,
        relative=relative,
        within_tolerance=relative <= tolerance,
    )


def compare_analyses(
    left: AppAnalysis,
    right: AppAnalysis,
    *,
    depth_tolerance: float = 0.35,
    mix_tolerance: float = 0.10,
) -> ComparisonReport:
    """Diff two analyses at the same bin count.

    Depth statistics get a loose tolerance (they depend on scale and
    round counts); the call mix is a structural property and gets a
    tight one.
    """
    if left.bins != right.bins:
        raise ValueError(
            f"comparing different bin counts ({left.bins} vs {right.bins}) "
            "is meaningless"
        )
    deltas = [
        _delta("mean_depth", left.depth.mean_depth, right.depth.mean_depth, depth_tolerance),
        _delta("max_depth", left.depth.max_depth, right.depth.max_depth, depth_tolerance),
        _delta("p95_depth", left.depth.p95_depth, right.depth.p95_depth, depth_tolerance),
        _delta(
            "mean_empty_fraction",
            left.depth.mean_empty_fraction,
            right.depth.mean_empty_fraction,
            depth_tolerance,
        ),
        _delta(
            "p2p_fraction",
            left.call_mix.get(OpGroup.P2P, 0.0),
            right.call_mix.get(OpGroup.P2P, 0.0),
            mix_tolerance,
        ),
        _delta(
            "collective_fraction",
            left.call_mix.get(OpGroup.COLLECTIVE, 0.0),
            right.call_mix.get(OpGroup.COLLECTIVE, 0.0),
            mix_tolerance,
        ),
    ]
    return ComparisonReport(
        left_name=left.name, right_name=right.name, bins=left.bins, deltas=deltas
    )

"""GPU-direct delivery (§I motivation).

"This is especially advantageous in GPU-centric communication …
where the matching can be performed on the sNIC, then the message is
directly transferred to GPU memory, bypassing the CPU entirely."

The model keeps separate *memory spaces* and counts the copies and
PCIe crossings each delivery path performs:

* host path: bounce buffer -> host staging -> GPU (two hops, CPU
  involved);
* GPU-direct path: bounce buffer -> GPU (one DMA, CPU bypassed) —
  possible precisely because matching already ran on the NIC and the
  target buffer is known there.

:class:`GpuDirectReceiver` wraps the §IV receiver and resolves each
matched receive into the memory space its user buffer lives in.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.envelope import ReceiveRequest
from repro.rdma.protocol import RdmaReceiver

__all__ = ["MemorySpace", "CopyAccounting", "GpuDirectReceiver"]


class MemorySpace(enum.Enum):
    HOST = "host"
    GPU = "gpu"


@dataclass(slots=True)
class CopyAccounting:
    """Data-movement counters per delivery path."""

    host_copies: int = 0  #: copies executed by the host CPU
    dma_transfers: int = 0  #: NIC-initiated DMA writes
    pcie_crossings: int = 0
    cpu_bypassed: int = 0  #: deliveries that never touched the host

    def total_hops(self) -> int:
        return self.host_copies + self.dma_transfers


@dataclass(slots=True)
class _Buffer:
    space: MemorySpace
    data: bytes = b""


class GpuDirectReceiver:
    """Matching on the NIC + direct placement into GPU memory."""

    def __init__(self, receiver: RdmaReceiver, *, gpu_direct: bool = True) -> None:
        self.receiver = receiver
        self.gpu_direct = gpu_direct
        self._buffers: dict[int, _Buffer] = {}
        self.accounting = CopyAccounting()
        self._resolved = 0
        #: handle -> final buffer contents, for assertions.
        self.delivered: dict[int, bytes] = {}

    def post_receive(
        self, request: ReceiveRequest, *, space: MemorySpace = MemorySpace.HOST
    ) -> None:
        """Post a receive whose user buffer lives in ``space``."""
        self._buffers[request.handle] = _Buffer(space)
        self.receiver.post_receive(request)
        self._resolve_new()

    def progress(self) -> int:
        moved = self.receiver.progress()
        self._resolve_new()
        return moved

    def _resolve_new(self) -> None:
        completed = self.receiver.completed
        while self._resolved < len(completed):
            delivery = completed[self._resolved]
            self._resolved += 1
            buffer = self._buffers[delivery.handle]
            buffer.data = delivery.payload
            self.delivered[delivery.handle] = delivery.payload
            if buffer.space is MemorySpace.GPU and self.gpu_direct:
                # NIC DMA straight to GPU memory: one PCIe crossing,
                # the host CPU never sees the data.
                self.accounting.dma_transfers += 1
                self.accounting.pcie_crossings += 1
                self.accounting.cpu_bypassed += 1
            elif buffer.space is MemorySpace.GPU:
                # Legacy path: NIC -> host staging -> GPU.
                self.accounting.dma_transfers += 1
                self.accounting.host_copies += 1
                self.accounting.pcie_crossings += 2
            else:
                self.accounting.dma_transfers += 1
                self.accounting.pcie_crossings += 1

"""Receiver-driven credit flow control.

The bounce-buffer pool is finite NIC memory (§IV-A); a sender that
outruns matching would exhaust it. Real RDMA deployments avoid the
resulting RNR storms with receiver-granted credits: the receiver
advertises how many messages it can stage, the sender spends one
credit per message and stalls at zero, and the receiver returns
credits as matching drains bounce buffers.

:class:`CreditedSender` / :class:`CreditedReceiver` wrap the §IV
protocol engines with that scheme, turning
:class:`repro.rdma.bounce.BouncePoolExhausted` from a hard failure
into backpressure.

Loss robustness: grants are *cumulative*. Every grant ack carries the
receiver's lifetime ``total`` of credits issued alongside the
incremental ``credits`` count, and the sender credits itself the delta
between that total and the highest total it has seen. A grant lost on
a lossy wire is therefore repaired by the *next* grant (whose total
subsumes it), a duplicated grant mints nothing (its delta is zero),
and a stranded sender can always be revived by
:meth:`CreditedReceiver.readvertise`, which retransmits the current
total without issuing anything new. Over a
:class:`repro.rdma.reliability.ReliableWire` grants are additionally
sequenced and retransmitted like any other packet; over a bare
:class:`repro.rdma.faultwire.FaultyWire` the cumulative scheme is what
keeps the credit ledger consistent (regression-tested in
``tests/rdma/test_flow.py``).

Memory pressure: a :class:`repro.pressure.budget.PressureMeter` given
to the receiver shrinks the credit window while the budget is under
pressure — earned grants are withheld (counted in
``stats.credit_holds``) until occupancy falls below the low watermark,
so the sender's window tracks what the accelerator can actually hold.
"""

from __future__ import annotations

from collections import deque

from repro.rdma.protocol import RdmaReceiver, RdmaSender

__all__ = ["CreditedSender", "CreditedReceiver", "CreditStall"]


class CreditStall(Exception):
    """The sender is out of credits and the send queue is bounded."""


class CreditedSender:
    """Sender-side credit gate over an :class:`RdmaSender`."""

    def __init__(self, sender: RdmaSender, *, max_queued: int = 1 << 16) -> None:
        self.sender = sender
        self.credits = 0
        self._queued: deque[tuple[int, bytes, int]] = deque()
        self._max_queued = max_queued
        self.stalls = 0
        #: Total credits accepted from the peer (grant audit trail).
        self.grants_received = 0
        #: Highest cumulative grant total seen from the peer; deltas
        #: against it make lost/duplicated grant acks harmless.
        self._grant_total_seen = 0

    @property
    def queued(self) -> int:
        return len(self._queued)

    @property
    def max_queued(self) -> int:
        return self._max_queued

    def send(self, tag: int, payload: bytes, comm: int = 0) -> bool:
        """Send now if credits allow, else queue. Returns whether the
        message left immediately."""
        if self.credits > 0:
            self.credits -= 1
            self.sender.send(tag, payload, comm)
            return True
        if len(self._queued) >= self._max_queued:
            raise CreditStall(
                f"no credits and {self._max_queued} sends already queued"
            )
        self._queued.append((tag, payload, comm))
        self.stalls += 1
        if self.sender.recorder.enabled:
            # No mid exists yet (the send has not been posted), so the
            # stall lands on the run-level event stream.
            self.sender.recorder.event(
                "credit_stall", rank=self.sender.rank, queued=len(self._queued)
            )
        return False

    def grant(self, credits: int) -> int:
        """Receive a credit grant; drain queued sends. Returns how many
        queued messages were released."""
        if credits < 0:
            raise ValueError(f"credit grant must be non-negative, got {credits}")
        self.credits += credits
        self.grants_received += credits
        released = 0
        while self._queued and self.credits > 0:
            tag, payload, comm = self._queued.popleft()
            self.credits -= 1
            self.sender.send(tag, payload, comm)
            released += 1
        return released

    def pump_grants(self) -> int:
        """Poll the sender's CQ for credit-grant acks from the peer.

        Grant acks carrying a cumulative ``total`` are credited by
        delta against the highest total seen, which dedups duplicated
        acks and lets any later ack repair an earlier lost one. Legacy
        acks without a total fall back to the incremental count.
        """
        granted = 0
        for cqe in self.sender.qp.poll():
            if cqe.opcode == "ack" and isinstance(cqe.payload, dict):
                payload = cqe.payload
                if "total" in payload:
                    delta = int(payload["total"]) - self._grant_total_seen
                    if delta > 0:
                        self._grant_total_seen = int(payload["total"])
                        granted += self.grant(delta)
                else:
                    granted += self.grant(int(payload.get("credits", 0)))
        return granted


class CreditedReceiver:
    """Receiver-side credit issuer over an :class:`RdmaReceiver`.

    Credits track free bounce buffers: the initial advertisement is
    the pool size, and each completed eager delivery (which releases
    its bounce buffer) earns the sender a new credit. Grants are
    batched to amortize the ack traffic. With a ``pressure`` meter,
    grants are withheld while the memory budget is under pressure.
    """

    def __init__(
        self, receiver: RdmaReceiver, *, grant_batch: int = 16, pressure=None
    ) -> None:
        self.receiver = receiver
        self.grant_batch = max(1, grant_batch)
        self.pressure = pressure
        self._pending_grants = 0
        self._completed_seen = 0
        self.total_granted = 0

    def _post_grant(self, credits: int) -> None:
        self.total_granted += credits
        self.receiver.qp.post_ack({"credits": credits, "total": self.total_granted})

    def initial_grant(self) -> int:
        """Advertise the whole bounce pool at connection setup."""
        credits = self.receiver.qp.bounce_pool.capacity
        self._post_grant(credits)
        return credits

    def progress(self) -> int:
        """Receiver progress plus credit replenishment."""
        moved = self.receiver.progress()
        newly_completed = len(self.receiver.completed) - self._completed_seen
        self._completed_seen = len(self.receiver.completed)
        self._pending_grants += newly_completed
        if self._pending_grants >= self.grant_batch:
            if self.pressure is not None and self.pressure.under_pressure:
                # Credit shrink: hold earned grants while the budget is
                # pressured so the sender's window tracks real headroom.
                self.pressure.stats.credit_holds += 1
                return moved
            self._post_grant(self._pending_grants)
            self._pending_grants = 0
        return moved

    def flush_grants(self) -> None:
        """Grant any remainder below the batch threshold."""
        if self._pending_grants:
            self._post_grant(self._pending_grants)
            self._pending_grants = 0

    def readvertise(self) -> None:
        """Retransmit the cumulative grant total without issuing new
        credits — the recovery verb for grants lost on a lossy wire
        (idempotent: a sender that saw everything gains nothing)."""
        self.receiver.qp.post_ack({"credits": 0, "total": self.total_granted})

"""Receiver-driven credit flow control.

The bounce-buffer pool is finite NIC memory (§IV-A); a sender that
outruns matching would exhaust it. Real RDMA deployments avoid the
resulting RNR storms with receiver-granted credits: the receiver
advertises how many messages it can stage, the sender spends one
credit per message and stalls at zero, and the receiver returns
credits as matching drains bounce buffers.

:class:`CreditedSender` / :class:`CreditedReceiver` wrap the §IV
protocol engines with that scheme, turning
:class:`repro.rdma.bounce.BouncePoolExhausted` from a hard failure
into backpressure. Credit grants ride the same wire as acks — which
means that over a :class:`repro.rdma.reliability.ReliableWire` they
are sequenced, checksummed, retransmitted on loss, and deduplicated
like any other packet: a dropped or duplicated grant can neither
strand the sender at zero credits nor mint credits out of thin air.
(Over a bare :class:`repro.rdma.faultwire.FaultyWire` with no
reliability layer, a lost grant *is* lost — credit accounting assumes
the transport below it is reliable, exactly like the bounce-pool
arithmetic it protects.)
"""

from __future__ import annotations

from collections import deque

from repro.rdma.protocol import RdmaReceiver, RdmaSender

__all__ = ["CreditedSender", "CreditedReceiver", "CreditStall"]


class CreditStall(Exception):
    """The sender is out of credits and the send queue is bounded."""


class CreditedSender:
    """Sender-side credit gate over an :class:`RdmaSender`."""

    def __init__(self, sender: RdmaSender, *, max_queued: int = 1 << 16) -> None:
        self.sender = sender
        self.credits = 0
        self._queued: deque[tuple[int, bytes, int]] = deque()
        self._max_queued = max_queued
        self.stalls = 0
        #: Total credits accepted from the peer (grant audit trail).
        self.grants_received = 0

    @property
    def queued(self) -> int:
        return len(self._queued)

    @property
    def max_queued(self) -> int:
        return self._max_queued

    def send(self, tag: int, payload: bytes, comm: int = 0) -> bool:
        """Send now if credits allow, else queue. Returns whether the
        message left immediately."""
        if self.credits > 0:
            self.credits -= 1
            self.sender.send(tag, payload, comm)
            return True
        if len(self._queued) >= self._max_queued:
            raise CreditStall(
                f"no credits and {self._max_queued} sends already queued"
            )
        self._queued.append((tag, payload, comm))
        self.stalls += 1
        return False

    def grant(self, credits: int) -> int:
        """Receive a credit grant; drain queued sends. Returns how many
        queued messages were released."""
        if credits < 0:
            raise ValueError(f"credit grant must be non-negative, got {credits}")
        self.credits += credits
        self.grants_received += credits
        released = 0
        while self._queued and self.credits > 0:
            tag, payload, comm = self._queued.popleft()
            self.credits -= 1
            self.sender.send(tag, payload, comm)
            released += 1
        return released

    def pump_grants(self) -> int:
        """Poll the sender's CQ for credit-grant acks from the peer."""
        granted = 0
        for cqe in self.sender.qp.poll():
            if cqe.opcode == "ack" and isinstance(cqe.payload, dict):
                granted += self.grant(int(cqe.payload.get("credits", 0)))
        return granted


class CreditedReceiver:
    """Receiver-side credit issuer over an :class:`RdmaReceiver`.

    Credits track free bounce buffers: the initial advertisement is
    the pool size, and each completed eager delivery (which releases
    its bounce buffer) earns the sender a new credit. Grants are
    batched to amortize the ack traffic.
    """

    def __init__(self, receiver: RdmaReceiver, *, grant_batch: int = 16) -> None:
        self.receiver = receiver
        self.grant_batch = max(1, grant_batch)
        self._pending_grants = 0
        self._completed_seen = 0
        self.total_granted = 0

    def initial_grant(self) -> int:
        """Advertise the whole bounce pool at connection setup."""
        credits = self.receiver.qp.bounce_pool.capacity
        self.receiver.qp.post_ack({"credits": credits})
        self.total_granted += credits
        return credits

    def progress(self) -> int:
        """Receiver progress plus credit replenishment."""
        moved = self.receiver.progress()
        newly_completed = len(self.receiver.completed) - self._completed_seen
        self._completed_seen = len(self.receiver.completed)
        self._pending_grants += newly_completed
        if self._pending_grants >= self.grant_batch:
            self.receiver.qp.post_ack({"credits": self._pending_grants})
            self.total_granted += self._pending_grants
            self._pending_grants = 0
        return moved

    def flush_grants(self) -> None:
        """Grant any remainder below the batch threshold."""
        if self._pending_grants:
            self.receiver.qp.post_ack({"credits": self._pending_grants})
            self.total_granted += self._pending_grants
            self._pending_grants = 0

"""Seeded fault injection below the transport abstraction.

:class:`FaultyWire` behaves like :class:`repro.rdma.wire.Wire` but
applies a deterministic, seeded fault schedule to every transmitted
packet: drop, duplicate, reorder within a bounded window, and payload
corruption. It models the physical link a reliable-connection NIC
actually runs over; :mod:`repro.rdma.reliability` is the recovery
protocol that turns this back into exactly-once FIFO delivery.

Design notes:

* **Determinism** — all randomness flows through one
  :func:`repro.util.rng.make_rng` generator, so a (plan, traffic)
  pair reproduces the same fault schedule bit-for-bit. The chaos
  harness leans on this to re-run failing seeds.
* **Reordering is bounded** — a reordered packet is *held back* for at
  most ``reorder_window`` subsequent wire operations toward the same
  destination, then force-released. Reordering alone therefore never
  turns into silent loss; only ``drop_rate`` removes packets.
* **Corruption is detectable by construction** — only packets carrying
  a checksum (reliability-layer frames) are corrupted, by flipping
  payload bytes and/or the checksum so verification fails at the
  receiver. Corrupting an unprotected packet would be indistinguishable
  from an application bug, which is not the failure mode under test;
  such events are counted as ``corrupt_skipped`` instead.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any

from repro.rdma.wire import Packet, Wire
from repro.util.rng import make_rng

__all__ = ["FaultPlan", "FaultStats", "FaultyWire"]


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A composable, seeded fault schedule.

    Rates are independent per-packet probabilities, applied in the
    order corrupt -> duplicate -> reorder -> drop (a duplicated packet
    can itself be dropped or held, like a real flaky link).
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    #: Maximum wire operations a reordered packet can be held back.
    reorder_window: int = 4
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "reorder_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.reorder_window < 1:
            raise ValueError(f"reorder_window must be >= 1, got {self.reorder_window}")

    # -- composition helpers -------------------------------------------

    @classmethod
    def clean(cls, seed: int = 0) -> "FaultPlan":
        """No faults at all (control arm)."""
        return cls(seed=seed)

    @classmethod
    def drops(cls, rate: float, seed: int = 0) -> "FaultPlan":
        return cls(seed=seed, drop_rate=rate)

    @classmethod
    def chaos(
        cls,
        seed: int = 0,
        *,
        drop_rate: float = 0.05,
        duplicate_rate: float = 0.05,
        reorder_rate: float = 0.1,
        reorder_window: int = 4,
        corrupt_rate: float = 0.05,
    ) -> "FaultPlan":
        """Everything at once — the default chaos-harness mix."""
        return cls(
            seed=seed,
            drop_rate=drop_rate,
            duplicate_rate=duplicate_rate,
            reorder_rate=reorder_rate,
            reorder_window=reorder_window,
            corrupt_rate=corrupt_rate,
        )

    def with_options(self, **changes: Any) -> "FaultPlan":
        return replace(self, **changes)

    @property
    def is_clean(self) -> bool:
        return (
            self.drop_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.reorder_rate == 0.0
            and self.corrupt_rate == 0.0
        )


@dataclass(slots=True)
class FaultStats:
    """Counts of injected faults (ground truth for recovery tests)."""

    transmitted: int = 0
    delivered: int = 0
    dropped: int = 0
    duplicated: int = 0
    reordered: int = 0
    corrupted: int = 0
    #: Corruption rolls on packets without a checksum (not injectable).
    corrupt_skipped: int = 0

    def total_injected(self) -> int:
        return self.dropped + self.duplicated + self.reordered + self.corrupted


class _Held:
    """A reordered packet waiting out its hold-back countdown."""

    __slots__ = ("packet", "remaining")

    def __init__(self, packet: Packet, remaining: int) -> None:
        self.packet = packet
        self.remaining = remaining


class FaultyWire(Wire):
    """A :class:`Wire` with a seeded fault schedule applied on transmit."""

    def __init__(self, a: str = "a", b: str = "b", *, plan: FaultPlan | None = None) -> None:
        super().__init__(a, b)
        self.plan = plan if plan is not None else FaultPlan.clean()
        self.stats = FaultStats()
        self._rng = make_rng(self.plan.seed)
        self._held: dict[str, list[_Held]] = {name: [] for name in self.names}

    @classmethod
    def wrapping(cls, wire: Wire, plan: FaultPlan) -> "FaultyWire":
        """A faulty wire with the same endpoint names as ``wire``."""
        a, b = wire.names
        return cls(a, b, plan=plan)

    # -- fault machinery ------------------------------------------------

    def held(self, dst: str | None = None) -> int:
        """Packets currently held back for reordering."""
        if dst is not None:
            return len(self._held[dst])
        return sum(len(held) for held in self._held.values())

    def _age_held(self, dst: str) -> None:
        """Advance hold-back countdowns; release due packets in order."""
        held = self._held[dst]
        if not held:
            return
        due: list[Packet] = []
        remaining: list[_Held] = []
        for entry in held:
            entry.remaining -= 1
            if entry.remaining <= 0:
                due.append(entry.packet)
            else:
                remaining.append(entry)
        if due:
            self._held[dst] = remaining
            for packet in due:
                self._deliver(dst, packet)

    def _deliver(self, dst: str, packet: Packet) -> None:
        self._ends[dst].inbound.append(packet)
        self.delivered += 1
        self.stats.delivered += 1

    def _corrupt(self, packet: Packet) -> Packet:
        """Flip the frame so checksum verification fails downstream."""
        mutated = packet
        payload = packet.payload
        if isinstance(payload, (bytes, bytearray)) and payload:
            index = int(self._rng.integers(len(payload)))
            flipped = bytearray(payload)
            flipped[index] ^= 0xFF
            mutated = dataclasses.replace(mutated, payload=bytes(flipped))
        else:
            # Structured payload: damage the integrity field itself.
            assert packet.checksum is not None
            mutated = dataclasses.replace(
                mutated, checksum=(packet.checksum ^ 0x5A5A5A5A) & 0xFFFFFFFF
            )
        return mutated

    def transmit(self, src: str, packet: Packet) -> None:
        dst = self.peer_of(src).name
        self._age_held(dst)
        self.stats.transmitted += 1

        if self.plan.corrupt_rate and self._rng.random() < self.plan.corrupt_rate:
            if packet.checksum is not None:
                packet = self._corrupt(packet)
                self.stats.corrupted += 1
            else:
                self.stats.corrupt_skipped += 1

        if self.plan.duplicate_rate and self._rng.random() < self.plan.duplicate_rate:
            self.stats.duplicated += 1
            self._deliver(dst, packet)

        if self.plan.drop_rate and self._rng.random() < self.plan.drop_rate:
            self.stats.dropped += 1
            return

        if self.plan.reorder_rate and self._rng.random() < self.plan.reorder_rate:
            hold = 1 + int(self._rng.integers(self.plan.reorder_window))
            self._held[dst].append(_Held(packet, hold))
            self.stats.reordered += 1
            return

        self._deliver(dst, packet)

    def receive(self, dst: str) -> Packet | None:
        self._age_held(dst)
        return super().receive(dst)

    def drain(self, dst: str) -> list[Packet]:
        self._age_held(dst)
        return super().drain(dst)

"""Eager and rendezvous protocols over the simulated RDMA substrate
(§IV-B), glued to a matching engine.

* **Eager** — small messages travel inline; after matching, the
  payload is copied from the bounce buffer into the user buffer.
* **Rendezvous** — the sender registers its buffer and sends a
  Ready-To-Send carrying the rkey; after matching, the receiver (the
  DPA, in the offloaded design) issues an RDMA read directly into the
  user buffer, never touching the host CPU.

:class:`RdmaSender` and :class:`RdmaReceiver` wrap the two sides.
The receiver drives any :class:`repro.core.engine.OptimisticMatcher`
(or a serial matcher via duck typing: ``post_receive`` /
``submit_message`` / ``process_all``) and resolves deliveries into a
``completed`` list of (receive handle, payload) records — the final
observable behaviour of the whole offload pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import OptimisticMatcher
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.events import MatchEvent, MatchKind
from repro.core.hashing import compute_inline_hashes
from repro.obs.ledger import NULL_RECORDER, FlightRecorder
from repro.rdma.qp import QueuePair, StagedMessage

__all__ = [
    "MessageHeader",
    "RdmaSender",
    "RdmaReceiver",
    "Delivery",
    "DEFAULT_EAGER_THRESHOLD",
    "pump",
]

#: Eager/rendezvous switchover (bytes); typical RDMA MPI default.
DEFAULT_EAGER_THRESHOLD = 1024


@dataclass(frozen=True, slots=True)
class MessageHeader:
    """The wire header the matcher sees (envelope + protocol info)."""

    source: int
    tag: int
    comm: int
    size: int
    send_seq: int
    protocol: str  #: "eager" | "rndv"
    rkey: int = 0  #: rendezvous only
    inline_hashes: tuple[int, int, int] | None = None
    #: Flight-recorder message id (:mod:`repro.obs.ledger`); -1 = none.
    mid: int = -1


@dataclass(slots=True)
class Delivery:
    """One completed receive: the pipeline's end product."""

    handle: int  #: ReceiveRequest.handle of the matched receive
    payload: bytes
    protocol: str
    unexpected: bool  #: True when drained from the unexpected store


class RdmaSender:
    """Sender-side protocol engine."""

    def __init__(
        self,
        qp: QueuePair,
        rank: int,
        *,
        eager_threshold: int = DEFAULT_EAGER_THRESHOLD,
        inline_hashes: bool = True,
        demote_probe=None,
        recorder: FlightRecorder = NULL_RECORDER,
    ) -> None:
        """``demote_probe`` (optional) is consulted with the payload
        size for every eager-eligible send; returning True demotes the
        send to rendezvous so the payload stays registered in sender
        memory instead of landing in a receiver bounce buffer — the
        memory-pressure relief valve of :mod:`repro.pressure`."""
        self.qp = qp
        self.rank = rank
        self.eager_threshold = eager_threshold
        self.inline_hashes = inline_hashes
        self.demote_probe = demote_probe
        self.recorder = recorder
        #: Eager-eligible sends demoted to rendezvous by the probe.
        self.demotions = 0
        self._send_seq: dict[tuple[int, int], int] = {}

    def send(self, tag: int, payload: bytes, comm: int = 0) -> MessageHeader:
        """Send one message; protocol chosen by size (and, under
        memory pressure, by the demotion probe)."""
        key = (comm, tag)
        seq = self._send_seq.get(key, 0)
        self._send_seq[key] = seq + 1
        hashes = None
        if self.inline_hashes:
            ih = compute_inline_hashes(self.rank, tag)
            hashes = (ih.src_tag, ih.tag_only, ih.src_only)
        eager = len(payload) <= self.eager_threshold
        eager_eligible = eager
        if eager and self.demote_probe is not None and self.demote_probe(len(payload)):
            eager = False
            self.demotions += 1
        mid = -1
        if self.recorder.enabled:
            mid = self.recorder.open(
                source=self.rank,
                tag=tag,
                size=len(payload),
                protocol="eager" if eager else "rndv",
            )
            if eager_eligible and not eager:
                self.recorder.note(mid, "demoted", size=len(payload))
        if eager:
            header = MessageHeader(
                source=self.rank,
                tag=tag,
                comm=comm,
                size=len(payload),
                send_seq=seq,
                protocol="eager",
                inline_hashes=hashes,
                mid=mid,
            )
            self.qp.post_send("send", header, payload)
        else:
            region = self.qp.memory.register(payload)
            header = MessageHeader(
                source=self.rank,
                tag=tag,
                comm=comm,
                size=len(payload),
                send_seq=seq,
                protocol="rndv",
                rkey=region.rkey,
                inline_hashes=hashes,
                mid=mid,
            )
            # An RTS "might include some message data" (§IV-B); this
            # model keeps it header-only for clarity.
            self.qp.post_send("rts", header)
        return header


class RdmaReceiver:
    """Receiver-side pipeline: CQ -> matcher -> protocol completion.

    A receiver drives one matcher fed by *one or more* queue pairs —
    one on a point-to-point wire in the single-link scenarios, one per
    peer rank on a cluster fabric (an RC NIC holds one QP per
    connection but a single matching engine). Tokens, the staged
    store, and the completed list are shared across all queue pairs;
    protocol actions (rendezvous reads, bounce release) are routed to
    the queue pair the message arrived on.
    """

    def __init__(
        self,
        qp: QueuePair | None,
        matcher: OptimisticMatcher,
        *,
        recorder: FlightRecorder = NULL_RECORDER,
    ) -> None:
        self.qps: list[QueuePair] = []
        self.matcher = matcher
        self.recorder = recorder
        self.completed: list[Delivery] = []
        #: bounce-token -> (staged message, header) awaiting protocol.
        self._staged: dict[int, StagedMessage] = {}
        #: bounce-token -> queue pair the message was staged by.
        self._staged_qp: dict[int, QueuePair] = {}
        self._next_token = 0
        #: outstanding rendezvous reads: token -> match event.
        self._pending_reads: dict[int, MatchEvent] = {}
        #: Deliveries completed from host-spilled staging (degraded).
        self.host_staged_deliveries = 0
        #: Per-qp last observed wire-counter values (delta mirroring),
        #: parallel to ``qps``.
        self._wire_seen: list[dict[str, int]] = []
        if qp is not None:
            self.add_qp(qp)

    @property
    def qp(self) -> QueuePair | None:
        """The first (single-link scenarios: the only) queue pair."""
        return self.qps[0] if self.qps else None

    def add_qp(self, qp: QueuePair) -> QueuePair:
        """Attach another queue pair feeding this receiver's matcher."""
        self.qps.append(qp)
        self._wire_seen.append({"retransmits": 0, "rnr_naks": 0})
        return qp

    def post_receive(self, request: ReceiveRequest) -> None:
        """Post a receive; an unexpected drain completes immediately."""
        if self.recorder.enabled:
            self.recorder.open_receive(
                request.handle, source=request.source, tag=request.tag
            )
        event = self.matcher.post_receive(request)
        if event is not None:
            self._complete(event, unexpected=True)

    def progress(self) -> int:
        """One progress round: drain CQ, match, run protocols.

        Returns the number of completions processed.
        """
        from repro.core.envelope import InlineHashes

        completions = [
            (qp, cqe) for qp in self.qps for cqe in qp.poll(limit=1_000_000)
        ]
        n = 0
        for qp, cqe in completions:
            n += 1
            if cqe.opcode in ("send", "rts"):
                staged: StagedMessage = cqe.payload
                header: MessageHeader = staged.header
                token = self._next_token
                self._next_token += 1
                self._staged[token] = staged
                self._staged_qp[token] = qp
                inline = None
                if header.inline_hashes is not None:
                    inline = InlineHashes(*header.inline_hashes)
                mid = getattr(header, "mid", -1)
                if self.recorder.enabled:
                    self.recorder.stamp(mid, "engine")
                self.matcher.submit_message(
                    MessageEnvelope(
                        source=header.source,
                        tag=header.tag,
                        comm=header.comm,
                        size=header.size,
                        send_seq=token,  # token doubles as arrival id
                        inline_hashes=inline,
                        mid=mid,
                    )
                )
            elif cqe.opcode == "read_response":
                token, data = cqe.payload
                event = self._pending_reads.pop(token)
                if self.recorder.enabled:
                    self.recorder.complete(event.message.mid)
                    self.recorder.close_receive(
                        event.receive.handle, event.message.mid
                    )
                self.completed.append(
                    Delivery(
                        handle=event.receive.handle,
                        payload=data,
                        protocol="rndv",
                        unexpected=False,
                    )
                )
        for event in self.matcher.process_all():
            if event.kind is MatchKind.EXPECTED:
                self._complete(event, unexpected=False)
            elif event.kind is MatchKind.UNEXPECTED_DRAIN:
                # A deferred post admitted (or a host-parked evictee
                # recalled) inside the matcher's progress hook drained
                # an unexpected message; complete it like the inline
                # drain path would have.
                self._complete(event, unexpected=True)
            # STORED_UNEXPECTED: stays staged until a receive drains it.
        self._mirror_transport_stats()
        return n

    def _mirror_transport_stats(self) -> None:
        """Fold reliability-layer counters into the engine's stats so
        one object reports the whole stack's health (degraded matches,
        retransmits, RNR backpressure).

        Mirroring is *additive*: only the delta since the last sync is
        applied, so the engine counters stay cumulative across repeated
        syncs, across engine generations (the stats object is carried
        over spill/recovery), and across wire replacement (a fresh wire
        restarts its counters at zero; the delta tracker treats the new
        value as pure growth rather than clobbering history)."""
        stats = getattr(self.matcher, "stats", None)
        if stats is None:
            return
        for qp, seen in zip(self.qps, self._wire_seen):
            wire_stats = getattr(qp.wire, "stats", None)
            if wire_stats is None:
                continue
            for name, last in seen.items():
                current = getattr(wire_stats, name, 0)
                # A counter below its last-seen value means the wire
                # (and its stats) was replaced: the whole value is new
                # growth.
                delta = current if current < last else current - last
                if delta:
                    setattr(stats, name, getattr(stats, name, 0) + delta)
                seen[name] = current

    def _complete(self, event: MatchEvent, *, unexpected: bool) -> None:
        token = event.message.send_seq
        staged = self._staged.pop(token, None)
        qp = self._staged_qp.pop(token, None) or self.qp
        header: MessageHeader | None = staged.header if staged is not None else None
        if self.recorder.enabled:
            # Engines stamp "matched" with the resolution path; this
            # dedupes against that. Software matchers only get this one.
            self.recorder.stamp(event.message.mid, "matched")
        if header is not None and header.protocol == "rndv":
            # DPA-issued one-sided read into the user buffer (§IV-B),
            # issued on the queue pair the RTS arrived on — on a
            # fabric, the read must travel back to *that* sender.
            self._pending_reads[token] = event
            if self.recorder.enabled:
                self.recorder.stamp(event.message.mid, "rdma_read")
            qp.rdma_read(header.rkey, token)
            return
        payload = b""
        if staged is not None and staged.bounce is not None:
            payload = staged.bounce.read()
            qp.bounce_pool.release(staged.bounce)
        elif staged is not None and staged.host_data is not None:
            # Degraded path: the payload was spilled to host memory
            # because the bounce pool was exhausted at staging time.
            payload = staged.host_data
            self.host_staged_deliveries += 1
            stats = getattr(self.matcher, "stats", None)
            if stats is not None:
                stats.degraded_stagings += 1
                stats.degraded_matches += 1
        if self.recorder.enabled:
            self.recorder.complete(event.message.mid)
            self.recorder.close_receive(event.receive.handle, event.message.mid)
        self.completed.append(
            Delivery(
                handle=event.receive.handle,
                payload=payload,
                protocol="eager",
                unexpected=unexpected,
            )
        )

    @property
    def pending_reads(self) -> int:
        return len(self._pending_reads)


def pump(receiver: RdmaReceiver, *peer_qps: QueuePair, max_rounds: int = 64) -> None:
    """Progress both sides until the link is quiescent.

    Rendezvous requires the *sender's* NIC to serve inbound RDMA read
    requests; a driver loop must therefore alternate receiver progress
    with peer ``process_inbound`` until nothing moves.

    Over a reliable wire "nothing moves" is not enough: a lost packet
    means several silent rounds while the retransmission timer counts
    down, so the loop also waits for the wire itself to report no
    frames in flight. A :class:`repro.rdma.reliability.TransportError`
    (retry budget exhausted) propagates to the caller — the loop never
    converts an unreachable peer into a silent hang.
    """
    wires = {id(qp.wire): qp.wire for qp in receiver.qps}
    for qp in peer_qps:
        wires.setdefault(id(qp.wire), qp.wire)
    for _ in range(max_rounds):
        moved = receiver.progress()
        for qp in peer_qps:
            moved += qp.process_inbound()
        if moved or receiver.pending_reads:
            continue
        if any(
            in_flight() > 0
            for wire in wires.values()
            if (in_flight := getattr(wire, "in_flight", None)) is not None
        ):
            continue
        return
    if receiver.pending_reads:
        raise RuntimeError(
            f"link did not quiesce in {max_rounds} rounds; "
            f"{receiver.pending_reads} rendezvous reads outstanding"
        )

"""Completion queues.

A completion queue entry (CQE) is generated at the receiver for every
completed RDMA receive (§IV-A) and carries the staged message's
metadata: the envelope header and the bounce buffer holding the data.
CQE order *is* arrival order, which is the precedence order C2 relies
on downstream.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

__all__ = ["Completion", "CompletionQueue", "CompletionQueueOverflow"]


class CompletionQueueOverflow(Exception):
    """CQE arrived with the queue full — fatal on real hardware."""


@dataclass(frozen=True, slots=True)
class Completion:
    """One completion-queue entry."""

    index: int  #: Global CQE sequence number (arrival stamp).
    opcode: str
    payload: Any


class CompletionQueue:
    """Bounded FIFO of completions with a global sequence counter."""

    def __init__(self, depth: int = 4096) -> None:
        if depth <= 0:
            raise ValueError(f"CQ depth must be positive, got {depth}")
        self.depth = depth
        self._entries: deque[Completion] = deque()
        self._next_index = 0

    def push(self, opcode: str, payload: Any) -> Completion:
        if len(self._entries) >= self.depth:
            raise CompletionQueueOverflow(f"CQ overflow at depth {self.depth}")
        cqe = Completion(self._next_index, opcode, payload)
        self._next_index += 1
        self._entries.append(cqe)
        return cqe

    def poll(self) -> Completion | None:
        """Pop the oldest completion (None when empty)."""
        return self._entries.popleft() if self._entries else None

    def poll_batch(self, limit: int) -> list[Completion]:
        """Pop up to ``limit`` completions in order."""
        out = []
        while self._entries and len(out) < limit:
            out.append(self._entries.popleft())
        return out

    def __len__(self) -> int:
        return len(self._entries)

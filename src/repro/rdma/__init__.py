"""Simulated RDMA substrate: wire, queue pairs, completion queues,
bounce buffers, and the eager/rendezvous protocols of §IV.
"""

from repro.rdma.bounce import BounceBuffer, BounceBufferPool, BouncePoolExhausted
from repro.rdma.cq import Completion, CompletionQueue, CompletionQueueOverflow
from repro.rdma.flow import CreditedReceiver, CreditedSender, CreditStall
from repro.rdma.gpudirect import CopyAccounting, GpuDirectReceiver, MemorySpace
from repro.rdma.protocol import (
    DEFAULT_EAGER_THRESHOLD,
    Delivery,
    MessageHeader,
    RdmaReceiver,
    RdmaSender,
    pump,
)
from repro.rdma.qp import MemoryRegion, MemoryRegistry, QueuePair, StagedMessage
from repro.rdma.wire import Endpoint, Packet, Wire

__all__ = [
    "BounceBuffer",
    "BounceBufferPool",
    "BouncePoolExhausted",
    "Completion",
    "CompletionQueue",
    "CompletionQueueOverflow",
    "CreditStall",
    "CreditedReceiver",
    "CreditedSender",
    "CopyAccounting",
    "GpuDirectReceiver",
    "MemorySpace",
    "DEFAULT_EAGER_THRESHOLD",
    "Delivery",
    "Endpoint",
    "MemoryRegion",
    "MemoryRegistry",
    "MessageHeader",
    "Packet",
    "QueuePair",
    "RdmaReceiver",
    "RdmaSender",
    "StagedMessage",
    "Wire",
    "pump",
]

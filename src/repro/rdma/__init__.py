"""Simulated RDMA substrate: wire, queue pairs, completion queues,
bounce buffers, the eager/rendezvous protocols of §IV, and the
lossy-transport layers — seeded fault injection
(:mod:`repro.rdma.faultwire`) and RC-style recovery
(:mod:`repro.rdma.reliability`).
"""

from repro.rdma.bounce import BounceBuffer, BounceBufferPool, BouncePoolExhausted
from repro.rdma.cq import Completion, CompletionQueue, CompletionQueueOverflow
from repro.rdma.faultwire import FaultPlan, FaultStats, FaultyWire
from repro.rdma.flow import CreditedReceiver, CreditedSender, CreditStall
from repro.rdma.gpudirect import CopyAccounting, GpuDirectReceiver, MemorySpace
from repro.rdma.protocol import (
    DEFAULT_EAGER_THRESHOLD,
    Delivery,
    MessageHeader,
    RdmaReceiver,
    RdmaSender,
    pump,
)
from repro.rdma.qp import MemoryRegion, MemoryRegistry, QueuePair, StagedMessage
from repro.rdma.reliability import (
    ReliabilityConfig,
    ReliabilityStats,
    ReliableWire,
    TransportError,
)
from repro.rdma.wire import Endpoint, Packet, Wire, packet_checksum

__all__ = [
    "BounceBuffer",
    "BounceBufferPool",
    "BouncePoolExhausted",
    "Completion",
    "CompletionQueue",
    "CompletionQueueOverflow",
    "CreditStall",
    "CreditedReceiver",
    "CreditedSender",
    "CopyAccounting",
    "FaultPlan",
    "FaultStats",
    "FaultyWire",
    "GpuDirectReceiver",
    "MemorySpace",
    "DEFAULT_EAGER_THRESHOLD",
    "Delivery",
    "Endpoint",
    "MemoryRegion",
    "MemoryRegistry",
    "MessageHeader",
    "Packet",
    "QueuePair",
    "RdmaReceiver",
    "RdmaSender",
    "ReliabilityConfig",
    "ReliabilityStats",
    "ReliableWire",
    "StagedMessage",
    "TransportError",
    "Wire",
    "packet_checksum",
    "pump",
]

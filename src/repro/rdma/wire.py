"""The simulated wire: an ordered, reliable link between two endpoints.

Models an RDMA reliable-connection (RC) transport at the level the
matcher observes: packets posted at one end appear at the other end in
order, each generating a completion at the receiver. Loss, retry, and
congestion are below the abstraction the paper's matching layer sees
(RC guarantees delivery and ordering), so they are deliberately out of
scope — what matters is FIFO per direction, which is what makes the
completion-queue arrival order a valid C2 precedence order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Packet", "Wire", "Endpoint"]


@dataclass(frozen=True, slots=True)
class Packet:
    """One transport unit: an opcode plus opaque payload."""

    opcode: str  #: "send" | "rts" | "read_request" | "read_response" | "ack"
    payload: Any
    size: int = 0


@dataclass(slots=True)
class Endpoint:
    """One side of the wire: an inbound packet queue."""

    name: str
    inbound: deque[Packet] = field(default_factory=deque)

    def pending(self) -> int:
        return len(self.inbound)


class Wire:
    """A bidirectional FIFO link between endpoints ``a`` and ``b``."""

    def __init__(self, a: str = "a", b: str = "b") -> None:
        self._ends = {a: Endpoint(a), b: Endpoint(b)}
        self.delivered = 0

    def endpoint(self, name: str) -> Endpoint:
        return self._ends[name]

    def peer_of(self, name: str) -> Endpoint:
        names = list(self._ends)
        if name not in self._ends:
            raise KeyError(f"unknown endpoint {name!r}")
        return self._ends[names[1] if name == names[0] else names[0]]

    def transmit(self, src: str, packet: Packet) -> None:
        """Post a packet from ``src``; it lands at the peer in order."""
        self.peer_of(src).inbound.append(packet)
        self.delivered += 1

    def receive(self, dst: str) -> Packet | None:
        """Pop the next inbound packet at ``dst`` (None when idle)."""
        queue = self._ends[dst].inbound
        return queue.popleft() if queue else None

    def drain(self, dst: str) -> list[Packet]:
        """Pop everything currently inbound at ``dst``."""
        queue = self._ends[dst].inbound
        out = list(queue)
        queue.clear()
        return out

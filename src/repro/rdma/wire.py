"""The simulated wire: an ordered link between two endpoints.

Models the transport at the level the matcher observes: packets posted
at one end appear at the other end in order, each generating a
completion at the receiver. The *base* :class:`Wire` is perfect — it
neither loses nor reorders — which is the service a reliable-connection
(RC) RDMA transport presents to its consumers. What RC NICs actually
do to *provide* that service over a faulty physical link (PSN
sequencing, go-back-N retransmission, RNR NAKs) is no longer out of
scope: :mod:`repro.rdma.faultwire` injects seeded drop / duplicate /
reorder / corruption faults below this abstraction, and
:mod:`repro.rdma.reliability` rebuilds exactly-once FIFO delivery on
top of them. The FIFO-per-direction guarantee — the property that
makes completion-queue arrival order a valid C2 precedence order — is
therefore an *implemented* invariant here, not an assumed one.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Packet", "Wire", "Endpoint", "packet_checksum"]


@dataclass(frozen=True, slots=True)
class Packet:
    """One transport unit: an opcode plus opaque payload.

    ``checksum``, when set, covers the opcode and payload (see
    :func:`packet_checksum`); the reliability layer stamps it on every
    frame so payload corruption injected by a faulty wire is
    detectable at the receiver. ``None`` means "unprotected" — the
    base wire never corrupts, so bare packets don't need one.
    """

    opcode: str  #: "send" | "rts" | "read_request" | "read_response" | "ack" | "rc_*"
    payload: Any
    size: int = 0
    checksum: int | None = None


def packet_checksum(opcode: str, payload: Any) -> int:
    """Deterministic 32-bit checksum over an opcode/payload pair.

    Bytes payloads are hashed directly; anything else goes through its
    ``repr`` (headers are frozen dataclasses, so reprs are stable).
    """
    if isinstance(payload, (bytes, bytearray)):
        body = bytes(payload)
    else:
        body = repr(payload).encode()
    return zlib.crc32(opcode.encode() + b"|" + body) & 0xFFFFFFFF


@dataclass(slots=True)
class Endpoint:
    """One side of the wire: an inbound packet queue."""

    name: str
    inbound: deque[Packet] = field(default_factory=deque)

    def pending(self) -> int:
        return len(self.inbound)


class Wire:
    """A bidirectional FIFO link between endpoints ``a`` and ``b``."""

    def __init__(self, a: str = "a", b: str = "b") -> None:
        if a == b:
            raise ValueError(f"wire endpoints must be distinct, both named {a!r}")
        self._ends = {a: Endpoint(a), b: Endpoint(b)}
        # Precomputed peer map: peer_of is on the per-packet hot path.
        self._peers = {a: self._ends[b], b: self._ends[a]}
        self.delivered = 0

    @property
    def names(self) -> tuple[str, str]:
        names = tuple(self._ends)
        assert len(names) == 2
        return names  # type: ignore[return-value]

    def endpoint(self, name: str) -> Endpoint:
        return self._ends[name]

    def peer_of(self, name: str) -> Endpoint:
        try:
            return self._peers[name]
        except KeyError:
            raise KeyError(f"unknown endpoint {name!r}") from None

    def transmit(self, src: str, packet: Packet) -> None:
        """Post a packet from ``src``; it lands at the peer in order."""
        self.peer_of(src).inbound.append(packet)
        self.delivered += 1

    def receive(self, dst: str) -> Packet | None:
        """Pop the next inbound packet at ``dst`` (None when idle)."""
        queue = self._ends[dst].inbound
        return queue.popleft() if queue else None

    def drain(self, dst: str) -> list[Packet]:
        """Pop everything currently inbound at ``dst``."""
        queue = self._ends[dst].inbound
        out = list(queue)
        queue.clear()
        return out

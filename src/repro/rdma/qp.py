"""Queue pairs and memory registration.

A :class:`QueuePair` binds one endpoint of the wire to a completion
queue and a bounce-buffer pool, and implements the three verbs the
offloaded design needs (§IV-A/B):

* ``post_send`` — sender pushes an eager message or an RTS,
* inbound ``send``/``rts`` packets are staged into bounce buffers and
  produce completions,
* ``rdma_read`` — the receiver-side (DPA) fetches rendezvous payloads
  from sender memory registered under an rkey; the response completes
  locally without involving the remote CPU (one-sided semantics).

Resource exhaustion has two graceful escapes (and one hard failure
mode for the bare-wire configuration, preserving the historical
semantics):

* When the wire is a :class:`repro.rdma.reliability.ReliableWire`, the
  queue pair registers a receiver-ready probe so an exhausted bounce
  pool or full completion queue answers RNR NAK at the transport and
  the sender retries — nothing is lost, nothing raises.
* With ``host_spill=True``, a payload that finds no free bounce buffer
  is staged in host memory instead (counted in ``host_spills``); the
  DPA degrades to host resources rather than failing, per the sPIN
  rule that NIC-resource exhaustion must spill to the host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.obs.ledger import NULL_RECORDER, FlightRecorder
from repro.rdma.bounce import BounceBuffer, BounceBufferPool, BouncePoolExhausted
from repro.rdma.cq import Completion, CompletionQueue
from repro.rdma.wire import Packet, Wire

__all__ = ["MemoryRegion", "MemoryRegistry", "QueuePair", "StagedMessage"]


@dataclass(frozen=True, slots=True)
class MemoryRegion:
    """A registered sender-side buffer addressable by rkey."""

    rkey: int
    data: bytes


class MemoryRegistry:
    """rkey -> registered memory, as an RNIC's MTT would resolve it."""

    def __init__(self) -> None:
        self._regions: dict[int, MemoryRegion] = {}
        self._next_rkey = 1

    def register(self, data: bytes) -> MemoryRegion:
        region = MemoryRegion(self._next_rkey, data)
        self._regions[region.rkey] = region
        self._next_rkey += 1
        return region

    def resolve(self, rkey: int) -> MemoryRegion:
        try:
            return self._regions[rkey]
        except KeyError:
            raise KeyError(f"rkey {rkey} is not registered") from None

    def deregister(self, rkey: int) -> None:
        del self._regions[rkey]

    def __len__(self) -> int:
        return len(self._regions)


@dataclass(slots=True)
class StagedMessage:
    """An inbound message staged in NIC memory, as seen by the CQE.

    ``host_data`` is the degraded path: the payload landed in host
    memory because the bounce pool was exhausted (``host_spill``).
    Exactly one of ``bounce`` / ``host_data`` is set for payload-
    bearing messages; both are ``None`` for header-only packets.
    """

    header: Any
    bounce: BounceBuffer | None
    host_data: bytes | None = None


class QueuePair:
    """One side's transport context."""

    def __init__(
        self,
        wire: Wire,
        side: str,
        *,
        cq: CompletionQueue | None = None,
        bounce_pool: BounceBufferPool | None = None,
        host_spill: bool = False,
        recorder: FlightRecorder = NULL_RECORDER,
    ) -> None:
        self.wire = wire
        self.side = side
        self.recorder = recorder
        self.cq = cq if cq is not None else CompletionQueue()
        self.bounce_pool = bounce_pool if bounce_pool is not None else BounceBufferPool(4096)
        self.memory = MemoryRegistry()
        #: Degraded mode: stage payloads in host memory when the
        #: bounce pool is exhausted instead of raising/RNR-backpressure.
        self.host_spill = host_spill
        #: Payloads staged in host memory so far (degradation counter).
        self.host_spills = 0
        register = getattr(wire, "register_rnr_probe", None)
        if register is not None:
            register(side, self._receiver_ready)

    def _receiver_ready(self, packet: Packet, backlog: int) -> bool:
        """RNR probe: can this endpoint absorb one more packet now?

        ``backlog`` counts packets the reliability layer has sequenced
        but the queue pair has not yet staged; headroom checks are
        offset by it so a burst admitted in one poll cannot overshoot
        the pool or the completion queue.
        """
        if len(self.cq) + backlog >= self.cq.depth:
            return False
        if packet.opcode in ("send", "rts"):
            _, payload = packet.payload
            if payload and not self.host_spill and self.bounce_pool.available <= backlog:
                return False
            meter = getattr(self.bounce_pool, "pressure", None)
            if meter is not None:
                # Budget-aware backpressure: admitting this message may
                # cost one bounce buffer (payload-bearing) plus one
                # unexpected-store header if no receive is waiting.
                # Reserve that much for it, plus the *worst case* for
                # every already-admitted packet still in the backlog
                # (their payloads are invisible here — a header-only
                # RTS probed after a payload send must not claim the
                # headroom that send is about to charge), plus the
                # header charge every CQ-staged message still owes
                # (its bounce bytes are charged, its header is not
                # until the engine flushes it).
                from repro.pressure.budget import UNEXPECTED_HEADER_BYTES

                need = UNEXPECTED_HEADER_BYTES
                if payload:
                    need += self.bounce_pool.buffer_bytes
                per_backlog = (
                    UNEXPECTED_HEADER_BYTES + self.bounce_pool.buffer_bytes
                )
                owed = UNEXPECTED_HEADER_BYTES * len(self.cq)
                if meter.headroom() < need + backlog * per_backlog + owed:
                    return False
        return True

    # -- sender verbs ---------------------------------------------------

    def post_send(self, opcode: str, header: Any, payload: bytes = b"") -> None:
        """Transmit an eager message ('send') or an RTS ('rts')."""
        self.wire.transmit(self.side, Packet(opcode, (header, payload), len(payload)))

    # -- receiver-side processing ---------------------------------------

    def process_inbound(self) -> int:
        """Drain inbound packets: stage messages, serve RDMA reads.

        Returns the number of packets processed. Message packets
        allocate a bounce buffer and push a CQE; ``read_request``
        packets are served from registered memory without a CQE (the
        remote NIC handles them autonomously).
        """
        processed = 0
        while (packet := self.wire.receive(self.side)) is not None:
            processed += 1
            if packet.opcode in ("send", "rts"):
                header, payload = packet.payload
                bounce: BounceBuffer | None = None
                host_data: bytes | None = None
                if payload:
                    try:
                        bounce = self.bounce_pool.allocate()
                    except BouncePoolExhausted:
                        if not self.host_spill:
                            raise
                        # Degrade: NIC memory is full, stage on the host.
                        host_data = payload
                        self.host_spills += 1
                    else:
                        bounce.write(payload)
                if self.recorder.enabled:
                    mid = getattr(header, "mid", -1)
                    where = "host" if host_data else (
                        "bounce" if bounce is not None else "inline"
                    )
                    self.recorder.stamp(mid, "staged", where=where)
                    self.recorder.stamp(mid, "cq")
                self.cq.push(packet.opcode, StagedMessage(header, bounce, host_data))
            elif packet.opcode == "read_request":
                rkey, token = packet.payload
                region = self.memory.resolve(rkey)
                self.wire.transmit(
                    self.side,
                    Packet("read_response", (token, region.data), len(region.data)),
                )
            elif packet.opcode == "read_response":
                token, data = packet.payload
                self.cq.push("read_response", (token, data))
            elif packet.opcode == "ack":
                self.cq.push("ack", packet.payload)
            else:
                raise ValueError(f"unknown opcode {packet.opcode!r}")
        return processed

    def rdma_read(self, rkey: int, token: Any) -> None:
        """Issue a one-sided read of remote memory ``rkey``.

        The response arrives as a ``read_response`` completion carrying
        ``token`` back, so callers can correlate it with the matched
        receive (§IV-B rendezvous)."""
        self.wire.transmit(self.side, Packet("read_request", (rkey, token)))

    def post_ack(self, payload: Any = None) -> None:
        self.wire.transmit(self.side, Packet("ack", payload))

    def poll(self, limit: int = 64) -> list[Completion]:
        """Process inbound traffic then drain up to ``limit`` CQEs."""
        self.process_inbound()
        return self.cq.poll_batch(limit)

"""RC-style reliability protocol over a faulty wire.

:class:`ReliableWire` presents the exact :class:`repro.rdma.wire.Wire`
interface — ``transmit`` / ``receive`` / ``drain`` / ``endpoint`` /
``peer_of`` — while running a reliable-connection recovery protocol
underneath, so :class:`repro.rdma.qp.QueuePair` and everything above
it observe exactly-once FIFO delivery even when the underlying link
(typically a :class:`repro.rdma.faultwire.FaultyWire`) drops,
duplicates, reorders, or corrupts packets. This is the machinery real
RC NICs implement in hardware (cf. MPICH2-over-InfiniBand's use of RC
semantics and the sPIN model's insistence that resource exhaustion
degrade, not crash):

* **Packet sequence numbers** — every application packet is framed as
  ``rc_data`` with a per-direction PSN and a checksum.
* **Cumulative ACK / NAK** — the receiver acks the highest in-order
  PSN; a gap triggers a NAK carrying the expected PSN (go-back-N).
* **Retransmission timer with exponential backoff** — simulated time
  advances one tick per ``receive`` call (each progress poll is a
  tick); an unacked window times out, is retransmitted in order, and
  the timeout doubles up to a cap.
* **Bounded retry budget** — ``max_retries`` consecutive recovery
  rounds without cumulative-ACK progress raise
  :class:`TransportError`; the channel then fails sticky. A faulty
  wire can therefore slow the stack down but never hang it.
* **Duplicate suppression** — stale PSNs are discarded and re-acked.
* **RNR NAK** — before an in-sequence packet is handed up, an optional
  receiver-ready probe is consulted (the queue pair registers one that
  checks completion-queue room and bounce-pool headroom). A not-ready
  receiver answers ``rc_rnr``; the sender backs off ``rnr_timeout``
  ticks and retransmits, bounded by the same retry budget.

Control frames (ACK/NAK/RNR) are themselves checksummed and can be
lost or duplicated; the protocol recovers via the timer, and duplicate
cumulative ACKs are harmless by construction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.obs.ledger import NULL_RECORDER, FlightRecorder
from repro.obs.trace import NULL_TRACER, SpanTracer
from repro.rdma.wire import Endpoint, Packet, Wire, packet_checksum

__all__ = [
    "ReliabilityConfig",
    "ReliabilityStats",
    "ReliableWire",
    "TransportError",
]

#: Receiver-ready probe: (application packet, undelivered backlog) ->
#: whether the endpoint can accept one more message right now.
RnrProbe = Callable[[Packet, int], bool]


class TransportError(RuntimeError):
    """The retry budget is exhausted: the peer is unreachable (or so
    congested that RC gives up). Surfaces instead of a hang."""


@dataclass(frozen=True, slots=True)
class ReliabilityConfig:
    """Tunables of the recovery protocol (simulated-tick units)."""

    #: Ticks an unacked window waits before its first retransmission.
    retry_timeout: int = 4
    #: Timeout multiplier per consecutive no-progress retransmission.
    backoff: float = 2.0
    #: Ceiling on the backed-off timeout.
    max_timeout: int = 64
    #: Consecutive recovery rounds without cumulative-ACK progress
    #: before the channel fails with :class:`TransportError`.
    max_retries: int = 16
    #: Ticks the sender waits after an RNR NAK before retrying.
    rnr_timeout: int = 2

    def __post_init__(self) -> None:
        if self.retry_timeout < 1:
            raise ValueError(f"retry_timeout must be >= 1, got {self.retry_timeout}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {self.max_retries}")
        if self.rnr_timeout < 1:
            raise ValueError(f"rnr_timeout must be >= 1, got {self.rnr_timeout}")


@dataclass(slots=True)
class ReliabilityStats:
    """Aggregated protocol accounting across both directions."""

    data_sent: int = 0
    delivered: int = 0
    retransmits: int = 0
    timeouts: int = 0
    acks_sent: int = 0
    naks_sent: int = 0
    rnr_naks: int = 0
    duplicates_dropped: int = 0
    out_of_order_dropped: int = 0
    corrupt_dropped: int = 0


class _TxState:
    """Sender-side go-back-N state for one direction."""

    __slots__ = (
        "next_psn",
        "unacked",
        "timer",
        "timeout",
        "retries",
        "rnr_wait",
        "failed",
    )

    def __init__(self, base_timeout: int) -> None:
        self.next_psn = 0
        self.unacked: deque[tuple[int, Packet]] = deque()
        self.timer = 0
        self.timeout = base_timeout
        self.retries = 0
        self.rnr_wait = 0
        self.failed = False


class _RxState:
    """Receiver-side sequencing state for one direction."""

    __slots__ = ("expected", "deliverable", "nak_pending_for")

    def __init__(self) -> None:
        self.expected = 0
        self.deliverable: deque[Packet] = deque()
        #: PSN the last NAK asked for, to damp NAK storms on bursts of
        #: out-of-order arrivals.
        self.nak_pending_for = -1


class ReliableWire:
    """Exactly-once FIFO delivery over an unreliable raw wire.

    Drop-in for :class:`Wire` wherever one is consumed; wraps the raw
    (usually faulty) wire rather than subclassing it so the same
    instance can carry framed and recovery traffic without re-entering
    the fault schedule twice.
    """

    def __init__(
        self,
        raw: Wire,
        *,
        config: ReliabilityConfig | None = None,
        tracer: SpanTracer = NULL_TRACER,
        recorder: FlightRecorder = NULL_RECORDER,
    ) -> None:
        self.raw = raw
        self.config = config if config is not None else ReliabilityConfig()
        self.stats = ReliabilityStats()
        self._tx: dict[str, _TxState] = {
            name: _TxState(self.config.retry_timeout) for name in raw.names
        }
        self._rx: dict[str, _RxState] = {name: _RxState() for name in raw.names}
        self._probes: dict[str, RnrProbe] = {}
        #: Simulated time: one tick per progress poll (every ``receive``
        #: call), the same clock the retransmission timers count in.
        self.clock = 0
        self._tracer = tracer
        #: (kind, endpoint) -> span currently open on that track.
        self._open_spans: set[tuple[str, str]] = set()
        self._recorder = recorder
        #: Per-direction PSN -> ledger mid of message-bearing frames,
        #: so retransmit/RNR/timeout rounds attribute to the message
        #: occupying the head of the go-back-N window.
        self._psn_mids: dict[str, dict[int, int]] = {
            name: {} for name in raw.names
        }

    @property
    def now(self) -> float:
        """Current simulated time in ticks (1 tick = 1 us in traces)."""
        return float(self.clock)

    # -- trace emission (no-ops when the tracer is disabled) ------------

    def _span_begin(self, kind: str, src: str, **args) -> None:
        if not self._tracer.enabled or (kind, src) in self._open_spans:
            return
        track = self._tracer.track("rc", f"{src}:{kind}")
        self._tracer.begin(track, kind, self.now, args=args or None)
        self._open_spans.add((kind, src))

    def _span_end(self, kind: str, src: str) -> None:
        if not self._tracer.enabled or (kind, src) not in self._open_spans:
            return
        self._tracer.end(self._tracer.track("rc", f"{src}:{kind}"), self.now)
        self._open_spans.discard((kind, src))

    def _trace_instant(self, name: str, src: str, **args) -> None:
        if not self._tracer.enabled:
            return
        track = self._tracer.track("rc", f"{src}:events")
        self._tracer.instant(track, name, self.now, args=args or None)

    # -- Wire interface -------------------------------------------------

    @property
    def names(self) -> tuple[str, str]:
        return self.raw.names

    @property
    def delivered(self) -> int:
        return self.stats.delivered

    def endpoint(self, name: str) -> Endpoint:
        return self.raw.endpoint(name)

    def peer_of(self, name: str) -> Endpoint:
        return self.raw.peer_of(name)

    def register_rnr_probe(self, name: str, probe: RnrProbe) -> None:
        """Install the receiver-ready probe for endpoint ``name``."""
        if name not in self._rx:
            raise KeyError(f"unknown endpoint {name!r}")
        self._probes[name] = probe

    def transmit(self, src: str, packet: Packet) -> None:
        """Frame an application packet with a PSN and send it."""
        tx = self._tx[src]
        if tx.failed:
            raise TransportError(f"channel from {src!r} already failed")
        psn = tx.next_psn
        tx.next_psn += 1
        body = (psn, packet)
        frame = Packet("rc_data", body, packet.size, packet_checksum("rc_data", body))
        if not tx.unacked:
            tx.timer = 0
        tx.unacked.append((psn, frame))
        self.stats.data_sent += 1
        if self._recorder.enabled and packet.opcode in ("send", "rts"):
            mid = getattr(packet.payload[0], "mid", -1)
            if mid >= 0:
                self._psn_mids[src][psn] = mid
                self._recorder.stamp(mid, "wire", psn=psn)
        self.raw.transmit(src, frame)

    def receive(self, dst: str) -> Packet | None:
        """One progress poll at ``dst``: advance timers, process every
        raw inbound frame, then hand up the next in-order packet."""
        if self._tx[dst].failed:
            raise TransportError(f"channel from {dst!r} already failed")
        self.clock += 1
        self._advance_timer(dst)
        while (frame := self.raw.receive(dst)) is not None:
            self._process_frame(dst, frame)
        rx = self._rx[dst]
        return rx.deliverable.popleft() if rx.deliverable else None

    def drain(self, dst: str) -> list[Packet]:
        out: list[Packet] = []
        while (packet := self.receive(dst)) is not None:
            out.append(packet)
        return out

    def in_flight(self) -> int:
        """Frames not yet known-delivered: drives pump quiescence."""
        total = 0
        for name in self.raw.names:
            total += len(self._tx[name].unacked)
            total += len(self._rx[name].deliverable)
            total += self.raw.endpoint(name).pending()
        return total

    # -- protocol internals ---------------------------------------------

    def _control(self, src: str, opcode: str, psn: int) -> None:
        self.raw.transmit(src, Packet(opcode, psn, 0, packet_checksum(opcode, psn)))

    def _process_frame(self, dst: str, frame: Packet) -> None:
        if frame.checksum is None or frame.checksum != packet_checksum(
            frame.opcode, frame.payload
        ):
            # Corrupt frame: indistinguishable from loss. Data gaps are
            # NAKed when the next good frame arrives; lost control
            # frames are covered by the sender's timer.
            self.stats.corrupt_dropped += 1
            return
        if frame.opcode == "rc_data":
            self._process_data(dst, frame)
        elif frame.opcode == "rc_ack":
            self._process_ack(dst, frame.payload)
        elif frame.opcode == "rc_nak":
            self._retransmit_from(dst, frame.payload)
        elif frame.opcode == "rc_rnr":
            tx = self._tx[dst]
            tx.rnr_wait = self.config.rnr_timeout
            tx.timer = 0
            self._span_begin("rnr_stall", dst, wait=self.config.rnr_timeout)
            if self._recorder.enabled and tx.unacked:
                head = self._psn_mids[dst].get(tx.unacked[0][0], -1)
                if head >= 0:
                    self._recorder.note(
                        head, "rnr", wait=self.config.rnr_timeout
                    )
        else:
            raise ValueError(f"unknown reliability opcode {frame.opcode!r}")

    def _process_data(self, dst: str, frame: Packet) -> None:
        psn, inner = frame.payload
        rx = self._rx[dst]
        if psn < rx.expected:
            # Duplicate (retransmission overlap): re-ack so the sender
            # can advance even if the original ACK was lost.
            self.stats.duplicates_dropped += 1
            self._ack(dst, rx.expected - 1)
            return
        if psn > rx.expected:
            # Gap: go-back-N discards everything until the missing PSN
            # shows up again. NAK once per missing PSN.
            self.stats.out_of_order_dropped += 1
            if rx.nak_pending_for != rx.expected:
                rx.nak_pending_for = rx.expected
                self.stats.naks_sent += 1
                self._control(dst, "rc_nak", rx.expected)
            return
        probe = self._probes.get(dst)
        if probe is not None and not probe(inner, len(rx.deliverable)):
            # Receiver not ready: hold the sender off without losing
            # FIFO order — the PSN is not consumed.
            self.stats.rnr_naks += 1
            self._control(dst, "rc_rnr", rx.expected)
            return
        rx.deliverable.append(inner)
        rx.expected += 1
        rx.nak_pending_for = -1
        self.stats.delivered += 1
        self._ack(dst, psn)

    def _ack(self, dst: str, psn: int) -> None:
        self.stats.acks_sent += 1
        self._control(dst, "rc_ack", psn)

    def _process_ack(self, src: str, psn: int) -> None:
        """Cumulative ACK: everything up to ``psn`` arrived at the peer."""
        tx = self._tx[src]
        progressed = False
        while tx.unacked and tx.unacked[0][0] <= psn:
            acked_psn = tx.unacked.popleft()[0]
            self._psn_mids[src].pop(acked_psn, None)
            progressed = True
        if progressed:
            tx.retries = 0
            tx.timeout = self.config.retry_timeout
            tx.timer = 0
            tx.rnr_wait = 0
            self._span_end("retransmit", src)
            self._span_end("rnr_stall", src)

    def _advance_timer(self, src: str) -> None:
        tx = self._tx[src]
        if not tx.unacked:
            tx.timer = 0
            return
        if tx.rnr_wait > 0:
            tx.rnr_wait -= 1
            if tx.rnr_wait == 0:
                self._span_end("rnr_stall", src)
                self._retransmit_from(src, tx.unacked[0][0])
            return
        tx.timer += 1
        if tx.timer >= tx.timeout:
            self.stats.timeouts += 1
            tx.timeout = min(int(tx.timeout * self.config.backoff), self.config.max_timeout)
            self._trace_instant(
                "timeout", src, backoff_to=tx.timeout, unacked=len(tx.unacked)
            )
            if self._recorder.enabled:
                head = self._psn_mids[src].get(tx.unacked[0][0], -1)
                if head >= 0:
                    self._recorder.note(head, "timeout", backoff_to=tx.timeout)
            self._retransmit_from(src, tx.unacked[0][0])

    def _retransmit_from(self, src: str, psn: int) -> None:
        """Go-back-N: resend every unacked frame from ``psn`` on."""
        tx = self._tx[src]
        if not tx.unacked:
            return
        tx.retries += 1
        tx.timer = 0
        self._span_begin(
            "retransmit", src, from_psn=tx.unacked[0][0], window=len(tx.unacked)
        )
        if tx.retries > self.config.max_retries:
            tx.failed = True
            raise TransportError(
                f"retry budget exhausted after {self.config.max_retries} "
                f"recovery rounds from {src!r}; first unacked PSN "
                f"{tx.unacked[0][0]}"
            )
        cause = self._psn_mids[src].get(tx.unacked[0][0], -1)
        for unacked_psn, frame in tx.unacked:
            if unacked_psn >= psn:
                self.stats.retransmits += 1
                if self._recorder.enabled:
                    mid = self._psn_mids[src].get(unacked_psn, -1)
                    if mid >= 0:
                        # ``cause`` is the head-of-window message the
                        # go-back-N round is actually recovering; every
                        # later frame rides the same retransmit chain.
                        self._recorder.note(
                            mid, "retransmit", psn=unacked_psn, cause=cause
                        )
                self.raw.transmit(src, frame)

"""NIC-memory bounce buffers (§IV-A).

"Incoming messages are staged into bounce buffers in NIC memory,
which are pointed by the RDMA receive operations posted by the
receiver. Bounce buffers are necessary because we only know the
address of the user-provided receive buffer once the matching is
performed."

The pool is fixed-size, like NIC SRAM: exhaustion models the
backpressure a real receiver exerts by not reposting RDMA receives.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BounceBuffer", "BounceBufferPool", "BouncePoolExhausted"]


class BouncePoolExhausted(Exception):
    """No free bounce buffer: the receiver must stop posting receives
    (RNR backpressure) until matching drains the pool."""


@dataclass(eq=False, slots=True)
class BounceBuffer:
    """One staging buffer in NIC memory."""

    index: int
    capacity: int
    data: bytes = b""
    in_use: bool = False

    def write(self, data: bytes) -> None:
        if len(data) > self.capacity:
            raise ValueError(
                f"payload of {len(data)} B exceeds bounce capacity {self.capacity} B"
            )
        self.data = data

    def read(self) -> bytes:
        return self.data


class BounceBufferPool:
    """Fixed pool of equal-size bounce buffers with O(1) alloc/free.

    ``pressure`` (optional) is a
    :class:`repro.pressure.budget.PressureMeter`: each allocated buffer
    charges its full capacity to the meter's ``bounce`` account and
    releases it on free, so the meter's gauge mirrors ``in_use``
    exactly. A buffer the budget cannot absorb is reported as pool
    exhaustion — the same RNR/host-spill escapes the fixed pool already
    has handle the budget, too.
    """

    def __init__(self, count: int, buffer_bytes: int = 4096, *, pressure=None) -> None:
        if count <= 0:
            raise ValueError(f"pool size must be positive, got {count}")
        self._buffers = [BounceBuffer(i, buffer_bytes) for i in range(count)]
        self._free = list(range(count - 1, -1, -1))
        self.high_water = 0
        self.buffer_bytes = buffer_bytes
        self.pressure = pressure

    @property
    def capacity(self) -> int:
        return len(self._buffers)

    @property
    def in_use(self) -> int:
        return len(self._buffers) - len(self._free)

    @property
    def available(self) -> int:
        """Free buffers right now (the RNR-probe headroom check)."""
        return len(self._free)

    def allocate(self) -> BounceBuffer:
        if not self._free:
            raise BouncePoolExhausted(
                f"all {len(self._buffers)} bounce buffers in use"
            )
        if self.pressure is not None and not self.pressure.would_fit(self.buffer_bytes):
            raise BouncePoolExhausted(
                f"memory budget cannot absorb another {self.buffer_bytes} B "
                f"bounce buffer ({self.pressure.headroom()} B headroom)"
            )
        buf = self._buffers[self._free.pop()]
        buf.in_use = True
        if self.pressure is not None:
            self.pressure.charge("bounce", self.buffer_bytes)
        self.high_water = max(self.high_water, self.in_use)
        return buf

    def release(self, buf: BounceBuffer) -> None:
        if not buf.in_use:
            raise ValueError(f"bounce buffer {buf.index} is not allocated")
        buf.in_use = False
        buf.data = b""
        self._free.append(buf.index)
        if self.pressure is not None:
            self.pressure.release("bounce", self.buffer_bytes)

    def get(self, index: int) -> BounceBuffer:
        return self._buffers[index]

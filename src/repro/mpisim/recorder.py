"""Trace recording for the MPI runtime simulator.

The inverse of trace replay: wrap an :class:`repro.mpisim.MpiSim` in a
:class:`RecordingSim` and every point-to-point and progress call is
logged as a :class:`repro.traces.model.TraceOp` with a virtual
walltime — producing a trace the analyzer (or ``save_trace`` +
``dumpi2ascii`` consumers) accepts. This closes the tooling loop the
paper's artifacts imply: *run* an application on the simulated
offloaded runtime, *capture* its trace, *analyze* its matching
behaviour.

Collectives from :mod:`repro.mpisim.collectives` are built on p2p, so
they appear in the recording as their constituent sends/receives —
set ``record_collectives`` markers via :meth:`RecordingSim.annotate`
if the collective-level view is wanted too.
"""

from __future__ import annotations

from repro.core.constants import ANY_SOURCE, ANY_TAG
from repro.mpisim.communicator import Communicator
from repro.mpisim.request import Request
from repro.mpisim.runtime import MpiSim
from repro.traces.model import OpKind, RankTrace, Trace, TraceOp

__all__ = ["RecordingSim"]


class RecordingSim:
    """An MpiSim façade that records a replayable trace."""

    def __init__(self, sim: MpiSim, *, name: str = "recorded") -> None:
        self.sim = sim
        self.name = name
        self._ops: list[list[TraceOp]] = [[] for _ in range(sim.size)]
        self._clock = 0.0
        #: request handle -> rank, for wait attribution.
        self._owners: dict[int, int] = {}

    def _tick(self) -> float:
        self._clock += 1e-3
        return self._clock

    # -- recorded API (mirrors MpiSim) -----------------------------------

    def isend(
        self,
        src: int,
        dst: int,
        tag: int,
        payload: bytes = b"",
        comm: Communicator | None = None,
    ) -> Request:
        request = self.sim.isend(src, dst, tag, payload, comm)
        self._ops[src].append(
            TraceOp(
                kind=OpKind.ISEND,
                peer=dst,
                tag=tag,
                comm=0 if comm is None else comm.comm_id,
                size=len(payload),
                request=request.handle,
                walltime=self._tick(),
            )
        )
        self._owners[request.handle] = src
        return request

    def irecv(
        self,
        rank: int,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        comm: Communicator | None = None,
    ) -> Request:
        request = self.sim.irecv(rank, source, tag, comm)
        self._ops[rank].append(
            TraceOp(
                kind=OpKind.IRECV,
                peer=source,
                tag=tag,
                comm=0 if comm is None else comm.comm_id,
                request=request.handle,
                walltime=self._tick(),
            )
        )
        self._owners[request.handle] = rank
        return request

    def wait(self, request: Request) -> None:
        rank = self._owners.get(request.handle, request.rank)
        self._ops[rank].append(
            TraceOp(kind=OpKind.WAIT, request=request.handle, walltime=self._tick())
        )
        self.sim.wait(request)

    def waitall(self, requests: list[Request]) -> None:
        if requests:
            rank = self._owners.get(requests[0].handle, requests[0].rank)
            self._ops[rank].append(
                TraceOp(kind=OpKind.WAITALL, size=len(requests), walltime=self._tick())
            )
        self.sim.waitall(requests)

    def annotate(self, rank: int, kind: OpKind, size: int = 0) -> None:
        """Record a collective/one-sided marker without executing it."""
        self._ops[rank].append(TraceOp(kind=kind, size=size, walltime=self._tick()))

    def progress(self) -> int:
        return self.sim.progress()

    # -- trace extraction -------------------------------------------------

    def trace(self) -> Trace:
        """The recording so far, as an analyzable trace."""
        return Trace(
            name=self.name,
            nprocs=self.sim.size,
            ranks=[RankTrace(rank, list(ops)) for rank, ops in enumerate(self._ops)],
        )

"""Nonblocking request objects (``MPI_Request`` equivalents)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["RequestKind", "Status", "Request"]


class RequestKind(enum.Enum):
    SEND = "send"
    RECV = "recv"


@dataclass(frozen=True, slots=True)
class Status:
    """Completion status of a receive (``MPI_Status`` equivalent)."""

    source: int
    tag: int
    count: int  #: payload bytes


@dataclass(eq=False, slots=True)
class Request:
    """Handle for an in-flight nonblocking operation."""

    kind: RequestKind
    handle: int
    rank: int  #: owning rank
    comm: int = 0
    completed: bool = False
    payload: bytes | None = None
    status: Status | None = None
    #: Set when the runtime cancelled the request (teardown paths).
    cancelled: bool = False
    #: Posted envelope (receives): the peer/tag a stalled wait names.
    source: int | None = None
    tag: int | None = None
    _waiters: list = field(default_factory=list, repr=False)

    def describe(self) -> str:
        """One-line identity for stall diagnostics."""
        if self.kind is RequestKind.RECV:
            src = "ANY_SOURCE" if self.source == -1 else str(self.source)
            tg = "ANY_TAG" if self.tag == -1 else str(self.tag)
            return (
                f"recv handle {self.handle} at rank {self.rank} "
                f"(source={src}, tag={tg}, comm={self.comm})"
            )
        return f"send handle {self.handle} at rank {self.rank} (comm={self.comm})"

    def complete(self, payload: bytes | None = None, status: Status | None = None) -> None:
        if self.completed:
            raise RuntimeError(f"request {self.handle} completed twice")
        self.completed = True
        self.payload = payload
        self.status = status

    def test(self) -> bool:
        """Nonblocking completion check (``MPI_Test``)."""
        return self.completed

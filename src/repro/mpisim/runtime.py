"""The multi-rank MPI point-to-point runtime simulator.

:class:`MpiSim` hosts N ranks, each with one matcher per communicator,
and a FIFO channel per (sender, receiver) pair — the ordering
guarantee a reliable RDMA connection provides, and the precondition
for C2. The API mirrors the MPI calls the paper's traces contain:

* ``isend`` / ``send`` — enqueue a message on the channel,
* ``irecv`` / ``recv`` — post a receive to the destination matcher,
* ``wait`` / ``waitall`` / ``test`` — progress until completion,
* ``progress`` — one delivery round (the progress-engine tick the
  trace analyzer's datapoints correspond to).

Matching is pluggable per communicator: the optimistic engine with
fallback (the offloaded deployment) or any serial matcher (software
deployment), so examples can run the same program both ways.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.constants import ANY_SOURCE, ANY_TAG
from repro.core.envelope import MessageEnvelope, ReceiveRequest
from repro.core.events import MatchEvent, MatchKind
from repro.core.config import EngineConfig
from repro.matching.base import Matcher
from repro.matching.fallback import FallbackMatcher
from repro.mpisim.communicator import Communicator, CommunicatorInfo
from repro.mpisim.request import Request, RequestKind, Status
from repro.mpisim.transport import InFlight, PairChannelTransport

__all__ = ["MpiSim", "ProgressStall"]


class ProgressStall(RuntimeError):
    """A blocking wait cannot complete.

    Raised either because nothing in flight can ever satisfy the
    request (the classic instant-transport diagnosis) or because the
    configured ``progress_deadline`` elapsed without completion (the
    rank fault-tolerance backstop: a silently dead peer turns an
    infinite spin into a diagnosable error naming the peer and the
    outstanding request). Carries the stuck requests on ``requests``.
    """

    def __init__(self, message: str, requests: list | None = None) -> None:
        super().__init__(message)
        self.requests = list(requests) if requests else []


#: Back-compat alias: the in-flight record now lives with the
#: transports (:mod:`repro.mpisim.transport`).
_InFlight = InFlight


@dataclass(slots=True)
class _RankComm:
    """Per-(rank, communicator) matching state."""

    matcher: Matcher
    requests: dict[int, Request] = field(default_factory=dict)


class MpiSim:
    """A simulated MPI world."""

    def __init__(
        self,
        size: int,
        *,
        config: EngineConfig | None = None,
        matcher_factory: Callable[[EngineConfig], Matcher] | None = None,
        dpa_budget_bytes: int | None = None,
        transport=None,
        progress_deadline: int | None = None,
    ) -> None:
        """
        Parameters
        ----------
        progress_deadline:
            Maximum progress rounds a single blocking wait may spin
            before raising :class:`ProgressStall` naming the peer and
            outstanding request — the backstop that turns a silently
            dead peer (or a runtime bug) from an infinite hang into a
            diagnosable error. ``None`` (the default) keeps the
            historical behaviour: waits only fail when provably
            nothing in flight can satisfy them.
        dpa_budget_bytes:
            Per-rank accelerator memory budget (§III-E). When set,
            communicator creation charges each rank's budget and falls
            back to *software* matching for communicators that no
            longer fit — mirroring "if it is not possible to allocate
            DPA resources at communicator creation time, the MPI
            implementation is expected to fall back". ``None`` (the
            default) models an unconstrained accelerator.
        transport:
            Message-delivery substrate (see
            :mod:`repro.mpisim.transport`). ``None`` uses the instant
            per-pair FIFO :class:`~repro.mpisim.transport.
            PairChannelTransport`; pass a ``FabricTransport`` to run
            the same program over a simulated cluster network.
        """
        if size <= 0:
            raise ValueError(f"world size must be positive, got {size}")
        if progress_deadline is not None and progress_deadline < 1:
            raise ValueError(
                f"progress_deadline must be >= 1 rounds, got {progress_deadline}"
            )
        self.size = size
        self.progress_deadline = progress_deadline
        self._base_config = config if config is not None else EngineConfig()
        self._matcher_factory = matcher_factory
        self._dpa_managers = None
        if dpa_budget_bytes is not None:
            from repro.core.manager import OffloadManager

            self._dpa_managers = [
                OffloadManager(self._base_config, budget_bytes=dpa_budget_bytes)
                for _ in range(size)
            ]
        self._comms: dict[int, Communicator] = {}
        self._state: dict[tuple[int, int], _RankComm] = {}
        self._transport = transport if transport is not None else PairChannelTransport()
        self._send_seq: dict[int, int] = {}
        self._next_handle = 0
        self._next_comm_id = 0
        self.world = self.comm_create()  # COMM_WORLD

    # ------------------------------------------------------------------
    # Communicator management
    # ------------------------------------------------------------------

    def comm_create(self, hints: dict[str, str] | None = None) -> Communicator:
        """Create a communicator spanning all ranks, with info hints."""
        info = CommunicatorInfo.from_hints(hints)
        comm = Communicator(self._next_comm_id, self.size, info)
        self._next_comm_id += 1
        self._comms[comm.comm_id] = comm
        cfg = info.apply_to(self._base_config)
        offloaded_everywhere = True
        for rank in range(self.size):
            if self._matcher_factory is not None:
                matcher = self._matcher_factory(cfg)
            elif self._dpa_managers is not None:
                allocation = self._dpa_managers[rank].comm_create(
                    comm.comm_id, config=cfg
                )
                if allocation.offloaded:
                    matcher = FallbackMatcher(cfg, comm=comm.comm_id)
                else:
                    # §III-E: no DPA room at creation time — software
                    # matching from birth for this communicator.
                    from repro.matching.list_matcher import ListMatcher

                    matcher = ListMatcher()
                    offloaded_everywhere = False
            else:
                matcher = FallbackMatcher(cfg, comm=comm.comm_id)
            self._state[(rank, comm.comm_id)] = _RankComm(matcher)
        comm.offloaded = offloaded_everywhere
        return comm

    def comm_free(self, comm: Communicator) -> None:
        """Tear down a communicator, returning any DPA budget."""
        if comm.comm_id not in self._comms:
            raise KeyError(f"unknown communicator {comm.comm_id}")
        if comm.comm_id == self.world.comm_id:
            raise ValueError("MPI_COMM_WORLD cannot be freed")
        del self._comms[comm.comm_id]
        for rank in range(self.size):
            self._state.pop((rank, comm.comm_id), None)
            if self._dpa_managers is not None:
                manager = self._dpa_managers[rank]
                if manager.has(comm.comm_id):
                    manager.comm_free(comm.comm_id)

    def matcher_of(self, rank: int, comm: Communicator | None = None) -> Matcher:
        comm = comm if comm is not None else self.world
        return self._state[(rank, comm.comm_id)].matcher

    # ------------------------------------------------------------------
    # Point-to-point API
    # ------------------------------------------------------------------

    def isend(
        self,
        src: int,
        dst: int,
        tag: int,
        payload: bytes = b"",
        comm: Communicator | None = None,
    ) -> Request:
        comm = comm if comm is not None else self.world
        comm.check_rank(src)
        comm.check_rank(dst)
        if tag < 0:
            raise ValueError(f"send tag must be non-negative, got {tag}")
        seq = self._send_seq.get(src, 0)
        self._send_seq[src] = seq + 1
        envelope = MessageEnvelope(
            source=src, tag=tag, comm=comm.comm_id, size=len(payload), send_seq=seq
        )
        self._transport.enqueue(src, dst, InFlight(envelope, payload))
        request = Request(RequestKind.SEND, self._next_handle, src, comm.comm_id)
        self._next_handle += 1
        # Local completion semantics: the payload is owned by the
        # runtime once enqueued (eager buffering).
        request.complete()
        return request

    def send(
        self,
        src: int,
        dst: int,
        tag: int,
        payload: bytes = b"",
        comm: Communicator | None = None,
    ) -> None:
        self.isend(src, dst, tag, payload, comm)

    def irecv(
        self,
        rank: int,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        comm: Communicator | None = None,
    ) -> Request:
        comm = comm if comm is not None else self.world
        comm.check_rank(rank)
        if source != ANY_SOURCE:
            comm.check_rank(source)
        state = self._state[(rank, comm.comm_id)]
        request = Request(
            RequestKind.RECV,
            self._next_handle,
            rank,
            comm.comm_id,
            source=source,
            tag=tag,
        )
        self._next_handle += 1
        state.requests[request.handle] = request
        event = state.matcher.post_receive(
            ReceiveRequest(source=source, tag=tag, comm=comm.comm_id, handle=request.handle)
        )
        if event is not None:
            self._fulfil(state, event)
        return request

    def recv(
        self,
        rank: int,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        comm: Communicator | None = None,
    ) -> bytes:
        """Blocking receive: post, progress to completion, return data."""
        request = self.irecv(rank, source, tag, comm)
        self.wait(request)
        assert request.payload is not None
        return request.payload

    # ------------------------------------------------------------------
    # Progress engine
    # ------------------------------------------------------------------

    def progress(self) -> int:
        """Deliver every in-flight message to its destination matcher.

        Returns the number of messages delivered. The transport drains
        in FIFO order per (src, dst) pair, preserving C2 ordering.
        """
        delivered = 0
        for dst, inflight in self._transport.drain():
            delivered += 1
            state = self._state[(dst, inflight.envelope.comm)]
            self._payload_store(state)[
                (inflight.envelope.source, inflight.envelope.send_seq)
            ] = inflight.payload
            event = state.matcher.incoming_message(inflight.envelope)
            if event is not None:
                self._fulfil(state, event)
        # Block-based matchers buffer; flush them.
        for state in self._state.values():
            for event in state.matcher.flush():
                self._fulfil(state, event)
        return delivered

    def wait(self, request: Request) -> None:
        """Progress until ``request`` completes (``MPI_Wait``).

        Raises :class:`ProgressStall` when no in-flight message can
        complete it, or — with ``progress_deadline`` configured — when
        the deadline elapses first, naming the peer and request.
        """
        if request.completed:
            return
        rounds = 0
        while not request.completed:
            if self.progress() == 0 and not request.completed:
                raise ProgressStall(
                    f"rank {request.rank} waits on {request.describe()} "
                    "but no message in flight can complete it",
                    requests=[request],
                )
            rounds += 1
            self._check_deadline(rounds, [request])

    def waitall(self, requests: list[Request]) -> None:
        for request in requests:
            self.wait(request)

    def waitany(self, requests: list[Request]) -> int:
        """Progress until any request completes; returns its index
        (``MPI_Waitany``)."""
        if not requests:
            raise ValueError("waitany requires at least one request")
        rounds = 0
        while True:
            for index, request in enumerate(requests):
                if request.completed:
                    return index
            if self.progress() == 0:
                raise ProgressStall(
                    "waitany cannot complete: no in-flight message "
                    "satisfies any of: "
                    + "; ".join(r.describe() for r in requests),
                    requests=list(requests),
                )
            rounds += 1
            self._check_deadline(rounds, requests)

    def _check_deadline(self, rounds: int, requests: list[Request]) -> None:
        """Enforce the blocking-wait progress deadline (when set)."""
        deadline = self.progress_deadline
        if deadline is None or rounds < deadline:
            return
        stuck = [r for r in requests if not r.completed]
        if not stuck:
            return
        raise ProgressStall(
            f"progress deadline exceeded: {rounds} progress rounds "
            f"without completing "
            + "; ".join(r.describe() for r in stuck)
            + f" ({self._transport.in_flight()} messages in flight)",
            requests=stuck,
        )

    def testall(self, requests: list[Request]) -> bool:
        """Nonblocking completion check over a set (``MPI_Testall``);
        performs one progress round first, like a real test call."""
        self.progress()
        return all(request.completed for request in requests)

    def sendrecv(
        self,
        rank: int,
        dest: int,
        send_tag: int,
        payload: bytes,
        source: int,
        recv_tag: int,
        comm: Communicator | None = None,
    ) -> bytes:
        """Combined send+receive (``MPI_Sendrecv``) — the deadlock-free
        shift primitive ring exchanges are built on."""
        request = self.irecv(rank, source=source, tag=recv_tag, comm=comm)
        self.isend(rank, dest, send_tag, payload, comm=comm)
        self.wait(request)
        assert request.payload is not None
        return request.payload

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _payload_store(state: _RankComm) -> dict:
        store = getattr(state.matcher, "_mpisim_payloads", None)
        if store is None:
            store = {}
            state.matcher._mpisim_payloads = store  # type: ignore[attr-defined]
        return store

    def _fulfil(self, state: _RankComm, event: MatchEvent) -> None:
        """Complete the receive request a match event names."""
        if event.kind is MatchKind.STORED_UNEXPECTED:
            return
        assert event.receive is not None
        request = state.requests.pop(event.receive.handle)
        payload = self._payload_store(state).pop(
            (event.message.source, event.message.send_seq)
        )
        request.complete(
            payload,
            Status(source=event.message.source, tag=event.message.tag, count=len(payload)),
        )

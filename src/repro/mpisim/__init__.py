"""Miniature MPI point-to-point runtime over pluggable matchers.

* :class:`MpiSim` — the multi-rank world (isend/irecv/wait/progress)
* :class:`Communicator` / :class:`CommunicatorInfo` — per-communicator
  matching resources and assertion hints (§III-E, §VII)
* :class:`Request` / :class:`Status` — nonblocking handles
* :mod:`repro.mpisim.collectives` — flat collectives built on p2p
"""

from repro.mpisim.collectives import alltoall, barrier, bcast, gather
from repro.mpisim.communicator import Communicator, CommunicatorInfo
from repro.mpisim.recorder import RecordingSim
from repro.mpisim.request import Request, RequestKind, Status
from repro.mpisim.runtime import MpiSim, ProgressStall

__all__ = [
    "Communicator",
    "CommunicatorInfo",
    "MpiSim",
    "ProgressStall",
    "RecordingSim",
    "Request",
    "RequestKind",
    "Status",
    "alltoall",
    "barrier",
    "bcast",
    "gather",
]

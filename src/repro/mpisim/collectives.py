"""Collectives built on point-to-point, the way the paper frames them
(§VII: "collective operations … are normally built on top of
point-to-point operations, and hence need matching to be performed in
order to be offloaded").

These are deliberately simple flat algorithms — their purpose is to
generate realistic matching traffic (fan-in/fan-out bursts, the
``MPI_Gatherv`` many-to-one pattern the introduction calls out), not
to be bandwidth-optimal.
"""

from __future__ import annotations

from repro.mpisim.communicator import Communicator
from repro.mpisim.runtime import MpiSim

__all__ = ["bcast", "gather", "alltoall", "barrier"]

#: Tag space reserved for collective plumbing, above user tags.
_COLL_TAG_BASE = 1 << 20


def bcast(
    sim: MpiSim, root: int, payload: bytes, comm: Communicator | None = None
) -> dict[int, bytes]:
    """Flat broadcast: root sends to every other rank.

    Returns the received payload per rank (root included).
    """
    comm = comm if comm is not None else sim.world
    tag = _COLL_TAG_BASE + 1
    requests = {}
    for rank in range(comm.size):
        if rank != root:
            requests[rank] = sim.irecv(rank, source=root, tag=tag, comm=comm)
    for rank in range(comm.size):
        if rank != root:
            sim.isend(root, rank, tag, payload, comm=comm)
    sim.waitall(list(requests.values()))
    out = {rank: req.payload for rank, req in requests.items()}
    out[root] = payload
    return out


def gather(
    sim: MpiSim, root: int, payloads: dict[int, bytes], comm: Communicator | None = None
) -> list[bytes]:
    """Flat gather: the many-to-one burst that stresses matching.

    Every rank sends its payload to root simultaneously; root posts
    one receive per peer. Returns payloads in rank order.
    """
    comm = comm if comm is not None else sim.world
    tag = _COLL_TAG_BASE + 2
    requests = {}
    for rank in range(comm.size):
        if rank != root:
            requests[rank] = sim.irecv(root, source=rank, tag=tag, comm=comm)
    for rank in range(comm.size):
        if rank != root:
            sim.isend(rank, root, tag, payloads[rank], comm=comm)
    sim.waitall(list(requests.values()))
    return [
        payloads[rank] if rank == root else requests[rank].payload
        for rank in range(comm.size)
    ]


def alltoall(
    sim: MpiSim, payloads: dict[tuple[int, int], bytes], comm: Communicator | None = None
) -> dict[tuple[int, int], bytes]:
    """Flat all-to-all: the global pattern of transpose-heavy codes
    (BigFFT). ``payloads[(src, dst)]`` is what src sends to dst.

    Returns ``received[(dst, src)]``.
    """
    comm = comm if comm is not None else sim.world
    tag = _COLL_TAG_BASE + 3
    requests = {}
    for dst in range(comm.size):
        for src in range(comm.size):
            if src != dst:
                requests[(dst, src)] = sim.irecv(dst, source=src, tag=tag, comm=comm)
    for src in range(comm.size):
        for dst in range(comm.size):
            if src != dst:
                sim.isend(src, dst, tag, payloads[(src, dst)], comm=comm)
    sim.waitall(list(requests.values()))
    received = {key: req.payload for key, req in requests.items()}
    for rank in range(comm.size):
        received[(rank, rank)] = payloads[(rank, rank)]
    return received


def barrier(sim: MpiSim, comm: Communicator | None = None, root: int = 0) -> None:
    """Flat barrier: gather-then-broadcast of empty messages."""
    comm = comm if comm is not None else sim.world
    gather(sim, root, {rank: b"" for rank in range(comm.size)}, comm=comm)
    bcast(sim, root, b"", comm=comm)

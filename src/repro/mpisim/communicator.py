"""Communicators and matching-relevant info hints (§III-E, §VII).

"Each MPI communicator is linked to its own set of index tables and
data structures." A :class:`CommunicatorInfo` captures the standard
assertion hints the paper discusses and translates them into engine
configuration; the runtime creates one matcher per (rank,
communicator) from the resulting config.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import EngineConfig

__all__ = ["CommunicatorInfo", "Communicator"]

#: Recognized MPI_Info assertion keys (MPI 4.0 §7.4.4 / paper §VII).
KNOWN_ASSERTS = frozenset(
    {
        "mpi_assert_no_any_source",
        "mpi_assert_no_any_tag",
        "mpi_assert_allow_overtaking",
        "mpi_assert_exact_length",  # accepted, matching-neutral
    }
)


@dataclass(frozen=True, slots=True)
class CommunicatorInfo:
    """The matching-relevant subset of an MPI info object."""

    no_any_source: bool = False
    no_any_tag: bool = False
    allow_overtaking: bool = False

    @classmethod
    def from_hints(cls, hints: dict[str, str] | None) -> "CommunicatorInfo":
        """Parse MPI_Info-style string pairs; unknown keys are ignored
        (as the standard requires), unknown values reject loudly."""
        if not hints:
            return cls()
        parsed: dict[str, bool] = {}
        for key, value in hints.items():
            if key not in KNOWN_ASSERTS:
                continue
            if value not in ("true", "false"):
                raise ValueError(f"info value for {key} must be 'true'/'false', got {value!r}")
            parsed[key] = value == "true"
        return cls(
            no_any_source=parsed.get("mpi_assert_no_any_source", False),
            no_any_tag=parsed.get("mpi_assert_no_any_tag", False),
            allow_overtaking=parsed.get("mpi_assert_allow_overtaking", False),
        )

    def apply_to(self, config: EngineConfig) -> EngineConfig:
        """Fold the hints into an engine configuration."""
        return config.with_options(
            assert_no_any_source=self.no_any_source,
            assert_no_any_tag=self.no_any_tag,
            allow_overtaking=self.allow_overtaking,
        )


@dataclass(eq=False, slots=True)
class Communicator:
    """A communication context over a group of ranks."""

    comm_id: int
    size: int
    info: CommunicatorInfo = field(default_factory=CommunicatorInfo)
    #: Whether matching for this communicator runs on the (simulated)
    #: accelerator; False models a failed DPA resource allocation at
    #: communicator creation (§III-E) — software matching from birth.
    offloaded: bool = True

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"communicator size must be positive, got {self.size}")

    def check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for communicator of size {self.size}")

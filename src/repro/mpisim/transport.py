"""Pluggable message transport for :class:`repro.mpisim.MpiSim`.

The runtime's contract with its transport is three calls:

* ``enqueue(src, dst, inflight)`` — accept a message for delivery,
* ``drain()`` — yield ``(dst, inflight)`` for every message now
  deliverable, preserving per-(src, dst) FIFO order,
* ``in_flight()`` — messages accepted but not yet drained.

:class:`PairChannelTransport` is the historical default and is
behaviour-identical to the runtime's original inline channel dict:
one FIFO deque per (sender, receiver) pair, drained fully in channel
creation order on every progress round — instant delivery, exact
ordering. :class:`FabricTransport` routes the same messages across a
:class:`repro.net.fabric.Fabric` instead, so an ``MpiSim`` program
experiences topology latency and link contention; its ``drain`` skips
the clock forward to the next arrival when a round would otherwise be
empty, keeping ``progress() == 0`` a true "nothing can ever arrive"
signal (the :class:`repro.mpisim.runtime.ProgressStall` contract).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator

from repro.core.envelope import MessageEnvelope

__all__ = ["InFlight", "PairChannelTransport", "FabricTransport"]


@dataclass(slots=True)
class InFlight:
    """A message travelling on a (src, dst) channel."""

    envelope: MessageEnvelope
    payload: bytes


class PairChannelTransport:
    """The default instant transport: per-pair FIFO deques."""

    def __init__(self) -> None:
        self._channels: dict[tuple[int, int], deque[InFlight]] = {}

    def enqueue(self, src: int, dst: int, inflight: InFlight) -> None:
        self._channels.setdefault((src, dst), deque()).append(inflight)

    def drain(self) -> Iterator[tuple[int, InFlight]]:
        """Deliver everything: channels in creation order, each FIFO.

        This is exactly the drain order of the original inline
        implementation — channel-dict insertion order, each channel
        emptied completely before the next.
        """
        for (_, dst), channel in self._channels.items():
            while channel:
                yield dst, channel.popleft()

    def in_flight(self) -> int:
        return sum(len(channel) for channel in self._channels.values())


class FabricTransport:
    """Deliver mpisim messages across a simulated cluster fabric.

    Construct with a :class:`repro.net.fabric.Fabric` and a
    :class:`repro.net.placement.Placement` mapping every rank the sim
    will use. Per-pair FIFO holds because routes are static and links
    are FIFO, so matcher-level ordering guarantees (C2) are unchanged
    — messages merely arrive later, and interleaved across pairs the
    way a real network would interleave them.
    """

    def __init__(self, fabric, placement) -> None:
        self.fabric = fabric
        self.placement = placement
        self._ports: dict[int, str] = {}
        for rank in range(placement.ranks):
            port = f"mpisim:r{rank}"
            fabric.attach(port)
            self._ports[rank] = port

    def enqueue(self, src: int, dst: int, inflight: InFlight) -> None:
        self.fabric.inject(
            self.placement.node_of(src),
            self.placement.node_of(dst),
            self._ports[dst],
            inflight,
            max(len(inflight.payload), 1),
        )

    def _pop_arrived(self) -> list[tuple[int, InFlight]]:
        out: list[tuple[int, InFlight]] = []
        for rank, port in self._ports.items():
            while (got := self.fabric.deliver(port)) is not None:
                out.append((rank, got[0]))
        return out

    def drain(self) -> Iterator[tuple[int, InFlight]]:
        """Advance time one tick; if that surfaces nothing but traffic
        is in flight, jump the clock to the earliest arrival — an
        empty drain then genuinely means an empty network."""
        self.fabric.tick()
        out = self._pop_arrived()
        if not out and self.in_flight():
            arrivals = [
                arrival
                for port in self._ports.values()
                if (arrival := self.fabric.next_arrival(port)) is not None
            ]
            self.fabric.clock = max(self.fabric.clock, min(arrivals))
            out = self._pop_arrived()
        yield from out

    def in_flight(self) -> int:
        return sum(self.fabric.pending(port) for port in self._ports.values())

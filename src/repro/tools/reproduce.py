"""``repro-reproduce`` — regenerate every paper element in one run.

Runs the full experiment index of DESIGN.md (E1-E8) at the requested
scale and writes a single markdown report plus machine-readable JSON,
so a referee can diff one artifact against EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analyzer import (
    FIGURE7_BINS,
    depth_reduction_summary,
    format_figure6,
    format_figure7,
    format_table2,
    replay_trace,
    sweep_applications,
)
from repro.bench import PingPongBench, format_figure8
from repro.dpa.memory import MemoryModel
from repro.traces.model import OpGroup
from repro.traces.synthetic import app_names, generate

__all__ = ["reproduce_all", "write_report", "main"]


def reproduce_all(*, rounds: int = 6, repetitions: int = 50) -> dict:
    """Run E1-E8; returns a JSON-serializable results tree."""
    results: dict = {}

    # E1 + E2: one sweep serves both figures.
    sweep = sweep_applications(bins_list=FIGURE7_BINS, rounds=rounds)
    fig6 = {name: per_bins[1] for name, per_bins in sweep.items()}
    results["figure6"] = {
        "text": format_figure6(fig6),
        "call_mix": {
            name: {g.value: frac for g, frac in analysis.call_mix.items()}
            for name, analysis in fig6.items()
        },
    }
    reductions = depth_reduction_summary(sweep)
    results["figure7"] = {
        "text": format_figure7(sweep),
        "average_depth": {str(b): avg for b, (avg, _) in reductions.items()},
        "reductions_pct": {
            str(b): red for b, (_, red) in reductions.items() if red is not None
        },
    }

    # E3: message rates.
    bench = PingPongBench(k=100, repetitions=repetitions)
    rates = bench.run_all()
    results["figure8"] = {
        "text": format_figure8(rates),
        "rates_mmsg_s": {r.label: r.message_rate / 1e6 for r in rates},
        "host_cycles_per_msg": {
            r.label: r.host_matching_cycles_per_msg for r in rates
        },
    }

    # E5: the registry.
    results["table2"] = {"text": format_table2()}

    # E7: memory footprint.
    example = MemoryModel(bins=128, max_receives=8192)
    results["memory"] = example.summary()

    # Extension: engine-level conflict replay for the p2p-heavy apps.
    replay = {}
    for name in app_names():
        result = replay_trace(generate(name, rounds=min(rounds, 3)))
        if result.messages:
            replay[name] = {
                "conflict_rate": result.conflict_rate,
                "optimistic_fraction": result.optimistic_fraction,
                "offload_friendly": result.offload_friendly(),
            }
    results["replay"] = replay
    return results


def write_report(results: dict, out_dir: Path) -> tuple[Path, Path]:
    """Write REPORT.md and results.json under ``out_dir``."""
    out_dir.mkdir(parents=True, exist_ok=True)
    json_path = out_dir / "results.json"
    json_path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    md = [
        "# Reproduction report",
        "",
        "## Figure 6 — MPI call mix",
        "```",
        results["figure6"]["text"],
        "```",
        "",
        "## Figure 7 — queue depth vs bins",
        "```",
        results["figure7"]["text"],
        "```",
        "",
        "## Figure 8 — message rate",
        "```",
        results["figure8"]["text"],
        "```",
        "",
        "## Table II — applications",
        "```",
        results["table2"]["text"],
        "```",
        "",
        "## §III-E memory footprint",
        "```",
        json.dumps(results["memory"], indent=2),
        "```",
        "",
        "## Engine-level conflict replay (extension)",
        "",
        "| application | conflict rate | optimistic fraction | offload friendly |",
        "|---|---|---|---|",
    ]
    for name, row in results["replay"].items():
        md.append(
            f"| {name} | {row['conflict_rate']:.3f} | "
            f"{row['optimistic_fraction']:.2f} | {row['offload_friendly']} |"
        )
    md_path = out_dir / "REPORT.md"
    md_path.write_text("\n".join(md) + "\n")
    return md_path, json_path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-reproduce", description="regenerate every paper element"
    )
    parser.add_argument("--out", default="reproduction", help="output directory")
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument(
        "--repetitions", type=int, default=50, help="figure 8 sequences (paper: 500)"
    )
    args = parser.parse_args(argv)
    results = reproduce_all(rounds=args.rounds, repetitions=args.repetitions)
    md_path, json_path = write_report(results, Path(args.out))
    print(f"wrote {md_path} and {json_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Operator tools: one-shot regeneration of every paper element."""

from repro.tools.reproduce import reproduce_all, write_report

__all__ = ["reproduce_all", "write_report"]

"""Trace directory loading: dispatch, per-rank parsing, caching.

A trace directory holds one dumpi2ascii text file per rank
(``dumpi-<rank>.txt``) plus an optional ``meta.txt`` naming the
application. Parsing "is done in parallel in a per-rank fashion"
(§V-A.a) — here through :func:`repro.fleet.pool.parallel_map` when the
trace is large enough to amortize a pool, since rank files are
independent. Routing through the fleet pool keeps worker counts sane:
a ``load_trace`` call *inside* a fleet worker parses serially instead
of nesting a second process pool on oversubscribed cores.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.fleet.pool import parallel_map
from repro.traces.cache import load_cached, store_cache
from repro.traces.dumpi import parse_rank_file, write_rank_file
from repro.traces.model import Trace

__all__ = ["load_trace", "save_trace", "rank_file_name"]

_RANK_FILE_RE = re.compile(r"^dumpi-(\d+)\.txt$")
#: Below this many rank files, a process pool costs more than it saves.
_PARALLEL_THRESHOLD = 8


def rank_file_name(rank: int) -> str:
    return f"dumpi-{rank}.txt"


def _discover_rank_files(trace_dir: Path) -> list[tuple[int, Path]]:
    found = []
    for path in trace_dir.iterdir():
        match = _RANK_FILE_RE.match(path.name)
        if match is not None:
            found.append((int(match.group(1)), path))
    found.sort()
    if not found:
        raise FileNotFoundError(f"no dumpi-<rank>.txt files in {trace_dir}")
    expected = list(range(len(found)))
    if [rank for rank, _ in found] != expected:
        raise ValueError(
            f"trace {trace_dir} has non-contiguous ranks: {[r for r, _ in found]}"
        )
    return found


def _parse_one(args: tuple[Path, int]):
    path, rank = args
    return parse_rank_file(path, rank)


def load_trace(
    trace_dir: Path | str,
    *,
    use_cache: bool = True,
    parallel: bool = True,
    max_workers: int | None = None,
) -> Trace:
    """Load a trace directory, honouring the binary cache.

    ``max_workers`` caps the parsing pool (``None`` = machine size);
    the effective count is resolved by the fleet pool, so it is always
    1 inside a fleet worker.
    """
    trace_dir = Path(trace_dir)
    if use_cache:
        cached = load_cached(trace_dir)
        if cached is not None:
            return cached
    files = _discover_rank_files(trace_dir)
    name = trace_dir.name
    meta = trace_dir / "meta.txt"
    if meta.exists():
        for line in meta.read_text().splitlines():
            key, _, value = line.partition("=")
            if key.strip() == "name":
                name = value.strip()
    if parallel:
        ranks = parallel_map(
            _parse_one,
            [(path, rank) for rank, path in files],
            max_workers=max_workers,
            threshold=_PARALLEL_THRESHOLD,
        )
    else:
        ranks = [parse_rank_file(path, rank) for rank, path in files]
    trace = Trace(name=name, nprocs=len(ranks), ranks=ranks)
    if use_cache:
        store_cache(trace_dir, trace)
    return trace


def save_trace(trace: Trace, trace_dir: Path | str) -> Path:
    """Write a trace out as a dumpi2ascii-style directory."""
    trace_dir = Path(trace_dir)
    trace_dir.mkdir(parents=True, exist_ok=True)
    (trace_dir / "meta.txt").write_text(f"name={trace.name}\nnprocs={trace.nprocs}\n")
    for rank_trace in trace.ranks:
        write_rank_file(trace_dir / rank_file_name(rank_trace.rank), rank_trace)
    return trace_dir

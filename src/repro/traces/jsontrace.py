"""JSON trace format — the "other formats" extension point.

§V-A: "Currently, only a DUMPI text-traces reader is implemented,
although the design of the application allows to easily add other
formats." This module is that second format: a line-delimited JSON
encoding (one op per line, one file per rank) that round-trips the
in-memory representation exactly — including fields the DUMPI text
rendering loses (nothing today, but the schema is versioned).

Format, per line::

    {"op": "MPI_Irecv", "peer": 3, "tag": 42, "comm": 0,
     "size": 512, "request": 7, "t": 11.0816}

A ``meta.json`` file carries ``{"name": ..., "nprocs": ..., "version": 1}``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.traces.model import OpKind, RankTrace, Trace, TraceOp

__all__ = [
    "dump_rank_jsonl",
    "parse_rank_jsonl",
    "save_trace_json",
    "load_trace_json",
    "JsonTraceError",
]

_FORMAT_VERSION = 1
_KIND_BY_NAME = {kind.value: kind for kind in OpKind}


class JsonTraceError(ValueError):
    """Malformed JSON trace input."""


def _op_record(op: TraceOp) -> dict:
    return {
        "op": op.kind.value,
        "peer": op.peer,
        "tag": op.tag,
        "comm": op.comm,
        "size": op.size,
        "request": op.request,
        "t": op.walltime,
    }


def _record_op(record: dict, line_no: int) -> TraceOp:
    try:
        kind = _KIND_BY_NAME[record["op"]]
    except KeyError:
        raise JsonTraceError(
            f"line {line_no}: unknown or missing op {record.get('op')!r}"
        ) from None
    return TraceOp(
        kind=kind,
        peer=int(record.get("peer", -2)),
        tag=int(record.get("tag", 0)),
        comm=int(record.get("comm", 0)),
        size=int(record.get("size", 0)),
        request=int(record.get("request", -1)),
        walltime=float(record.get("t", 0.0)),
    )


def dump_rank_jsonl(rank_trace: RankTrace) -> str:
    return "".join(json.dumps(_op_record(op)) + "\n" for op in rank_trace.ops)


def parse_rank_jsonl(text: str, rank: int) -> RankTrace:
    ops = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise JsonTraceError(f"line {line_no}: invalid JSON: {exc}") from None
        ops.append(_record_op(record, line_no))
    return RankTrace(rank=rank, ops=ops)


def save_trace_json(trace: Trace, trace_dir: Path | str) -> Path:
    trace_dir = Path(trace_dir)
    trace_dir.mkdir(parents=True, exist_ok=True)
    (trace_dir / "meta.json").write_text(
        json.dumps(
            {"name": trace.name, "nprocs": trace.nprocs, "version": _FORMAT_VERSION}
        )
        + "\n"
    )
    for rank_trace in trace.ranks:
        (trace_dir / f"rank-{rank_trace.rank}.jsonl").write_text(
            dump_rank_jsonl(rank_trace)
        )
    return trace_dir


def load_trace_json(trace_dir: Path | str) -> Trace:
    trace_dir = Path(trace_dir)
    meta_path = trace_dir / "meta.json"
    if not meta_path.exists():
        raise FileNotFoundError(f"no meta.json in {trace_dir}")
    meta = json.loads(meta_path.read_text())
    version = meta.get("version")
    if version != _FORMAT_VERSION:
        raise JsonTraceError(f"unsupported trace format version {version!r}")
    nprocs = int(meta["nprocs"])
    ranks = []
    for rank in range(nprocs):
        path = trace_dir / f"rank-{rank}.jsonl"
        if not path.exists():
            raise JsonTraceError(f"missing rank file {path.name}")
        ranks.append(parse_rank_jsonl(path.read_text(), rank))
    return Trace(name=str(meta.get("name", trace_dir.name)), nprocs=nprocs, ranks=ranks)

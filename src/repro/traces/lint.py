"""Trace linting: structural validity checks for traces.

Synthetic generators, recorded runs, and hand-written traces all feed
the analyzer; a malformed trace (sends with no matching receive, time
going backwards, requests waited twice) silently skews the queue-depth
statistics. The linter makes those defects loud. Used by the test
suite on every registered generator and exposed for users building
custom application models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.constants import ANY_SOURCE, ANY_TAG
from repro.traces.model import OpKind, Trace

__all__ = ["LintIssue", "LintReport", "lint_trace"]


@dataclass(frozen=True, slots=True)
class LintIssue:
    severity: str  #: "error" | "warning"
    rank: int
    message: str


@dataclass(slots=True)
class LintReport:
    issues: list[LintIssue] = field(default_factory=list)

    def errors(self) -> list[LintIssue]:
        return [issue for issue in self.issues if issue.severity == "error"]

    def warnings(self) -> list[LintIssue]:
        return [issue for issue in self.issues if issue.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors()

    def _add(self, severity: str, rank: int, message: str) -> None:
        self.issues.append(LintIssue(severity, rank, message))


def lint_trace(trace: Trace, *, require_balance: bool = True) -> LintReport:
    """Check a trace for structural defects.

    Errors (analyzer results would be wrong):

    * peer rank out of range on a send or a concrete-source receive;
    * per-rank walltime decreasing;
    * negative tag on a send (wildcards are receive-only).

    Warnings (legal but usually unintended):

    * unbalanced traffic: total sends != total concrete+wildcard
      receive capacity (when ``require_balance``);
    * a rank with p2p operations but no progress op (its interval
      statistics would never be sampled);
    * duplicate request ids within a rank.
    """
    report = LintReport()
    total_sends = 0
    total_receives = 0
    for rank_trace in trace.ranks:
        last_time = float("-inf")
        seen_requests: set[int] = set()
        has_p2p = False
        has_progress = False
        for op in rank_trace.ops:
            if op.walltime < last_time:
                report._add(
                    "error",
                    rank_trace.rank,
                    f"walltime goes backwards at {op.kind.value} "
                    f"({op.walltime} < {last_time})",
                )
            last_time = op.walltime
            if op.kind in (OpKind.ISEND, OpKind.SEND):
                has_p2p = True
                total_sends += 1
                if not 0 <= op.peer < trace.nprocs:
                    report._add(
                        "error", rank_trace.rank, f"send to invalid rank {op.peer}"
                    )
                if op.tag < 0:
                    report._add(
                        "error", rank_trace.rank, f"send with negative tag {op.tag}"
                    )
            elif op.kind in (OpKind.IRECV, OpKind.RECV):
                has_p2p = True
                total_receives += 1
                if op.peer != ANY_SOURCE and not 0 <= op.peer < trace.nprocs:
                    report._add(
                        "error",
                        rank_trace.rank,
                        f"receive from invalid rank {op.peer}",
                    )
                if op.tag < 0 and op.tag != ANY_TAG:
                    report._add(
                        "error", rank_trace.rank, f"receive with invalid tag {op.tag}"
                    )
            elif op.kind in (OpKind.WAIT, OpKind.WAITALL, OpKind.TEST):
                has_progress = True
            if op.request >= 0 and op.kind in (OpKind.ISEND, OpKind.IRECV):
                if op.request in seen_requests:
                    report._add(
                        "warning",
                        rank_trace.rank,
                        f"request id {op.request} reused",
                    )
                seen_requests.add(op.request)
        if has_p2p and not has_progress:
            report._add(
                "warning",
                rank_trace.rank,
                "rank has p2p traffic but no progress op: no datapoints "
                "will be recorded for it",
            )
    if require_balance and total_sends != total_receives:
        report._add(
            "warning",
            -1,
            f"unbalanced trace: {total_sends} sends vs {total_receives} receives",
        )
    return report

"""Synthetic trace construction framework.

The NERSC DOE mini-app traces are not redistributable, so the
reproduction generates *synthetic* traces whose communication
structure mirrors each application (see
:mod:`repro.traces.synthetic.apps`). The builder produces ordinary
:class:`repro.traces.model.Trace` objects — the analyzer cannot tell
them apart from parsed DUMPI input.

Time model: generators proceed in *rounds*. All ranks pre-post their
round's receives early in the round window, send in the middle, and
progress (wait) at the end — the standard well-behaved MPI pattern
(§II-A: "post all immediate receives before transmitting any
messages"). The analyzer merges ranks by walltime, so these phases
reproduce realistic posted-receive queue depths: within a round, a
rank's PRQ holds all its pre-posted receives until the peers' sends
drain them.
"""

from __future__ import annotations

from repro.core.constants import ANY_SOURCE, ANY_TAG
from repro.traces.model import OpKind, RankTrace, Trace, TraceOp

__all__ = ["RankBuilder", "TraceBuilder"]

#: Sub-round phase offsets (fractions of one round of virtual time).
_PHASE_RECV = 0.0
_PHASE_SEND = 0.4
_PHASE_WAIT = 0.8


class RankBuilder:
    """Accumulates one rank's operations with request bookkeeping."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.ops: list[TraceOp] = []
        self._next_request = 0
        self._time = 0.0

    def _at(self, time: float) -> float:
        # Walltime within a rank must be nondecreasing even if a
        # pattern emits phases out of order.
        self._time = max(self._time, time)
        return self._time

    def irecv(self, source: int, tag: int, time: float, size: int = 8) -> int:
        request = self._next_request
        self._next_request += 1
        self.ops.append(
            TraceOp(
                kind=OpKind.IRECV,
                peer=source,
                tag=tag,
                size=size,
                request=request,
                walltime=self._at(time),
            )
        )
        return request

    def irecv_any(self, tag: int | None, time: float, size: int = 8) -> int:
        """Wildcard receive: ANY_SOURCE, and ANY_TAG when tag is None."""
        return self.irecv(ANY_SOURCE, ANY_TAG if tag is None else tag, time, size)

    def isend(self, dest: int, tag: int, time: float, size: int = 8) -> int:
        request = self._next_request
        self._next_request += 1
        self.ops.append(
            TraceOp(
                kind=OpKind.ISEND,
                peer=dest,
                tag=tag,
                size=size,
                request=request,
                walltime=self._at(time),
            )
        )
        return request

    def wait(self, request: int, time: float) -> None:
        self.ops.append(
            TraceOp(kind=OpKind.WAIT, request=request, walltime=self._at(time))
        )

    def waitall(self, requests: list[int], time: float) -> None:
        self.ops.append(
            TraceOp(kind=OpKind.WAITALL, size=len(requests), walltime=self._at(time))
        )

    def collective(self, kind: OpKind, time: float, size: int = 8) -> None:
        self.ops.append(TraceOp(kind=kind, size=size, walltime=self._at(time)))

    def build(self) -> RankTrace:
        return RankTrace(rank=self.rank, ops=self.ops)


class TraceBuilder:
    """Whole-application builder: per-rank builders plus a round clock."""

    def __init__(self, name: str, nprocs: int) -> None:
        if nprocs <= 0:
            raise ValueError(f"nprocs must be positive, got {nprocs}")
        self.name = name
        self.nprocs = nprocs
        self.ranks = [RankBuilder(rank) for rank in range(nprocs)]
        self._round = 0

    def begin_round(self) -> "RoundClock":
        """Open the next time round; returns its phase clock."""
        clock = RoundClock(float(self._round))
        self._round += 1
        return clock

    def all_collective(self, kind: OpKind, size: int = 8) -> None:
        """Every rank records the same collective in one round."""
        clock = self.begin_round()
        for rank in self.ranks:
            rank.collective(kind, clock.send(), size=size)

    def build(self) -> Trace:
        return Trace(name=self.name, nprocs=self.nprocs, ranks=[r.build() for r in self.ranks])


class RoundClock:
    """Phase timestamps within one round.

    Successive calls within a phase nudge time forward by an epsilon so
    per-rank op order is stable under sorting. The send phase applies a
    deterministic per-sender *jitter*: on a real network, messages from
    different senders race and arrive out of posting order (that skew
    is what gives posted-receive queues their depth), but messages from
    one sender on one connection stay ordered (RC FIFO / C2). Jitter is
    therefore constant per (sender, round) and the intra-sender epsilon
    keeps each sender's emissions ordered.
    """

    _EPS = 1e-6
    _JITTER_SPAN = 0.3

    def __init__(self, base: float) -> None:
        self.base = base
        self._counters = [0, 0, 0]

    def _tick(self, phase_index: int, offset: float) -> float:
        value = self.base + offset + self._counters[phase_index] * self._EPS
        self._counters[phase_index] += 1
        return value

    def recv(self) -> float:
        """Pre-posting phase timestamp."""
        return self._tick(0, _PHASE_RECV)

    def send(self, sender: int | None = None) -> float:
        """Sending phase timestamp, skewed per sender."""
        jitter = 0.0
        if sender is not None:
            from repro.core.hashing import mix64

            jitter = (
                (mix64(sender * 0x9E3779B1 + int(self.base)) % 1024)
                / 1024.0
                * self._JITTER_SPAN
            )
        return self._tick(1, _PHASE_SEND) + jitter

    def wait(self) -> float:
        """Progress phase timestamp."""
        return self._tick(2, _PHASE_WAIT)

"""Synthetic trace generators for the Table II mini-apps."""

from repro.traces.synthetic.apps import APPLICATIONS, AppSpec, app_names, generate
from repro.traces.synthetic.base import RankBuilder, TraceBuilder
from repro.traces.synthetic.patterns import (
    alltoall_p2p_round,
    grid_dims,
    grid_neighbors,
    halo_exchange_round,
    irregular_round,
    manytoone_round,
    ring_round,
    sweep_round,
)

__all__ = [
    "APPLICATIONS",
    "AppSpec",
    "RankBuilder",
    "TraceBuilder",
    "alltoall_p2p_round",
    "app_names",
    "generate",
    "grid_dims",
    "grid_neighbors",
    "halo_exchange_round",
    "irregular_round",
    "manytoone_round",
    "ring_round",
    "sweep_round",
]

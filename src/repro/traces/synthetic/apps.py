"""The Table II application registry and per-app trace generators.

Each entry reproduces one NERSC "Characterization of DOE mini-apps"
trace *structurally*: the communication pattern (halo exchange,
transpose, fan-in, sweep), its intensity (neighbors x fields — the
queue-depth driver of Fig. 7), and the MPI call mix (Fig. 6: three
apps pure p2p, HILO's two versions pure collectives, nobody
one-sided). ``table_processes`` records the paper's trace scale;
generators accept a smaller ``processes`` so tests and benchmarks run
in seconds while keeping the per-rank structure intact.

The pattern assignments follow each mini-app's published communication
behaviour; where the paper is silent (exact neighbor counts per app)
values are chosen to land the Fig. 7 shape — BoxLib CNS deepest
(~25 at 1 bin), sweep codes shallowest — and are documented here
rather than hidden in code.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.traces.model import OpKind, Trace
from repro.traces.synthetic.base import TraceBuilder
from repro.traces.synthetic.patterns import (
    alltoall_p2p_round,
    grid_dims,
    halo_exchange_round,
    irregular_round,
    manytoone_round,
    ring_round,
    sweep_round,
)

__all__ = ["AppSpec", "APPLICATIONS", "generate", "app_names"]


@dataclass(frozen=True, slots=True)
class AppSpec:
    """One Table II row plus its generator."""

    name: str
    description: str
    #: Process count of the NERSC trace (Table II).
    table_processes: int
    #: Default generation scale (kept small enough for CI).
    default_processes: int
    generator: Callable[[TraceBuilder, int], None]
    #: Approximate PRQ depth at 1 bin this pattern produces (per rank,
    #: at progress points) — documents the Fig. 7 expectation.
    nominal_depth: int


def _amg(builder: TraceBuilder, rounds: int) -> None:
    """Algebraic multigrid: sparse neighbor exchange per level plus a
    convergence allreduce — modest depth, visible collective share."""
    dims = grid_dims(builder.nprocs, 3)
    for level in range(rounds):
        halo_exchange_round(builder, dims, fields=3, tag_base=level % 4)
        if level % 2 == 0:
            builder.all_collective(OpKind.ALLREDUCE)


def _amr(builder: TraceBuilder, rounds: int) -> None:
    """Single-step AMR hydro: face halo plus periodic regrid fan-in."""
    dims = grid_dims(builder.nprocs, 2)
    for step in range(rounds):
        halo_exchange_round(builder, dims, fields=4, tag_base=step % 3)
        if step % 3 == 0:
            manytoone_round(builder, root=0, tag=9)
            builder.all_collective(OpKind.BCAST)


def _bigfft(builder: TraceBuilder, rounds: int) -> None:
    """Distributed FFT: pure-p2p row/column transposes."""
    import math

    n = builder.nprocs
    side = max(int(math.isqrt(n)), 1)
    for step in range(rounds):
        # Row groups, then column groups.
        for row_start in range(0, side * side, side):
            group = list(range(row_start, row_start + side))
            alltoall_p2p_round(builder, tag=step % 2, group=group)
        for col in range(side):
            group = list(range(col, side * side, side))
            alltoall_p2p_round(builder, tag=2 + step % 2, group=group)


def _boxlib_cns(builder: TraceBuilder, rounds: int) -> None:
    """Compressible Navier-Stokes: full 3^3-1 = 26-neighbor halo —
    the deepest queues of the dataset (paper: max 25 at 1 bin)."""
    dims = grid_dims(builder.nprocs, 3)
    for step in range(rounds):
        halo_exchange_round(builder, dims, fields=1, diagonals=True, tag_base=step % 4)
        if step % 4 == 3:
            builder.all_collective(OpKind.ALLREDUCE)


def _boxlib_mg(builder: TraceBuilder, rounds: int) -> None:
    """BoxLib linear solver: face halos across V-cycle levels."""
    dims = grid_dims(builder.nprocs, 3)
    for level in range(rounds):
        halo_exchange_round(builder, dims, fields=2, tag_base=level % 8)
        if level % 3 == 2:
            builder.all_collective(OpKind.ALLREDUCE)


def _crystal_router(builder: TraceBuilder, rounds: int) -> None:
    """Nek5000 crystal router proxy: staged irregular exchange, pure
    p2p, bursts of same-partner messages (compatible-receive runs)."""
    for stage in range(rounds):
        irregular_round(
            builder, degree=10, tag_space=4, seed=stage, wildcard_fraction=0.1
        )


def _fill_boundary(builder: TraceBuilder, rounds: int) -> None:
    """MultiFab ghost exchange proxy: pure p2p face halos."""
    dims = grid_dims(builder.nprocs, 3)
    for step in range(rounds):
        halo_exchange_round(builder, dims, fields=1, tag_base=step % 2)


def _hilo(builder: TraceBuilder, rounds: int) -> None:
    """HILO neutron transport: collectives only (Fig. 6)."""
    for step in range(rounds):
        builder.all_collective(OpKind.ALLREDUCE)
        builder.all_collective(OpKind.BCAST)
        if step % 2 == 0:
            builder.all_collective(OpKind.ALLGATHER)


def _hilo_2d(builder: TraceBuilder, rounds: int) -> None:
    """HILO 2D multinode variant: also pure collectives."""
    for _ in range(rounds):
        builder.all_collective(OpKind.ALLREDUCE)
        builder.all_collective(OpKind.GATHERV)
        builder.all_collective(OpKind.BARRIER)


def _lulesh(builder: TraceBuilder, rounds: int) -> None:
    """Hydro proxy: 27-point stencil but staged by axis (moderate
    simultaneous depth), allreduce for dt."""
    dims = grid_dims(builder.nprocs, 3)
    for step in range(rounds):
        halo_exchange_round(builder, dims, fields=3, tag_base=step % 3)
        halo_exchange_round(builder, dims, fields=2, tag_base=3 + step % 3)
        builder.all_collective(OpKind.ALLREDUCE)


def _minife(builder: TraceBuilder, rounds: int) -> None:
    """Finite elements CG: small halo + dot-product allreduces."""
    dims = grid_dims(builder.nprocs, 3)
    for iteration in range(rounds):
        halo_exchange_round(builder, dims, fields=2, tag_base=iteration % 2)
        builder.all_collective(OpKind.ALLREDUCE)
        builder.all_collective(OpKind.ALLREDUCE)


def _mocfe(builder: TraceBuilder, rounds: int) -> None:
    """MOC reactor proxy: angular ring pipelines + reductions."""
    for step in range(rounds):
        ring_round(builder, tag=step % 4)
        ring_round(builder, tag=4 + step % 4, direction=-1)
        if step % 2 == 1:
            builder.all_collective(OpKind.REDUCE)


def _multigrid(builder: TraceBuilder, rounds: int) -> None:
    """BoxLib MultiGrid at scale: face halos, light collectives."""
    dims = grid_dims(builder.nprocs, 3)
    for level in range(rounds):
        halo_exchange_round(builder, dims, fields=2, tag_base=level % 6)
        if level % 4 == 3:
            builder.all_collective(OpKind.ALLREDUCE)


def _nekbone(builder: TraceBuilder, rounds: int) -> None:
    """Nek5000 Poisson proxy: CG with gather-scatter neighbor
    exchange and frequent reductions."""
    for iteration in range(rounds):
        irregular_round(builder, degree=8, tag_space=2, seed=100 + iteration)
        builder.all_collective(OpKind.ALLREDUCE)


def _partisn(builder: TraceBuilder, rounds: int) -> None:
    """Discrete-ordinates transport: KBA sweeps in 4 octant passes."""
    dims = grid_dims(builder.nprocs, 2)
    for step in range(rounds):
        for octant in range(4):
            sweep_round(builder, dims, tag=octant)
        if step % 2 == 1:
            builder.all_collective(OpKind.ALLREDUCE)


def _snap(builder: TraceBuilder, rounds: int) -> None:
    """PARTISN communication proxy: pure sweep pipelines, minimal
    collectives."""
    dims = grid_dims(builder.nprocs, 2)
    for step in range(rounds):
        for octant in range(8):
            sweep_round(builder, dims, tag=octant)
        if step % 4 == 3:
            builder.all_collective(OpKind.ALLREDUCE)


APPLICATIONS: dict[str, AppSpec] = {
    spec.name: spec
    for spec in [
        AppSpec("AMG", "Algebraic MultiGrid. Linear equation solver", 8, 8, _amg, 12),
        AppSpec("AMR MiniApp", "Single step AMR for hydrodynamics", 64, 16, _amr, 12),
        AppSpec("BigFFT", "Distributed Fast Fourier Transform", 1024, 16, _bigfft, 3),
        AppSpec(
            "BoxLib CNS",
            "Compressible Navier Stokes equations integrator",
            64,
            27,
            _boxlib_cns,
            26,
        ),
        AppSpec(
            "BoxLib MultiGrid", "Single step BoxLib linear solver", 64, 27, _boxlib_mg, 12
        ),
        AppSpec(
            "CrystalRouter",
            "Proxy application for the Nek5000 scalable communication pattern",
            100,
            16,
            _crystal_router,
            7,
        ),
        AppSpec(
            "FillBoundary",
            "Proxy application for ghost cell exchange using MultiFabs",
            1000,
            27,
            _fill_boundary,
            6,
        ),
        AppSpec(
            "HILO", "Modeling of Neutron Transport Evaluation and Test Suite", 256, 16, _hilo, 0
        ),
        AppSpec(
            "HILO 2D",
            "Modeling of Neutron Transport Evaluation and Test Suite in 2D multinode",
            256,
            16,
            _hilo_2d,
            0,
        ),
        AppSpec(
            "LULESH", "Proxy application for hydrodynamic codes", 64, 27, _lulesh, 18
        ),
        AppSpec(
            "MiniFe", "Proxy application for finite elements codes", 1152, 27, _minife, 6
        ),
        AppSpec(
            "MOCFE",
            "Proxy application for Method of Characteristics (MOC) reactor simulator",
            64,
            16,
            _mocfe,
            2,
        ),
        AppSpec("MultiGrid", "MultiGrid solver based on BoxLib", 1000, 27, _multigrid, 6),
        AppSpec(
            "Nekbone",
            "Proxy application for the Nek5000 poison equation solver",
            64,
            16,
            _nekbone,
            5,
        ),
        AppSpec(
            "PARTISN",
            "Discrete-ordinates neutral-particle transport equation solver",
            168,
            16,
            _partisn,
            2,
        ),
        AppSpec(
            "SNAP",
            "Proxy application for the PARTISN communication pattern",
            168,
            16,
            _snap,
            2,
        ),
    ]
}


def app_names() -> list[str]:
    """Registry keys in Table II (alphabetical) order."""
    return list(APPLICATIONS)


def generate(name: str, *, processes: int | None = None, rounds: int = 6) -> Trace:
    """Generate the named application's synthetic trace.

    ``processes`` defaults to the spec's CI-friendly scale; pass
    ``APPLICATIONS[name].table_processes`` for the paper's scale.
    """
    spec = APPLICATIONS.get(name)
    if spec is None:
        raise KeyError(f"unknown application {name!r}; known: {app_names()}")
    nprocs = processes if processes is not None else spec.default_processes
    builder = TraceBuilder(spec.name, nprocs)
    spec.generator(builder, rounds)
    return builder.build()

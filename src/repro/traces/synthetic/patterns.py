"""Reusable communication-pattern building blocks.

Each function emits one or more rounds of traffic into a
:class:`repro.traces.synthetic.base.TraceBuilder`. The patterns are
the structural vocabulary of the Table II mini-apps: halo exchanges on
structured grids, transpose-style all-to-all, many-to-one fan-in,
wavefront sweeps, ring shifts, and irregular neighbor exchange.
"""

from __future__ import annotations

from repro.traces.synthetic.base import TraceBuilder
from repro.util.rng import derive_seed, make_rng

__all__ = [
    "grid_dims",
    "grid_neighbors",
    "halo_exchange_round",
    "alltoall_p2p_round",
    "manytoone_round",
    "sweep_round",
    "ring_round",
    "irregular_round",
]


def grid_dims(nprocs: int, ndims: int) -> tuple[int, ...]:
    """Near-cubic process-grid factorization (MPI_Dims_create-like)."""
    dims = [1] * ndims
    remaining = nprocs
    for i in range(ndims):
        target = round(remaining ** (1.0 / (ndims - i)))
        best = 1
        for d in range(max(target, 1), 0, -1):
            if remaining % d == 0:
                best = d
                break
        # Also try upward for a closer factor.
        for d in range(target + 1, remaining + 1):
            if remaining % d == 0 and abs(d - target) < abs(best - target):
                best = d
                break
        dims[i] = best
        remaining //= best
    dims[-1] *= remaining
    return tuple(dims)


def grid_neighbors(
    rank: int, dims: tuple[int, ...], *, diagonals: bool = False, periodic: bool = True
) -> list[int]:
    """Neighbor ranks of ``rank`` on a Cartesian grid.

    ``diagonals=True`` yields the full stencil (3^d - 1 neighbors, the
    BoxLib CNS deep-halo case); otherwise faces only (2d neighbors).
    """
    ndims = len(dims)
    coords = []
    rest = rank
    for extent in reversed(dims):
        coords.append(rest % extent)
        rest //= extent
    coords.reverse()

    offsets: list[tuple[int, ...]]
    if diagonals:
        offsets = []

        def expand(prefix: tuple[int, ...]) -> None:
            if len(prefix) == ndims:
                if any(prefix):
                    offsets.append(prefix)
                return
            for delta in (-1, 0, 1):
                expand(prefix + (delta,))

        expand(())
    else:
        offsets = []
        for axis in range(ndims):
            for delta in (-1, 1):
                offset = [0] * ndims
                offset[axis] = delta
                offsets.append(tuple(offset))

    neighbors: list[int] = []
    for offset in offsets:
        neighbor_coords = []
        valid = True
        for coord, delta, extent in zip(coords, offset, dims):
            c = coord + delta
            if periodic:
                c %= extent
            elif not 0 <= c < extent:
                valid = False
                break
            neighbor_coords.append(c)
        if not valid:
            continue
        neighbor = 0
        for c, extent in zip(neighbor_coords, dims):
            neighbor = neighbor * extent + c
        if neighbor != rank and neighbor not in neighbors:
            neighbors.append(neighbor)
    return neighbors


def halo_exchange_round(
    builder: TraceBuilder,
    dims: tuple[int, ...],
    *,
    fields: int = 1,
    diagonals: bool = False,
    tag_base: int = 0,
    size: int = 512,
) -> None:
    """One ghost-cell exchange: pre-post all receives, send, waitall.

    PRQ depth per rank during the round = neighbors x fields — the
    knob that reproduces each app's Fig. 7 queue depth.
    """
    clock = builder.begin_round()
    pending: dict[int, list[int]] = {}
    for rank_builder in builder.ranks:
        neighbors = grid_neighbors(rank_builder.rank, dims, diagonals=diagonals)
        reqs = []
        for field in range(fields):
            for neighbor in neighbors:
                reqs.append(
                    rank_builder.irecv(neighbor, tag_base + field, clock.recv(), size=size)
                )
        pending[rank_builder.rank] = reqs
    for rank_builder in builder.ranks:
        neighbors = grid_neighbors(rank_builder.rank, dims, diagonals=diagonals)
        for field in range(fields):
            for neighbor in neighbors:
                reqs = pending[rank_builder.rank]
                reqs.append(
                    rank_builder.isend(
                        neighbor, tag_base + field, clock.send(rank_builder.rank), size=size
                    )
                )
    for rank_builder in builder.ranks:
        rank_builder.waitall(pending[rank_builder.rank], clock.wait())


def alltoall_p2p_round(
    builder: TraceBuilder, *, tag: int = 0, size: int = 256, group: list[int] | None = None
) -> None:
    """Transpose-style p2p all-to-all within ``group`` (default all).

    The BigFFT pattern: every rank exchanges with every other rank of
    its transpose group, pre-posting the full fan-in.
    """
    ranks = group if group is not None else list(range(builder.nprocs))
    clock = builder.begin_round()
    pending: dict[int, list[int]] = {}
    for rank in ranks:
        rank_builder = builder.ranks[rank]
        reqs = [
            rank_builder.irecv(peer, tag, clock.recv(), size=size)
            for peer in ranks
            if peer != rank
        ]
        pending[rank] = reqs
    for rank in ranks:
        rank_builder = builder.ranks[rank]
        for peer in ranks:
            if peer != rank:
                pending[rank].append(
                    rank_builder.isend(peer, tag, clock.send(rank), size=size)
                )
    for rank in ranks:
        builder.ranks[rank].waitall(pending[rank], clock.wait())


def manytoone_round(
    builder: TraceBuilder,
    root: int = 0,
    *,
    tag: int = 0,
    size: int = 64,
    wildcard_source: bool = False,
) -> None:
    """Gather(v)-style fan-in: everyone sends to root simultaneously.

    With ``wildcard_source`` the root posts ``MPI_ANY_SOURCE``
    receives — the serialization-hostile case §II-A discusses.
    """
    clock = builder.begin_round()
    root_builder = builder.ranks[root]
    reqs = []
    for peer in range(builder.nprocs):
        if peer == root:
            continue
        if wildcard_source:
            reqs.append(root_builder.irecv_any(tag, clock.recv(), size=size))
        else:
            reqs.append(root_builder.irecv(peer, tag, clock.recv(), size=size))
    for peer in range(builder.nprocs):
        if peer != root:
            builder.ranks[peer].isend(root, tag, clock.send(peer), size=size)
    root_builder.waitall(reqs, clock.wait())
    for peer in range(builder.nprocs):
        if peer != root:
            builder.ranks[peer].waitall([], clock.wait())


def sweep_round(
    builder: TraceBuilder,
    dims: tuple[int, int],
    *,
    tag: int = 0,
    size: int = 128,
) -> None:
    """KBA wavefront sweep (PARTISN/SNAP): each rank receives from its
    up-wind neighbors and forwards down-wind. Queue depth stays at 1-2
    but the pattern produces long chains of compatible receives —
    fast-path territory."""
    nx, ny = dims
    clock = builder.begin_round()
    for rank_builder in builder.ranks:
        rank = rank_builder.rank
        if rank >= nx * ny:
            continue
        x, y = rank % nx, rank // nx
        reqs = []
        if x > 0:
            reqs.append(rank_builder.irecv(rank - 1, tag, clock.recv(), size=size))
        if y > 0:
            reqs.append(rank_builder.irecv(rank - nx, tag, clock.recv(), size=size))
        if x < nx - 1:
            rank_builder.isend(rank + 1, tag, clock.send(rank), size=size)
        if y < ny - 1:
            rank_builder.isend(rank + nx, tag, clock.send(rank), size=size)
        rank_builder.waitall(reqs, clock.wait())


def ring_round(
    builder: TraceBuilder, *, tag: int = 0, size: int = 256, direction: int = 1
) -> None:
    """Ring shift: each rank receives from one side, sends to the other."""
    n = builder.nprocs
    clock = builder.begin_round()
    for rank_builder in builder.ranks:
        rank = rank_builder.rank
        req = rank_builder.irecv((rank - direction) % n, tag, clock.recv(), size=size)
        rank_builder.isend((rank + direction) % n, tag, clock.send(rank), size=size)
        rank_builder.wait(req, clock.wait())


def irregular_round(
    builder: TraceBuilder,
    *,
    degree: int,
    tag_space: int,
    seed: int,
    size: int = 128,
    wildcard_fraction: float = 0.0,
) -> None:
    """Irregular neighbor exchange (CrystalRouter-style): each rank
    talks to a random set of ``degree`` peers with tags drawn from
    ``tag_space``; a fraction of receives may use wildcards."""
    clock = builder.begin_round()
    n = builder.nprocs
    # A rank cannot have more distinct partners than peers exist.
    degree = min(degree, n - 1)
    if degree <= 0:
        return
    # Build a symmetric random communication graph so every send has a
    # matching receive.
    partner_sets: list[list[int]] = [[] for _ in range(n)]
    rng = make_rng(derive_seed(seed, "irregular", builder.name))
    for rank in range(n):
        while len(partner_sets[rank]) < degree:
            peer = int(rng.integers(n))
            if peer == rank or peer in partner_sets[rank]:
                continue
            partner_sets[rank].append(peer)
            if rank not in partner_sets[peer]:
                partner_sets[peer].append(rank)
    tag_of = lambda a, b: (min(a, b) * 31 + max(a, b)) % tag_space  # noqa: E731
    pending: dict[int, list[int]] = {}
    for rank in range(n):
        rank_builder = builder.ranks[rank]
        reqs = []
        for peer in partner_sets[rank]:
            tag = tag_of(rank, peer)
            if rng.random() < wildcard_fraction:
                reqs.append(rank_builder.irecv_any(tag, clock.recv(), size=size))
            else:
                reqs.append(rank_builder.irecv(peer, tag, clock.recv(), size=size))
        pending[rank] = reqs
    for rank in range(n):
        rank_builder = builder.ranks[rank]
        for peer in partner_sets[rank]:
            pending[rank].append(
                rank_builder.isend(peer, tag_of(rank, peer), clock.send(rank), size=size)
            )
    for rank in range(n):
        builder.ranks[rank].waitall(pending[rank], clock.wait())

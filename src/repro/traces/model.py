"""In-memory trace representation.

"We use a custom in-memory representation because it is easier to
integrate and tailor to our specific needs" (§V-A). A trace is a set
of per-rank operation lists; operations are classified into the four
groups the analyzer distinguishes: point-to-point, collective,
one-sided, and progress (§V-A.b).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.constants import ANY_SOURCE, ANY_TAG

__all__ = ["OpKind", "OpGroup", "TraceOp", "RankTrace", "Trace"]


class OpKind(enum.Enum):
    """Concrete MPI call recorded in a trace."""

    ISEND = "MPI_Isend"
    SEND = "MPI_Send"
    IRECV = "MPI_Irecv"
    RECV = "MPI_Recv"
    WAIT = "MPI_Wait"
    WAITALL = "MPI_Waitall"
    TEST = "MPI_Test"
    BARRIER = "MPI_Barrier"
    BCAST = "MPI_Bcast"
    REDUCE = "MPI_Reduce"
    ALLREDUCE = "MPI_Allreduce"
    GATHER = "MPI_Gather"
    GATHERV = "MPI_Gatherv"
    ALLGATHER = "MPI_Allgather"
    ALLTOALL = "MPI_Alltoall"
    ALLTOALLV = "MPI_Alltoallv"
    SCATTER = "MPI_Scatter"
    PUT = "MPI_Put"
    GET = "MPI_Get"
    ACCUMULATE = "MPI_Accumulate"


class OpGroup(enum.Enum):
    """The analyzer's four operation groups (§V-A.b)."""

    P2P = "p2p"
    COLLECTIVE = "collective"
    ONE_SIDED = "one-sided"
    PROGRESS = "progress"


_GROUPS: dict[OpKind, OpGroup] = {
    OpKind.ISEND: OpGroup.P2P,
    OpKind.SEND: OpGroup.P2P,
    OpKind.IRECV: OpGroup.P2P,
    OpKind.RECV: OpGroup.P2P,
    OpKind.WAIT: OpGroup.PROGRESS,
    OpKind.WAITALL: OpGroup.PROGRESS,
    OpKind.TEST: OpGroup.PROGRESS,
    OpKind.BARRIER: OpGroup.COLLECTIVE,
    OpKind.BCAST: OpGroup.COLLECTIVE,
    OpKind.REDUCE: OpGroup.COLLECTIVE,
    OpKind.ALLREDUCE: OpGroup.COLLECTIVE,
    OpKind.GATHER: OpGroup.COLLECTIVE,
    OpKind.GATHERV: OpGroup.COLLECTIVE,
    OpKind.ALLGATHER: OpGroup.COLLECTIVE,
    OpKind.ALLTOALL: OpGroup.COLLECTIVE,
    OpKind.ALLTOALLV: OpGroup.COLLECTIVE,
    OpKind.SCATTER: OpGroup.COLLECTIVE,
    OpKind.PUT: OpGroup.ONE_SIDED,
    OpKind.GET: OpGroup.ONE_SIDED,
    OpKind.ACCUMULATE: OpGroup.ONE_SIDED,
}


@dataclass(frozen=True, slots=True)
class TraceOp:
    """One recorded MPI call.

    Field use depends on the kind: sends use ``peer``/``tag``/``size``,
    receives use ``peer`` (or ``ANY_SOURCE``)/``tag`` (or ``ANY_TAG``),
    waits use ``request``; collectives/one-sided carry only sizes.
    """

    kind: OpKind
    peer: int = -2  #: dest for sends, source for receives, -2 = n/a
    tag: int = 0
    comm: int = 0
    size: int = 0
    request: int = -1  #: request id linking isend/irecv to wait
    walltime: float = 0.0

    @property
    def group(self) -> OpGroup:
        return _GROUPS[self.kind]

    def uses_wildcard(self) -> bool:
        if self.kind not in (OpKind.IRECV, OpKind.RECV):
            return False
        return self.peer == ANY_SOURCE or self.tag == ANY_TAG


@dataclass(slots=True)
class RankTrace:
    """One rank's recorded operation stream."""

    rank: int
    ops: list[TraceOp] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ops)

    def counts_by_group(self) -> dict[OpGroup, int]:
        counts = {group: 0 for group in OpGroup}
        for op in self.ops:
            counts[op.group] += 1
        return counts


@dataclass(slots=True)
class Trace:
    """A full application trace across all ranks."""

    name: str
    nprocs: int
    ranks: list[RankTrace] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.nprocs <= 0:
            raise ValueError(f"nprocs must be positive, got {self.nprocs}")

    def rank(self, index: int) -> RankTrace:
        return self.ranks[index]

    def total_ops(self) -> int:
        return sum(len(r) for r in self.ranks)

    def counts_by_group(self) -> dict[OpGroup, int]:
        totals = {group: 0 for group in OpGroup}
        for rank_trace in self.ranks:
            for group, count in rank_trace.counts_by_group().items():
                totals[group] += count
        return totals

    def call_mix(self) -> dict[OpGroup, float]:
        """Fractions of p2p/collective/one-sided among communication
        ops (progress excluded) — the Figure 6 quantity."""
        counts = self.counts_by_group()
        comm_total = (
            counts[OpGroup.P2P] + counts[OpGroup.COLLECTIVE] + counts[OpGroup.ONE_SIDED]
        )
        if comm_total == 0:
            return {OpGroup.P2P: 0.0, OpGroup.COLLECTIVE: 0.0, OpGroup.ONE_SIDED: 0.0}
        return {
            OpGroup.P2P: counts[OpGroup.P2P] / comm_total,
            OpGroup.COLLECTIVE: counts[OpGroup.COLLECTIVE] / comm_total,
            OpGroup.ONE_SIDED: counts[OpGroup.ONE_SIDED] / comm_total,
        }

"""Trace infrastructure: model, DUMPI parsing, caching, synthesis."""

from repro.traces.cache import load_cached, store_cache
from repro.traces.dumpi import (
    TraceParseError,
    format_rank_trace,
    parse_rank_file,
    parse_rank_text,
    write_rank_file,
)
from repro.traces.jsontrace import (
    JsonTraceError,
    load_trace_json,
    parse_rank_jsonl,
    save_trace_json,
)
from repro.traces.model import OpGroup, OpKind, RankTrace, Trace, TraceOp
from repro.traces.reader import load_trace, rank_file_name, save_trace

__all__ = [
    "OpGroup",
    "OpKind",
    "RankTrace",
    "Trace",
    "TraceOp",
    "JsonTraceError",
    "TraceParseError",
    "format_rank_trace",
    "load_cached",
    "load_trace",
    "load_trace_json",
    "parse_rank_file",
    "parse_rank_text",
    "rank_file_name",
    "save_trace",
    "save_trace_json",
    "parse_rank_jsonl",
    "store_cache",
    "write_rank_file",
]

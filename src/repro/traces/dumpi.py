"""DUMPI ASCII trace parser and writer.

The NERSC mini-app traces ship in SST-DUMPI binary form; the paper's
analyzer reads the ``dumpi2ascii`` text rendering. This module parses
(and emits, for round-trip tests and synthetic trace export) that
rendering's call-block structure::

    MPI_Irecv entering at walltime 11.0816, cputime 0.0005 seconds in thread 0.
    int count=512
    datatype datatype=11 (MPI_DOUBLE)
    int source=3
    int tag=42
    comm comm=2 (MPI_COMM_WORLD)
    request request=7
    MPI_Irecv returning at walltime 11.0817, cputime 0.0005 seconds in thread 0.

Unknown calls are skipped structurally (their key=value body is
consumed), so traces containing MPI surface beyond the analyzer's
scope parse cleanly — matching the paper's "only p2p and progress
operations are processed" stance while still *counting* collectives
and one-sided ops for the call-mix figure.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core.constants import ANY_SOURCE, ANY_TAG
from repro.traces.model import OpKind, RankTrace, Trace, TraceOp

__all__ = ["parse_rank_file", "parse_rank_text", "write_rank_file", "format_rank_trace", "TraceParseError"]

#: dumpi2ascii renders the wildcards as large sentinel constants.
_DUMPI_ANY_SOURCE = -1
_DUMPI_ANY_TAG = -1

_ENTER_RE = re.compile(
    r"^(?P<func>MPI_\w+) entering at walltime (?P<wall>[0-9.eE+-]+),"
)
_RETURN_RE = re.compile(r"^(?P<func>MPI_\w+) returning at walltime")
_FIELD_RE = re.compile(r"^\s*\w+ (?P<key>\w+)=(?P<value>-?\d+)")

_KIND_BY_NAME = {kind.value: kind for kind in OpKind}


class TraceParseError(ValueError):
    """Malformed DUMPI text input."""


def parse_rank_text(text: str, rank: int) -> RankTrace:
    """Parse one rank's dumpi2ascii text into a :class:`RankTrace`."""
    ops: list[TraceOp] = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        match = _ENTER_RE.match(lines[i])
        if match is None:
            i += 1
            continue
        func = match.group("func")
        walltime = float(match.group("wall"))
        fields: dict[str, int] = {}
        i += 1
        while i < len(lines) and not _RETURN_RE.match(lines[i]):
            field_match = _FIELD_RE.match(lines[i])
            if field_match is not None:
                fields[field_match.group("key")] = int(field_match.group("value"))
            i += 1
        if i >= len(lines):
            raise TraceParseError(
                f"rank {rank}: call block for {func} at walltime {walltime} "
                "never returned"
            )
        i += 1  # consume the "returning" line
        kind = _KIND_BY_NAME.get(func)
        if kind is None:
            continue  # structurally skipped, unknown surface
        ops.append(_build_op(kind, fields, walltime, rank))
    return RankTrace(rank=rank, ops=ops)


def _build_op(kind: OpKind, fields: dict[str, int], walltime: float, rank: int) -> TraceOp:
    if kind in (OpKind.ISEND, OpKind.SEND):
        return TraceOp(
            kind=kind,
            peer=fields.get("dest", 0),
            tag=fields.get("tag", 0),
            comm=fields.get("comm", 0),
            size=fields.get("count", 0),
            request=fields.get("request", -1),
            walltime=walltime,
        )
    if kind in (OpKind.IRECV, OpKind.RECV):
        source = fields.get("source", 0)
        tag = fields.get("tag", 0)
        return TraceOp(
            kind=kind,
            peer=ANY_SOURCE if source == _DUMPI_ANY_SOURCE else source,
            tag=ANY_TAG if tag == _DUMPI_ANY_TAG else tag,
            comm=fields.get("comm", 0),
            size=fields.get("count", 0),
            request=fields.get("request", -1),
            walltime=walltime,
        )
    if kind in (OpKind.WAIT, OpKind.TEST):
        return TraceOp(kind=kind, request=fields.get("request", -1), walltime=walltime)
    if kind is OpKind.WAITALL:
        return TraceOp(kind=kind, size=fields.get("count", 0), walltime=walltime)
    # Collectives / one-sided: keep sizes for statistics only.
    return TraceOp(
        kind=kind,
        comm=fields.get("comm", 0),
        size=fields.get("count", 0),
        walltime=walltime,
    )


def parse_rank_file(path: Path, rank: int) -> RankTrace:
    return parse_rank_text(path.read_text(), rank)


def format_rank_trace(rank_trace: RankTrace) -> str:
    """Render a rank trace back to dumpi2ascii-style text."""
    out: list[str] = []
    for op in rank_trace.ops:
        name = op.kind.value
        out.append(
            f"{name} entering at walltime {op.walltime:.4f}, cputime 0.0000 "
            f"seconds in thread 0."
        )
        if op.kind in (OpKind.ISEND, OpKind.SEND):
            out.append(f"int count={op.size}")
            out.append("datatype datatype=11 (MPI_DOUBLE)")
            out.append(f"int dest={op.peer}")
            out.append(f"int tag={op.tag}")
            out.append(f"comm comm={op.comm} (user)")
            if op.request >= 0:
                out.append(f"request request={op.request}")
        elif op.kind in (OpKind.IRECV, OpKind.RECV):
            source = _DUMPI_ANY_SOURCE if op.peer == ANY_SOURCE else op.peer
            tag = _DUMPI_ANY_TAG if op.tag == ANY_TAG else op.tag
            out.append(f"int count={op.size}")
            out.append("datatype datatype=11 (MPI_DOUBLE)")
            out.append(f"int source={source}")
            out.append(f"int tag={tag}")
            out.append(f"comm comm={op.comm} (user)")
            if op.request >= 0:
                out.append(f"request request={op.request}")
        elif op.kind in (OpKind.WAIT, OpKind.TEST):
            out.append(f"request request={op.request}")
        elif op.kind is OpKind.WAITALL:
            out.append(f"int count={op.size}")
        else:
            out.append(f"int count={op.size}")
            out.append(f"comm comm={op.comm} (user)")
        out.append(
            f"{name} returning at walltime {op.walltime:.4f}, cputime 0.0000 "
            f"seconds in thread 0."
        )
    return "\n".join(out) + ("\n" if out else "")


def write_rank_file(path: Path, rank_trace: RankTrace) -> None:
    path.write_text(format_rank_trace(rank_trace))

"""Binary trace cache (§V-A.a).

"Initially, the parser verifies the existence of a binary cache for
the given input trace, as parsing the traces of an application is the
most time-consuming step for the analyzer." The cache stores the
pickled in-memory representation, compressed, next to the trace
directory, keyed by a fingerprint of the rank files (names, sizes,
mtimes) so a modified trace invalidates it automatically.
"""

from __future__ import annotations

import hashlib
import pickle
import zlib
from pathlib import Path

from repro.traces.model import Trace

__all__ = ["cache_path", "fingerprint", "load_cached", "store_cache"]

_CACHE_SUFFIX = ".trace-cache"
_MAGIC = b"REPRO-TRACE-v1"


def cache_path(trace_dir: Path) -> Path:
    return trace_dir / ("binary" + _CACHE_SUFFIX)


def fingerprint(trace_dir: Path) -> str:
    """Fingerprint of the trace input files (cache invalidation key)."""
    digest = hashlib.sha256()
    for path in sorted(trace_dir.glob("*.txt")):
        stat = path.stat()
        digest.update(path.name.encode())
        digest.update(str(stat.st_size).encode())
        digest.update(str(stat.st_mtime_ns).encode())
    return digest.hexdigest()


def load_cached(trace_dir: Path) -> Trace | None:
    """Return the cached trace if present and still valid."""
    path = cache_path(trace_dir)
    if not path.exists():
        return None
    try:
        blob = path.read_bytes()
        if not blob.startswith(_MAGIC):
            return None
        stored_fp, payload = blob[len(_MAGIC) :].split(b"\x00", 1)
        if stored_fp.decode() != fingerprint(trace_dir):
            return None
        trace = pickle.loads(zlib.decompress(payload))
    except (OSError, ValueError, pickle.UnpicklingError, zlib.error):
        return None
    return trace if isinstance(trace, Trace) else None


def store_cache(trace_dir: Path, trace: Trace) -> Path:
    """Commit the in-memory representation to storage (§V-A.a)."""
    path = cache_path(trace_dir)
    payload = zlib.compress(pickle.dumps(trace, protocol=pickle.HIGHEST_PROTOCOL))
    path.write_bytes(_MAGIC + fingerprint(trace_dir).encode() + b"\x00" + payload)
    return path
